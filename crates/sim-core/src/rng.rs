//! A small, fast, explicitly-seeded pseudo-random number generator.
//!
//! The simulator needs reproducible randomness (workload jitter and
//! measurement noise). We use xoshiro256++ seeded through SplitMix64 —
//! the standard construction — implemented locally so the simulation core
//! has no external dependencies and its sequences are stable across
//! dependency upgrades.

/// xoshiro256++ PRNG.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second half of a Box–Muller pair.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including zero) produces a valid, full-period state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream so adding a component does not
    /// perturb the draws seen by others.
    pub fn fork(&mut self, label: u64) -> Rng {
        Rng::new(self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range: lo > hi");
        lo + self.uniform() * (hi - lo)
    }

    /// A uniform integer draw in `[0, n)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Unbiased multiply-shift rejection sampling.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reached with probability < n / 2^64.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A standard-normal draw (Box–Muller, with caching of the pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        loop {
            let u1 = self.uniform();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * core::f64::consts::PI * u2;
            self.gauss_spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// A normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut r = Rng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_stays_in_range_and_hits_all_values() {
        let mut r = Rng::new(3);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(11);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn forked_streams_are_independent_of_sibling_order() {
        let mut parent1 = Rng::new(5);
        let mut a1 = parent1.fork(1);
        let mut parent2 = Rng::new(5);
        let mut a2 = parent2.fork(1);
        for _ in 0..100 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
