//! Trace-driven vs. live evaluation — the paper's §3 methodology
//! critique, quantified.
//!
//! "To our knowledge, all previous work from different groups has
//! relied on simulators ... by using an actual system, our scheduling
//! implementations were exposed to periodic behaviors ... inducing the
//! sort of instability we will explain in §5.3", and §5.3: the kernel
//! cannot see that the player's spin loop is "wasteful work", so "once
//! the clock is scaled close to the optimal value to complete the
//! necessary work, the work seemingly increases".
//!
//! This experiment runs the same policy two ways:
//!
//! 1. **trace-driven** (the Weiser/Govil methodology): record a
//!    per-interval *work* trace of MPEG at full speed, then replay it
//!    through the policy assuming work is fixed and there is no
//!    feedback from the clock to the application;
//! 2. **live**: the policy inside the kernel with the real application,
//!    whose spin/sleep decisions and catch-up behaviour react to the
//!    clock.
//!
//! The two methodologies disagree on both numbers, and — the paper's
//! deeper point — only the live system can *reject* the policy: the
//! feedback-free replay has no notion of a user-visible deadline, so a
//! policy that audibly desynchronises A/V in the live run shows up in
//! the trace world as nothing worse than a backlog statistic.

use core::fmt;

use itsy_hw::clock::V_HIGH;
use itsy_hw::{ClockTable, CpuMode, PowerModel, StepIndex};
use policies::{AvgN, ClockPolicy, Hysteresis, IntervalScheduler, SpeedChange};
use sim_core::{SimDuration, SimTime};
use workloads::Benchmark;

use crate::report;
use crate::runner::{run_benchmark, RunSpec, TOLERANCE};

/// Outcome of one evaluation methodology.
#[derive(Debug, Clone, Copy)]
pub struct MethodOutcome {
    /// Energy, joules.
    pub energy_j: f64,
    /// Saving vs the constant-top baseline under the same methodology.
    pub saving: f64,
    /// Delay proxy: live deadline misses, or trace-driven peak backlog
    /// (in full-speed quanta).
    pub delay_proxy: f64,
}

/// The comparison.
pub struct TraceDriven {
    /// Trace-driven prediction.
    pub trace: MethodOutcome,
    /// Live measurement.
    pub live: MethodOutcome,
    /// Seconds simulated.
    pub secs: u64,
}

/// Replays a fixed per-interval work trace (fractions of a full-speed
/// quantum) through a policy, with no application feedback, and
/// integrates energy with the same power model the kernel uses.
///
/// Returns `(energy joules, peak backlog)`.
pub fn replay_trace(
    work: &[f64],
    policy: &mut dyn ClockPolicy,
    quantum: SimDuration,
    devices: itsy_hw::DeviceSet,
) -> (f64, f64) {
    let table = ClockTable::sa1100();
    let power = PowerModel::default();
    let f_max = table.freq(table.fastest()).as_khz() as f64;
    let mut step: StepIndex = table.fastest();
    let mut backlog = 0.0f64;
    let mut peak_backlog = 0.0f64;
    let mut energy = 0.0f64;
    let q_secs = quantum.as_secs_f64();
    for (i, &w) in work.iter().enumerate() {
        // Capacity of this interval as a fraction of a full-speed one.
        let capacity = table.freq(step).as_khz() as f64 / f_max;
        let offered = w + backlog;
        let executed = offered.min(capacity);
        backlog = offered - executed;
        peak_backlog = peak_backlog.max(backlog);
        // Utilization as the policy would observe it.
        let util = (executed / capacity).clamp(0.0, 1.0);
        // Energy: busy at the step's active power, idle at nap.
        let f = table.freq(step);
        let p_busy = power
            .system_power(CpuMode::Run, f, V_HIGH, devices)
            .as_watts();
        let p_idle = power
            .system_power(CpuMode::Nap, f, V_HIGH, devices)
            .as_watts();
        energy += q_secs * (util * p_busy + (1.0 - util) * p_idle);
        // The policy reacts at the end of the interval.
        let req = policy.on_interval(
            SimTime::from_micros((i as u64 + 1) * quantum.as_micros()),
            util,
            step,
        );
        if let Some(s) = req.step {
            step = s;
        }
    }
    (energy, peak_backlog)
}

/// The policy under comparison: AVG_9 with one-step moves — the
/// fine-grained style of the earlier trace-driven studies, which can
/// settle at an intermediate speed (unlike peg-peg, whose flapping
/// dominates both methodologies equally).
fn policy_under_test() -> IntervalScheduler {
    IntervalScheduler::new(
        Box::new(AvgN::new(9)),
        Hysteresis::BEST,
        SpeedChange::One,
        SpeedChange::One,
        ClockTable::sa1100(),
    )
}

/// Runs the comparison for MPEG under the policy above.
pub fn run(seed: u64) -> TraceDriven {
    let secs = 30u64;
    let quantum = SimDuration::from_millis(10);
    let devices = Benchmark::Mpeg.devices();

    // Record the full-speed work trace (the Weiser input).
    let base = run_benchmark(
        &RunSpec::new(Benchmark::Mpeg, 10)
            .for_secs(secs)
            .with_seed(seed),
        None,
    );
    let work = base.work_fraction.values();

    // Trace-driven: baseline (constant top) and policy replays.
    let mut hold = policies::ConstantPolicy::new(10, V_HIGH);
    let (trace_base_energy, _) = replay_trace(&work, &mut hold, quantum, devices);
    let mut policy = policy_under_test();
    let (trace_energy, trace_backlog) = replay_trace(&work, &mut policy, quantum, devices);

    // Live: the same policy on the real kernel.
    let live_base = base.energy.as_joules();
    let live = run_benchmark(
        &RunSpec::new(Benchmark::Mpeg, 10)
            .for_secs(secs)
            .with_seed(seed),
        Some(Box::new(policy_under_test())),
    );

    TraceDriven {
        trace: MethodOutcome {
            energy_j: trace_energy,
            saving: 1.0 - trace_energy / trace_base_energy,
            delay_proxy: trace_backlog,
        },
        live: MethodOutcome {
            energy_j: live.energy.as_joules(),
            saving: 1.0 - live.energy.as_joules() / live_base,
            delay_proxy: live.deadlines.misses(TOLERANCE) as f64,
        },
        secs,
    }
}

impl TraceDriven {
    /// How much of the trace-predicted saving the live system actually
    /// delivers.
    pub fn realised_fraction(&self) -> f64 {
        if self.trace.saving <= 0.0 {
            return 1.0;
        }
        (self.live.saving / self.trace.saving).max(0.0)
    }

    /// Writes the comparison as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["method", "energy_j", "saving", "delay_proxy"],
            &[
                vec![
                    "trace-driven".into(),
                    format!("{:.2}", self.trace.energy_j),
                    format!("{:.4}", self.trace.saving),
                    format!("{:.3}", self.trace.delay_proxy),
                ],
                vec![
                    "live".into(),
                    format!("{:.2}", self.live.energy_j),
                    format!("{:.4}", self.live.saving),
                    format!("{:.0}", self.live.delay_proxy),
                ],
            ],
        );
        report::save_csv("tracedriven", "methodology_gap", &doc).map(|_| ())
    }
}

impl fmt::Display for TraceDriven {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Methodology gap: AVG_9 one-one on MPEG, {}s (trace-driven vs live)",
            self.secs
        )?;
        let rows = vec![
            vec![
                "trace-driven (Weiser-style)".to_string(),
                format!("{:.1} J", self.trace.energy_j),
                format!("{:.1}%", self.trace.saving * 100.0),
                format!("peak backlog {:.2} quanta", self.trace.delay_proxy),
            ],
            vec![
                "live (this paper's method)".to_string(),
                format!("{:.1} J", self.live.energy_j),
                format!("{:.1}%", self.live.saving * 100.0),
                format!("{} deadline misses", self.live.delay_proxy as u64),
            ],
        ];
        f.write_str(&report::render_table(
            &["methodology", "energy", "predicted saving", "delay"],
            &rows,
        ))?;
        writeln!(
            f,
            "methodologies disagree: live/trace saving ratio {:.2}; only the live run\nexposes the {} user-visible deadline misses",
            self.realised_fraction(),
            self.live.delay_proxy as u64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> &'static TraceDriven {
        use std::sync::OnceLock;
        static CELL: OnceLock<TraceDriven> = OnceLock::new();
        CELL.get_or_init(|| run(1))
    }

    #[test]
    fn methodologies_disagree_materially() {
        // Feedback changes the answer: the energy predictions differ by
        // a large relative margin.
        let e = exp();
        let gap = (e.trace.saving - e.live.saving).abs();
        assert!(
            gap > 0.01,
            "trace {:.3} vs live {:.3}",
            e.trace.saving,
            e.live.saving
        );
    }

    #[test]
    fn only_the_live_run_exposes_user_visible_failure() {
        // AVG_9 one-one descends too far on MPEG. Live, that is a
        // stream of A/V-sync deadline misses — grounds to reject the
        // policy. The trace replay has no deadline concept at all; its
        // only symptom is a backlog number.
        let e = exp();
        assert!(
            e.live.delay_proxy > 0.0,
            "expected live deadline misses from the over-descending policy"
        );
        assert!(e.trace.delay_proxy > 1.0, "the backlog hint is there...");
        // ...but a naive energy-only reading of the trace sees a win.
        assert!(e.trace.saving > 0.0);
    }

    #[test]
    fn both_methodologies_see_some_saving() {
        let e = exp();
        assert!(e.trace.saving > 0.0);
        assert!(e.live.saving > 0.0);
    }

    #[test]
    fn replay_conserves_work() {
        // All offered work is either executed or in the final backlog.
        let work = vec![0.5; 100];
        let mut policy = policies::ConstantPolicy::new(0, V_HIGH); // 59 MHz
        let (_, peak) = replay_trace(
            &work,
            &mut policy,
            SimDuration::from_millis(10),
            itsy_hw::DeviceSet::NONE,
        );
        // Capacity at 59 MHz is 0.286 of full speed; offered 0.5 per
        // quantum: backlog must grow throughout.
        assert!(peak > 10.0, "peak backlog = {peak}");
    }

    #[test]
    fn replay_at_full_speed_never_backlogs() {
        let work = vec![0.9; 100];
        let mut policy = policies::ConstantPolicy::new(10, V_HIGH);
        let (_, peak) = replay_trace(
            &work,
            &mut policy,
            SimDuration::from_millis(10),
            itsy_hw::DeviceSet::NONE,
        );
        assert_eq!(peak, 0.0);
    }
}
