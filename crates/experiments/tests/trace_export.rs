//! The `repro trace` contract: the exported event stream is a pure
//! function of (scenario, seed, secs).
//!
//! Two properties are pinned:
//!
//! 1. **Determinism** — re-running an export, or computing the same
//!    merge serially instead of on the thread pool, yields identical
//!    bytes. Wall-clock never enters the stream.
//! 2. **Stability** — a golden snapshot of the fig3 scenario's first
//!    events guards against accidental changes to event content,
//!    ordering or formatting. Regenerate after an intentional change:
//!
//!    ```text
//!    UPDATE_GOLDEN_TRACE=1 cargo test -p experiments --test trace_export
//!    ```

use experiments::trace_exp;
use obs::{export_chrome_json, export_csv, merge_traces, Trace};

/// Short windows keep the suite fast; determinism holds at any length.
const SECS: u64 = 2;

#[test]
fn export_is_byte_identical_across_runs() {
    let a = trace_exp::export("fig8", 1, Some(SECS)).expect("known scenario");
    let b = trace_exp::export("fig8", 1, Some(SECS)).expect("known scenario");
    assert_eq!(a.csv, b.csv, "CSV must not vary between runs");
    assert_eq!(a.chrome_json, b.chrome_json, "JSON must not vary");
    assert!(a.events > 0, "fig8 trace is non-trivial");
}

#[test]
fn parallel_and_serial_execution_merge_identically() {
    // The exporter runs one thread per run; this recomputes the same
    // traces strictly serially. Identical output proves the merge
    // orders by simulated time alone — thread scheduling (and hence
    // `--jobs`) cannot reorder the stream.
    let parallel = trace_exp::export("fig3", 1, Some(SECS)).expect("known scenario");
    let serial: Vec<(String, Trace)> = trace_exp::specs("fig3", 1, Some(SECS))
        .expect("known scenario")
        .into_iter()
        .map(|(label, spec)| (label, spec.execute_traced().1))
        .collect();
    let merged = merge_traces(&serial);
    assert_eq!(parallel.csv, export_csv(&merged));
    assert_eq!(parallel.chrome_json, export_chrome_json(&merged));
}

#[test]
fn different_seeds_change_the_stream() {
    // Sanity check that the export is actually sensitive to its
    // inputs — a constant output would pass the determinism tests.
    let a = trace_exp::export("fig8", 1, Some(SECS)).expect("known scenario");
    let b = trace_exp::export("fig8", 2, Some(SECS)).expect("known scenario");
    assert_ne!(a.csv, b.csv, "seed must reach the simulation");
}

#[test]
fn fig3_trace_matches_committed_golden_snapshot() {
    // The fixture holds the header plus the first events of the fig3
    // scenario: enough to catch format/order drift without freezing
    // megabytes.
    const LINES: usize = 200;
    let out = trace_exp::export("fig3", 1, Some(SECS)).expect("known scenario");
    let actual: String = out
        .csv
        .lines()
        .take(LINES)
        .fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
    let fixture_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_trace_fig3.csv"
    );

    if std::env::var_os("UPDATE_GOLDEN_TRACE").is_some() {
        std::fs::write(fixture_path, &actual).expect("write fixture");
        return;
    }

    let expected = std::fs::read_to_string(fixture_path).expect(
        "missing tests/fixtures/golden_trace_fig3.csv — regenerate with \
         UPDATE_GOLDEN_TRACE=1 cargo test -p experiments --test trace_export",
    );
    for (i, (want, got)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            want,
            got,
            "\ntrace drift at fixture line {}.\n\
             The exported stream is a public artifact consumers diff \
             across runs. If the simulator or event format changed \
             intentionally, regenerate with UPDATE_GOLDEN_TRACE=1; \
             otherwise determinism broke — fix that instead.\n",
            i + 1
        );
    }
    assert_eq!(expected.lines().count(), actual.lines().count());
}

#[test]
fn chrome_json_shape_is_wellformed() {
    let out = trace_exp::export("avgn", 1, Some(SECS)).expect("known scenario");
    let json = &out.chrome_json;
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}\n"));
    // One thread-name metadata record per run, before any events.
    assert!(json.contains("\"ph\":\"M\""));
    assert!(json.contains("\"thread_name\""));
    // Quantum boundaries export as counter samples.
    assert!(json.contains("\"ph\":\"C\""));
    // Balanced braces and brackets (cheap well-formedness check that
    // needs no JSON parser).
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces");
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
