//! Output helpers: fixed-width tables and CSV export.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use sim_core::TimeSeries;

/// Renders a fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "{cell:<w$}  ");
        }
        let _ = writeln!(out);
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    fmt_row(&headers, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// The directory experiment CSVs are written to.
pub fn results_dir() -> PathBuf {
    std::env::var_os("REPRO_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes a set of series as CSV files under `results/<experiment>/`.
pub fn save_series(experiment: &str, series: &[&TimeSeries]) -> io::Result<Vec<PathBuf>> {
    let dir = results_dir().join(experiment);
    std::fs::create_dir_all(&dir)?;
    let mut paths = Vec::new();
    for s in series {
        let path = dir.join(format!("{}.csv", sanitize(&s.name)));
        s.write_csv(&path)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Writes raw CSV text under `results/<experiment>/<name>.csv`.
pub fn save_csv(experiment: &str, name: &str, csv: &str) -> io::Result<PathBuf> {
    let dir = results_dir().join(experiment);
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.csv", sanitize(name)));
    std::fs::write(&path, csv)?;
    Ok(path)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Joins CSV cells, escaping nothing (cells are numeric or simple
/// labels by construction).
pub fn csv_line(cells: &[String]) -> String {
    cells.join(",")
}

/// Builds a CSV document from a header and rows.
pub fn csv_doc(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        let _ = writeln!(out, "{}", csv_line(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("name    value"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("longer  1") || lines[3].starts_with("longer  22"));
    }

    #[test]
    fn csv_doc_layout() {
        let doc = csv_doc(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(doc, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn sanitize_strips_odd_characters() {
        assert_eq!(sanitize("utilization (10ms)"), "utilization__10ms_");
        assert_eq!(sanitize("freq_mhz"), "freq_mhz");
    }
}
