//! Figure 8: clock frequency over time for MPEG under the best policy.
//!
//! "The scheduling policy only select\[s\] 59Mhz or 206MHz clock settings
//! and changes clock settings frequently. This scheduling policy
//! results in suboptimal energy savings but avoids noticeable
//! application slowdown." The policy is PAST with peg-peg speed
//! setting and >98 %/<93 % thresholds.

use core::fmt;

use itsy_hw::ClockTable;
use policies::IntervalScheduler;
use sim_core::TimeSeries;
use workloads::Benchmark;

use crate::report;
use crate::runner::{run_benchmark, RunSpec, TOLERANCE};

/// The frequency trace and its summary.
pub struct Fig8 {
    /// Clock frequency (MHz) at every timer tick.
    pub freq_mhz: TimeSeries,
    /// Number of clock changes over the run.
    pub clock_switches: u64,
    /// Deadline misses beyond the user-visible tolerance.
    pub misses: usize,
    /// Fraction of ticks spent at the bottom step.
    pub fraction_at_59: f64,
    /// Fraction of ticks spent at the top step.
    pub fraction_at_206: f64,
    /// Mean utilization under the policy.
    pub mean_utilization: f64,
}

/// Runs MPEG for 30 s under the best policy, starting at the top step.
pub fn run(seed: u64) -> Fig8 {
    let spec = RunSpec::new(Benchmark::Mpeg, 10)
        .for_secs(30)
        .with_seed(seed);
    let policy = IntervalScheduler::best_from_paper(ClockTable::sa1100());
    let report = run_benchmark(&spec, Some(Box::new(policy)));
    let vals = report.freq_mhz.values();
    let at = |mhz: f64| {
        vals.iter().filter(|&&v| (v - mhz).abs() < 0.1).count() as f64 / vals.len() as f64
    };
    Fig8 {
        fraction_at_59: at(59.0),
        fraction_at_206: at(206.4),
        clock_switches: report.clock_switches,
        misses: report.deadlines.misses(TOLERANCE),
        mean_utilization: report.mean_utilization(),
        freq_mhz: report.freq_mhz,
    }
}

impl Fig8 {
    /// Writes the frequency trace as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        report::save_series("fig8", &[&self.freq_mhz]).map(|_| ())
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: MPEG clock frequency under PAST, peg-peg, >98%/<93%"
        )?;
        let rows = vec![
            vec![
                "clock switches (30s)".into(),
                self.clock_switches.to_string(),
            ],
            vec![
                "ticks at 59 MHz".into(),
                format!("{:.1}%", self.fraction_at_59 * 100.0),
            ],
            vec![
                "ticks at 206.4 MHz".into(),
                format!("{:.1}%", self.fraction_at_206 * 100.0),
            ],
            vec!["deadline misses (>100ms)".into(), self.misses.to_string()],
            vec![
                "mean utilization".into(),
                format!("{:.3}", self.mean_utilization),
            ],
        ];
        f.write_str(&report::render_table(&["metric", "value"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_bounces_between_the_extremes() {
        let fig = run(1);
        // "only select 59Mhz or 206MHz clock settings".
        let extreme = fig.fraction_at_59 + fig.fraction_at_206;
        assert!(extreme > 0.95, "extreme fraction = {extreme}");
        assert!(fig.fraction_at_59 > 0.02, "never dips to 59 MHz");
        assert!(fig.fraction_at_206 > 0.5, "mostly pegged high");
    }

    #[test]
    fn changes_clock_frequently() {
        let fig = run(1);
        // "changes clock settings frequently": many switches in 30 s.
        assert!(fig.clock_switches > 30, "switches = {}", fig.clock_switches);
    }

    #[test]
    fn never_misses_deadlines() {
        // The "best" property: responsiveness is preserved.
        let fig = run(1);
        assert_eq!(fig.misses, 0);
    }
}
