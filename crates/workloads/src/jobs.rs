//! Deadline-job derivation from recorded work traces.
//!
//! The speed-scaling canon (`policies::scaling`) wants jobs — release,
//! deadline, work — but the simulator records per-interval *work
//! traces*. This module bridges the two: consecutive scheduling
//! intervals are grouped into fixed-size chunks, each non-empty chunk
//! becomes one job released at the chunk's start carrying the chunk's
//! total work, and the deadline is the chunk's end plus a slack
//! allowance. The reading: "work that arrived during this 100 ms must
//! be finished within a further 100 ms" — the latency contract an
//! interactive device implicitly makes.
//!
//! Derived sets are always feasible for the hardware: any candidate
//! critical interval spanning `m` consecutive chunks carries at most
//! `m · chunk` work (work fractions are ≤ 1 per interval) across
//! `m · chunk + slack` intervals of time, so the optimal speed stays
//! strictly below 1 and rounds up onto the Itsy's step table.

/// One derived job, in scheduling-interval units. Mirrors
/// `policies::scaling::Job` without taking a dependency on the
/// policies crate (which depends on workloads only for tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceJob {
    /// Chunk start, in intervals from the trace start.
    pub release: f64,
    /// Chunk end plus slack, in intervals.
    pub deadline: f64,
    /// Total work of the chunk, in full-speed-interval units.
    pub work: f64,
}

/// Groups a per-interval work trace (fractions of a full-speed
/// interval, as recorded by the kernel) into deadline jobs: one job
/// per `chunk_intervals`-sized block with any work in it, due
/// `slack_intervals` after the block ends. Order follows the trace, so
/// releases and deadlines are both non-decreasing.
///
/// # Panics
///
/// Panics if `chunk_intervals` is zero or `slack_intervals` is
/// negative or non-finite.
pub fn from_work_trace(
    work: &[f64],
    chunk_intervals: usize,
    slack_intervals: f64,
) -> Vec<TraceJob> {
    assert!(chunk_intervals > 0, "chunk must cover at least 1 interval");
    assert!(
        slack_intervals.is_finite() && slack_intervals >= 0.0,
        "slack must be finite and non-negative"
    );
    work.chunks(chunk_intervals)
        .enumerate()
        .filter_map(|(k, block)| {
            let total: f64 = block.iter().sum();
            if total <= 0.0 {
                return None;
            }
            let release = (k * chunk_intervals) as f64;
            let end = release + block.len() as f64;
            Some(TraceJob {
                release,
                deadline: end + slack_intervals,
                work: total,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_carry_their_work_and_slacked_deadlines() {
        let work = [0.5, 1.0, 0.0, 0.0, 0.25, 0.25];
        let jobs = from_work_trace(&work, 2, 3.0);
        assert_eq!(jobs.len(), 2, "the all-idle chunk is dropped");
        assert_eq!(
            jobs[0],
            TraceJob {
                release: 0.0,
                deadline: 5.0,
                work: 1.5
            }
        );
        assert_eq!(
            jobs[1],
            TraceJob {
                release: 4.0,
                deadline: 9.0,
                work: 0.5
            }
        );
    }

    #[test]
    fn trailing_partial_chunk_keeps_its_real_length() {
        let work = [1.0, 1.0, 1.0];
        let jobs = from_work_trace(&work, 2, 1.0);
        assert_eq!(jobs.len(), 2);
        // The last chunk is a single interval: due at 2 + 1 + 1.
        assert_eq!(jobs[1].release, 2.0);
        assert_eq!(jobs[1].deadline, 4.0);
        assert_eq!(jobs[1].work, 1.0);
    }

    #[test]
    fn empty_trace_yields_no_jobs() {
        assert!(from_work_trace(&[], 10, 10.0).is_empty());
        assert!(from_work_trace(&[0.0, 0.0], 1, 0.0).is_empty());
    }

    #[test]
    fn releases_and_deadlines_are_monotone() {
        let work: Vec<f64> = (0..97).map(|i| f64::from(i % 3) / 3.0).collect();
        let jobs = from_work_trace(&work, 10, 10.0);
        for pair in jobs.windows(2) {
            assert!(pair[0].release < pair[1].release);
            assert!(pair[0].deadline < pair[1].deadline);
        }
    }
}
