//! The §2.1 StrongARM SA-2 worked example.
//!
//! "Consider a computation that normally takes 600 million instructions
//! to complete. That application would take one second on a StrongARM
//! SA-2 at 600MHz and would consume 500 mJoules. At 150MHz, the
//! application would take four seconds to complete, but would only
//! consume 160 mJoules, a four-fold savings" (500 mW at 600 MHz vs
//! 40 mW at 150 MHz — "a 12-fold energy reduction for a 4-fold
//! performance reduction").

use core::fmt;

use sim_core::{Energy, Frequency, Power, SimDuration};

use crate::report;

/// One operating point of the example.
#[derive(Debug, Clone, Copy)]
pub struct Sa2Point {
    /// Clock frequency.
    pub freq: Frequency,
    /// Dissipation at that point.
    pub power: Power,
    /// Time to run the 600 M-instruction task.
    pub time: SimDuration,
    /// Energy for the task.
    pub energy: Energy,
}

/// The worked example.
pub struct Sa2 {
    /// 600 MHz / 500 mW.
    pub fast: Sa2Point,
    /// 150 MHz / 40 mW.
    pub slow: Sa2Point,
}

/// Instructions in the example task.
pub const WORK_INSTRUCTIONS: u64 = 600_000_000;

/// Computes the example.
pub fn run() -> Sa2 {
    let point = |mhz: u32, mw: f64| {
        let freq = Frequency::from_mhz(mhz);
        let power = Power::from_milliwatts(mw);
        let time = freq.time_for_cycles(WORK_INSTRUCTIONS);
        Sa2Point {
            freq,
            power,
            time,
            energy: power.over(time),
        }
    };
    Sa2 {
        fast: point(600, 500.0),
        slow: point(150, 40.0),
    }
}

impl Sa2 {
    /// Energy saving factor of running slow.
    pub fn energy_ratio(&self) -> f64 {
        self.fast.energy.as_joules() / self.slow.energy.as_joules()
    }

    /// Slowdown factor of running slow.
    pub fn slowdown(&self) -> f64 {
        self.slow.time.as_secs_f64() / self.fast.time.as_secs_f64()
    }

    /// Power reduction factor (the "12-fold energy reduction" quote is
    /// about power at fixed time).
    pub fn power_ratio(&self) -> f64 {
        self.fast.power.as_watts() / self.slow.power.as_watts()
    }

    /// Writes the example as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let row = |p: &Sa2Point| {
            vec![
                format!("{}", p.freq.as_mhz_f64()),
                format!("{}", p.power.as_watts()),
                format!("{}", p.time.as_secs_f64()),
                format!("{}", p.energy.as_joules()),
            ]
        };
        let doc = report::csv_doc(
            &["mhz", "watts", "seconds", "joules"],
            &[row(&self.fast), row(&self.slow)],
        );
        report::save_csv("sa2", "worked_example", &doc).map(|_| ())
    }
}

impl fmt::Display for Sa2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SA-2 example: 600M instructions")?;
        let row = |name: &str, p: &Sa2Point| {
            vec![
                name.to_string(),
                format!("{}", p.freq),
                format!("{}", p.power),
                format!("{}", p.time),
                format!("{:.0} mJ", p.energy.as_joules() * 1000.0),
            ]
        };
        f.write_str(&report::render_table(
            &["point", "clock", "power", "time", "energy"],
            &[row("fast", &self.fast), row("slow", &self.slow)],
        ))?;
        writeln!(
            f,
            "slow saves {:.1}x energy for {:.0}x slowdown",
            self.energy_ratio(),
            self.slowdown()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_numbers() {
        let s = run();
        assert_eq!(s.fast.time, SimDuration::from_secs(1));
        assert_eq!(s.slow.time, SimDuration::from_secs(4));
        assert!((s.fast.energy.as_joules() - 0.5).abs() < 1e-9);
        assert!((s.slow.energy.as_joules() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn headline_ratios() {
        let s = run();
        // "a 12-fold energy [power] reduction for a 4-fold performance
        // reduction" and "a four-fold [energy] savings".
        assert!((s.power_ratio() - 12.5).abs() < 0.01);
        assert!((s.slowdown() - 4.0).abs() < 1e-9);
        assert!((s.energy_ratio() - 3.125).abs() < 0.01);
    }
}
