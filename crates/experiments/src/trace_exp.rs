//! Deterministic trace export: `repro trace`.
//!
//! Exports the simulator's structured event stream for a scenario as
//! CSV and Chrome `trace_event` JSON. The export is a pure function of
//! the scenario and seed:
//!
//! - every run simulates fresh through [`JobSpec::execute_traced`] —
//!   the cache and journal are never consulted, so a cold and a warm
//!   results directory produce identical bytes;
//! - runs execute in parallel but the merge orders events by
//!   `(sim_time, run label, emission index)` — wall-clock never enters
//!   the stream, so `--jobs` cannot reorder it.
//!
//! Scenarios:
//!
//! | id | contents |
//! |----|----------|
//! | `fig3` | the four workloads pinned at 206.4 MHz (Figure 3's window) |
//! | `fig8` | MPEG under PAST, peg-peg, >98 %/<93 % (Figure 8) |
//! | `avgn` | the 9/1 square wave under AVG_3 one-one (Figure 7's input) |

use std::io;
use std::path::PathBuf;

use engine::{JobSpec, WorkloadSpec};
use obs::{export_chrome_json_with_spans, export_csv, merge_traces, Trace};
use policies::{Hysteresis, PolicyDesc, PredictorDesc, SpeedChange};
use workloads::Benchmark;

use crate::report;

/// Scenario identifiers `repro trace` accepts.
pub const SCENARIOS: &[&str] = &["fig3", "fig8", "avgn"];

/// A scenario's exported event stream.
pub struct TraceExport {
    /// Scenario id (`fig3`, `fig8`, `avgn`).
    pub scenario: String,
    /// Merged stream as CSV (`time_us,run,seq,event,detail`).
    pub csv: String,
    /// Merged stream as Chrome `trace_event` JSON.
    pub chrome_json: String,
    /// Number of events across all runs.
    pub events: usize,
    /// Number of runs merged.
    pub runs: usize,
}

/// The labelled jobs a scenario traces. `secs` overrides each run's
/// simulated length (the default is the figure's own window).
pub fn specs(scenario: &str, seed: u64, secs: Option<u64>) -> Option<Vec<(String, JobSpec)>> {
    match scenario {
        "fig3" => Some(
            Benchmark::ALL
                .iter()
                .map(|&b| {
                    let run_secs = secs.unwrap_or_else(|| {
                        crate::fig3::WINDOW_SECS.min(b.nominal_duration().as_micros() / 1_000_000)
                    });
                    let spec = JobSpec::new(
                        WorkloadSpec::Benchmark(b),
                        PolicyDesc::constant_top(),
                        run_secs,
                        seed,
                    );
                    (b.name().to_lowercase(), spec)
                })
                .collect(),
        ),
        "fig8" => Some(vec![(
            "mpeg".to_string(),
            JobSpec::new(
                WorkloadSpec::Benchmark(Benchmark::Mpeg),
                PolicyDesc::best_from_paper(),
                secs.unwrap_or(30),
                seed,
            ),
        )]),
        // AVG_3 on the 9-busy/1-idle square wave swings between ~0.75
        // (right after the idle quantum) and 1.0; the paper's best
        // thresholds (>98 %/<93 %) sit inside that band, so the policy
        // keeps issuing speed changes in both directions — Figure 7's
        // "can not settle" claim, observable in the event stream.
        "avgn" => Some(vec![(
            "square".to_string(),
            JobSpec::new(
                WorkloadSpec::SquareWave { busy: 9, idle: 1 },
                PolicyDesc::interval(
                    PredictorDesc::AvgN(3),
                    Hysteresis::BEST,
                    SpeedChange::One,
                    SpeedChange::One,
                ),
                secs.unwrap_or(5),
                seed,
            ),
        )]),
        _ => None,
    }
}

/// Runs a scenario and exports its merged event stream. Returns `None`
/// for an unknown scenario id.
///
/// Runs simulate concurrently (one thread per run; the grids are
/// small) but the output is ordered purely by simulated time, so the
/// bytes do not depend on scheduling.
pub fn export(scenario: &str, seed: u64, secs: Option<u64>) -> Option<TraceExport> {
    let specs = specs(scenario, seed, secs)?;
    // Each run thread hands back its span buffer alongside the trace;
    // with profiling off (the default, and what CI byte-diffs) the
    // buffers are empty and the export is unchanged.
    let runs: Vec<((String, Trace), obs::ThreadSpans)> = std::thread::scope(|s| {
        let handles: Vec<_> = specs
            .iter()
            .map(|(label, spec)| {
                s.spawn(move || {
                    let run = {
                        let _span = obs::span::enter("trace_run");
                        let (_, trace) = spec.execute_traced();
                        (label.clone(), trace)
                    };
                    (run, obs::span::drain())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trace run panicked"))
            .collect()
    });
    let mut profile = obs::Profile::default();
    let mut traces: Vec<(String, Trace)> = Vec::with_capacity(runs.len());
    for (run, spans) in runs {
        if !spans.is_empty() {
            profile.threads.push((format!("trace-{}", run.0), spans));
        }
        traces.push(run);
    }
    let merged = {
        let _span = obs::span::enter("merge_traces");
        merge_traces(&traces)
    };
    let _render_span = obs::span::enter("render_export");
    Some(TraceExport {
        scenario: scenario.to_string(),
        csv: export_csv(&merged),
        chrome_json: export_chrome_json_with_spans(&merged, &profile),
        events: merged.len(),
        runs: traces.len(),
    })
}

impl TraceExport {
    /// Writes the CSV and Chrome JSON under `results/trace/`, returning
    /// the two paths.
    pub fn save(&self) -> io::Result<(PathBuf, PathBuf)> {
        let dir = report::results_dir().join("trace");
        std::fs::create_dir_all(&dir)?;
        let csv_path = dir.join(format!("{}.csv", self.scenario));
        std::fs::write(&csv_path, &self.csv)?;
        let json_path = dir.join(format!("{}.trace.json", self.scenario));
        std::fs::write(&json_path, &self.chrome_json)?;
        Ok((csv_path, json_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_is_none() {
        assert!(specs("nope", 1, None).is_none());
        assert!(export("nope", 1, None).is_none());
    }

    #[test]
    fn fig3_traces_all_four_workloads() {
        let specs = specs("fig3", 1, Some(2)).expect("known scenario");
        assert_eq!(specs.len(), 4);
        let labels: Vec<&str> = specs.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"mpeg") && labels.contains(&"web"));
    }

    #[test]
    fn profiling_adds_a_wall_clock_span_track() {
        let _l = crate::bench_cmd::profiling_lock();
        obs::span::set_enabled(true);
        let profiled = export("avgn", 1, Some(2)).expect("known scenario");
        obs::span::set_enabled(false);
        assert!(
            profiled.chrome_json.contains("\"wall-clock (profiler)\""),
            "span track missing from profiled export"
        );
        assert!(
            profiled.chrome_json.contains("\"ph\":\"X\""),
            "no complete events in span track"
        );
        assert!(
            profiled.chrome_json.contains("\"trace-square\""),
            "per-run thread label missing"
        );
        // Sim-time events are still there, and the document is intact.
        assert!(profiled.chrome_json.contains("\"ph\":\"C\""));
        assert!(profiled.chrome_json.trim_end().ends_with("]}"));
    }

    #[test]
    fn avgn_square_wave_oscillates_the_predictor() {
        let out = export("avgn", 1, Some(2)).expect("known scenario");
        assert!(out.events > 0);
        assert!(out.csv.starts_with("time_us,run,seq,event,detail\n"));
        // The 9/1 wave drives AVG_3 up and down: decisions in both
        // directions must appear.
        assert!(out.csv.contains(",policy,"), "no policy decisions:\n");
        assert!(out.chrome_json.starts_with("{\"traceEvents\":["));
    }
}
