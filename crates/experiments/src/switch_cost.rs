//! §5.4 switch-cost measurement.
//!
//! The paper codes "a tight loop that switched the processor clock as
//! quickly as possible", inverting a GPIO before each change and timing
//! the gaps with the DAQ. Findings reproduced here:
//!
//! - clock scaling takes ≈200 µs "independent of the starting or target
//!   speed" — between ≈11,800 clock periods at 59 MHz and ≈40,000 at
//!   200 MHz;
//! - voltage *down* (1.5 → 1.23 V) settles in ≈250 µs (with an
//!   undershoot before stabilising); voltage *up* is effectively
//!   instantaneous;
//! - both are under 2 % of a 10 ms scheduling interval.

use core::fmt;

use itsy_hw::clock::{V_HIGH, V_LOW};
use itsy_hw::{ClockTable, CpuCore, Gpio, PowerParams};
use sim_core::{SimDuration, SimTime};

use crate::report;

/// One measured transition.
#[derive(Debug, Clone, Copy)]
pub struct SwitchSample {
    /// Source step.
    pub from: usize,
    /// Target step.
    pub to: usize,
    /// Measured stall.
    pub stall: SimDuration,
}

/// The measurement results.
pub struct SwitchCost {
    /// Clock-change samples across many step pairs.
    pub clock_samples: Vec<SwitchSample>,
    /// Voltage-down settle time.
    pub voltage_down: SimDuration,
    /// Voltage-up settle time.
    pub voltage_up: SimDuration,
    /// GPIO edges recorded during the tight loop.
    pub gpio_edges: usize,
}

/// Runs the tight switch loop across every adjacent and extreme pair.
pub fn run() -> SwitchCost {
    let table = ClockTable::sa1100();
    let params = PowerParams::default();
    let mut cpu = CpuCore::new(table.clone(), 0);
    let mut gpio = Gpio::new();
    let mut now = SimTime::ZERO;
    let mut clock_samples = Vec::new();

    // The paper's loop: toggle the pin, switch, repeat — "across many
    // different clock settings (e.g. from 59 to 206MHz, from 191 to
    // 206MHz and so on)".
    let mut pairs: Vec<(usize, usize)> = (0..table.len() - 1).map(|i| (i, i + 1)).collect();
    pairs.push((0, 10));
    pairs.push((10, 0));
    pairs.push((9, 10));
    pairs.push((10, 5));
    for (from, to) in pairs {
        cpu.set_step(from, &params);
        gpio.toggle(now, 0);
        let t = cpu.set_step(to, &params);
        now += t.stall + SimDuration::from_micros(5);
        clock_samples.push(SwitchSample {
            from,
            to,
            stall: t.stall,
        });
    }

    // Voltage settle times, measured at a safe step.
    cpu.set_step(5, &params);
    let down = cpu.request(5, V_LOW, &params).expect("safe at 132.7");
    let up = cpu.request(5, V_HIGH, &params).expect("always safe");

    SwitchCost {
        clock_samples,
        voltage_down: down.settle,
        voltage_up: up.settle,
        gpio_edges: gpio.edges().len(),
    }
}

impl SwitchCost {
    /// Periods of the slowest clock covered by one stall.
    pub fn periods_at_59(&self) -> u64 {
        ClockTable::sa1100()
            .freq(0)
            .cycles_in(self.clock_samples[0].stall)
    }

    /// Periods of the fastest clock covered by one stall.
    pub fn periods_at_206(&self) -> u64 {
        ClockTable::sa1100()
            .freq(10)
            .cycles_in(self.clock_samples[0].stall)
    }

    /// Worst-case overhead as a fraction of a 10 ms quantum.
    pub fn quantum_overhead(&self) -> f64 {
        let worst = self
            .clock_samples
            .iter()
            .map(|s| s.stall)
            .max()
            .unwrap_or(SimDuration::ZERO)
            .max(self.voltage_down);
        worst.as_micros() as f64 / 10_000.0
    }

    /// Writes the samples as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["from_step", "to_step", "stall_us"],
            &self
                .clock_samples
                .iter()
                .map(|s| {
                    vec![
                        s.from.to_string(),
                        s.to.to_string(),
                        s.stall.as_micros().to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("switch_cost", "clock_switches", &doc).map(|_| ())
    }
}

impl fmt::Display for SwitchCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Switch costs (section 5.4)")?;
        let rows = vec![
            vec![
                "clock change".into(),
                format!("{}", self.clock_samples[0].stall),
                format!(
                    "{} periods @59MHz, {} @206.4MHz",
                    self.periods_at_59(),
                    self.periods_at_206()
                ),
            ],
            vec![
                "voltage down (1.5->1.23V)".into(),
                format!("{}", self.voltage_down),
                "slow settle with undershoot".into(),
            ],
            vec![
                "voltage up (1.23->1.5V)".into(),
                format!("{}", self.voltage_up),
                "effectively instantaneous".into(),
            ],
            vec![
                "worst quantum overhead".into(),
                format!("{:.1}%", self.quantum_overhead() * 100.0),
                "paper: < 2%".into(),
            ],
        ];
        f.write_str(&report::render_table(
            &["transition", "time", "notes"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_cost_is_200us_independent_of_pair() {
        let c = run();
        assert!(c.clock_samples.len() > 10);
        for s in &c.clock_samples {
            assert_eq!(
                s.stall.as_micros(),
                200,
                "{} -> {} cost {}",
                s.from,
                s.to,
                s.stall
            );
        }
    }

    #[test]
    fn period_counts_match_the_paper() {
        let c = run();
        // "between 11,200 clock periods at 59MHz and 40,000 at 200MHz"
        // (200 us x 59 MHz = 11,800; x 206.4 MHz = 41,280).
        assert_eq!(c.periods_at_59(), 11_800);
        assert_eq!(c.periods_at_206(), 41_280);
    }

    #[test]
    fn voltage_asymmetry() {
        let c = run();
        assert_eq!(c.voltage_down.as_micros(), 250);
        assert_eq!(c.voltage_up, SimDuration::ZERO);
    }

    #[test]
    fn overhead_within_2_5_percent_of_quantum() {
        let c = run();
        assert!(c.quantum_overhead() <= 0.025, "{}", c.quantum_overhead());
    }

    #[test]
    fn gpio_instrumentation_recorded_every_switch() {
        let c = run();
        assert_eq!(c.gpio_edges, c.clock_samples.len());
    }
}
