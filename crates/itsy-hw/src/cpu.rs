//! The SA-1100 core as a clock/voltage state machine.
//!
//! [`CpuCore`] tracks the current clock step, core voltage and execution
//! mode, and charges the transition costs the paper measured:
//!
//! - changing the clock step stalls instruction execution for ≈200 µs,
//!   independent of source and target step ("between 11,200 clock periods
//!   at 59 MHz and 40,000 at 200 MHz");
//! - lowering the voltage takes ≈250 µs to settle (with an undershoot
//!   below the target before it stabilises); raising it is effectively
//!   instantaneous.
//!
//! The low 1.23 V supply is below the manufacturer's specification and is
//! only safe "at moderate clock speeds"; [`CpuCore`] enforces a maximum
//! step for it (162.2 MHz, the threshold the paper's voltage-scaling
//! policy uses).

use core::fmt;

use sim_core::{Frequency, SimDuration, Voltage};

#[cfg(test)]
use crate::clock::V_LOW;
use crate::clock::{ClockTable, StepIndex, V_HIGH};
use crate::power::PowerParams;

/// Fastest step (index into the SA-1100 table) at which the 1.23 V
/// supply is considered stable: 162.2 MHz.
pub const V_LOW_MAX_STEP: StepIndex = 7;

/// Execution mode of the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuMode {
    /// Executing instructions.
    Run,
    /// Idle "nap": pipeline stalled until the next interrupt, clocks
    /// running, peripherals active.
    Nap,
    /// Mid clock-change: no instructions execute.
    Stalled,
}

/// Error returned for electrically unsafe voltage/frequency requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsafeVoltage {
    /// The requested step.
    pub step: StepIndex,
    /// The requested voltage.
    pub voltage: Voltage,
}

impl fmt::Display for UnsafeVoltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "voltage {} is unstable at clock step {}",
            self.voltage, self.step
        )
    }
}

impl std::error::Error for UnsafeVoltage {}

/// Cost of applying a requested clock/voltage transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Transition {
    /// Time during which the core executes nothing (clock re-lock).
    pub stall: SimDuration,
    /// Time until the new (lower) voltage is stable. The core keeps
    /// executing during the settle; power accounting uses the old
    /// voltage until it completes.
    pub settle: SimDuration,
}

/// The core clock/voltage state machine plus lifetime transition
/// statistics.
#[derive(Debug, Clone)]
pub struct CpuCore {
    table: ClockTable,
    step: StepIndex,
    voltage: Voltage,
    clock_switches: u64,
    voltage_switches: u64,
    stall_total: SimDuration,
}

impl CpuCore {
    /// Creates a core at the given initial step and the stock 1.5 V.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range for `table`.
    pub fn new(table: ClockTable, step: StepIndex) -> Self {
        assert!(step < table.len(), "initial step out of range");
        CpuCore {
            table,
            step,
            voltage: V_HIGH,
            clock_switches: 0,
            voltage_switches: 0,
            stall_total: SimDuration::ZERO,
        }
    }

    /// The clock table this core runs from.
    pub fn table(&self) -> &ClockTable {
        &self.table
    }

    /// Current clock step.
    pub fn step(&self) -> StepIndex {
        self.step
    }

    /// Current clock frequency.
    pub fn freq(&self) -> Frequency {
        self.table.freq(self.step)
    }

    /// Current core voltage.
    pub fn voltage(&self) -> Voltage {
        self.voltage
    }

    /// Number of clock-step changes so far.
    pub fn clock_switches(&self) -> u64 {
        self.clock_switches
    }

    /// Number of voltage changes so far.
    pub fn voltage_switches(&self) -> u64 {
        self.voltage_switches
    }

    /// Total time spent stalled in clock changes.
    pub fn total_stall(&self) -> SimDuration {
        self.stall_total
    }

    /// True if `voltage` is electrically safe at `step`.
    pub fn is_safe(step: StepIndex, voltage: Voltage) -> bool {
        voltage >= V_HIGH || step <= V_LOW_MAX_STEP
    }

    /// Requests a transition to `(step, voltage)` and returns its cost.
    ///
    /// A no-op request costs nothing. When both the clock and the
    /// voltage change, the costs overlap conservatively: the stall and
    /// settle run concurrently (the paper found both are < 2 % of a
    /// scheduling interval).
    ///
    /// Returns an error — and changes nothing — if the combination is
    /// electrically unsafe (1.23 V above 162.2 MHz).
    pub fn request(
        &mut self,
        step: StepIndex,
        voltage: Voltage,
        params: &PowerParams,
    ) -> Result<Transition, UnsafeVoltage> {
        assert!(step < self.table.len(), "step out of range");
        if !Self::is_safe(step, voltage) {
            return Err(UnsafeVoltage { step, voltage });
        }
        let mut t = Transition::default();
        if step != self.step {
            self.step = step;
            self.clock_switches += 1;
            t.stall = params.clock_switch_stall();
            self.stall_total += t.stall;
        }
        if voltage != self.voltage {
            let lowering = voltage < self.voltage;
            self.voltage = voltage;
            self.voltage_switches += 1;
            if lowering {
                t.settle = params.voltage_settle_down();
            }
        }
        Ok(t)
    }

    /// Like [`CpuCore::request`], but emits [`obs::EventKind::ClockTransition`]
    /// and [`obs::EventKind::VoltageTransition`] events at simulated time
    /// `now_us` into `trace` for every state change actually applied.
    pub fn request_traced(
        &mut self,
        step: StepIndex,
        voltage: Voltage,
        params: &PowerParams,
        now_us: u64,
        trace: &mut obs::Trace,
    ) -> Result<Transition, UnsafeVoltage> {
        let from_khz = self.freq().as_khz();
        let from_mv = self.voltage.as_mv();
        let t = self.request(step, voltage, params)?;
        if trace.is_enabled() {
            let to_khz = self.freq().as_khz();
            if to_khz != from_khz {
                trace.emit(
                    now_us,
                    obs::EventKind::ClockTransition {
                        from_khz: u64::from(from_khz),
                        to_khz: u64::from(to_khz),
                        stall_us: t.stall.as_micros(),
                    },
                );
            }
            let to_mv = self.voltage.as_mv();
            if to_mv != from_mv {
                trace.emit(
                    now_us,
                    obs::EventKind::VoltageTransition {
                        from_mv: u64::from(from_mv),
                        to_mv: u64::from(to_mv),
                        settle_us: t.settle.as_micros(),
                    },
                );
            }
        }
        Ok(t)
    }

    /// Convenience: change only the clock step, keeping voltage.
    pub fn set_step(&mut self, step: StepIndex, params: &PowerParams) -> Transition {
        let v = self.voltage;
        self.request(step, v, params)
            .expect("keeping current voltage cannot become unsafe at a lower step")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> (CpuCore, PowerParams) {
        (
            CpuCore::new(ClockTable::sa1100(), 10),
            PowerParams::default(),
        )
    }

    #[test]
    fn initial_state() {
        let (c, _) = core();
        assert_eq!(c.step(), 10);
        assert_eq!(c.freq(), Frequency::from_khz(206_400));
        assert_eq!(c.voltage(), V_HIGH);
        assert_eq!(c.clock_switches(), 0);
    }

    #[test]
    fn clock_change_costs_200us_regardless_of_distance() {
        let (mut c, p) = core();
        let t1 = c.set_step(0, &p); // 206.4 -> 59.0
        assert_eq!(t1.stall.as_micros(), 200);
        let t2 = c.set_step(1, &p); // 59.0 -> 73.7
        assert_eq!(t2.stall.as_micros(), 200);
        assert_eq!(c.clock_switches(), 2);
        assert_eq!(c.total_stall().as_micros(), 400);
    }

    #[test]
    fn noop_request_is_free() {
        let (mut c, p) = core();
        let t = c.request(10, V_HIGH, &p).unwrap();
        assert_eq!(t, Transition::default());
        assert_eq!(c.clock_switches(), 0);
        assert_eq!(c.voltage_switches(), 0);
    }

    #[test]
    fn voltage_down_settles_up_is_instant() {
        let (mut c, p) = core();
        c.set_step(5, &p);
        let down = c.request(5, V_LOW, &p).unwrap();
        assert_eq!(down.settle.as_micros(), 250);
        assert_eq!(down.stall, SimDuration::ZERO);
        let up = c.request(5, V_HIGH, &p).unwrap();
        assert_eq!(up.settle, SimDuration::ZERO);
        assert_eq!(c.voltage_switches(), 2);
    }

    #[test]
    fn low_voltage_unsafe_above_162mhz() {
        let (mut c, p) = core();
        let err = c.request(8, V_LOW, &p).unwrap_err();
        assert_eq!(err.step, 8);
        // State unchanged on error.
        assert_eq!(c.step(), 10);
        assert_eq!(c.voltage(), V_HIGH);
        // At step 7 (162.2 MHz) it is allowed.
        assert!(c.request(7, V_LOW, &p).is_ok());
    }

    #[test]
    fn safety_predicate_matches_paper_threshold() {
        assert!(CpuCore::is_safe(7, V_LOW));
        assert!(!CpuCore::is_safe(8, V_LOW));
        assert!(CpuCore::is_safe(10, V_HIGH));
    }

    #[test]
    fn combined_change_overlaps_costs() {
        let (mut c, p) = core();
        let t = c.request(3, V_LOW, &p).unwrap();
        assert_eq!(t.stall.as_micros(), 200);
        assert_eq!(t.settle.as_micros(), 250);
        assert_eq!(c.step(), 3);
        assert_eq!(c.voltage(), V_LOW);
    }

    #[test]
    fn traced_request_emits_only_applied_changes() {
        let (mut c, p) = core();
        let mut trace = obs::Trace::on();
        // No-op: nothing emitted.
        c.request_traced(10, V_HIGH, &p, 0, &mut trace).unwrap();
        assert!(trace.is_empty());
        // Clock + voltage change: one event each, at the given time.
        c.request_traced(5, V_LOW, &p, 10_000, &mut trace).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].time_us, 10_000);
        assert_eq!(trace.events()[0].kind.name(), "clock");
        assert_eq!(trace.events()[1].kind.name(), "voltage");
        // Unsafe request: error, nothing emitted.
        assert!(c.request_traced(10, V_LOW, &p, 20_000, &mut trace).is_err());
        assert_eq!(trace.len(), 2);
        // Disabled trace stays empty but the transition still applies.
        let mut off = obs::Trace::off();
        c.request_traced(10, V_HIGH, &p, 30_000, &mut off).unwrap();
        assert!(off.is_empty());
        assert_eq!(c.step(), 10);
    }

    #[test]
    fn switch_overhead_is_under_2_percent_of_quantum() {
        // Section 5.4: "the time needed for clock and voltage changes are
        // less than 2% of the scheduling interval".
        let p = PowerParams::default();
        let quantum_us = 10_000.0;
        assert!(p.clock_switch_stall().as_micros() as f64 / quantum_us <= 0.02);
        assert!(p.voltage_settle_down().as_micros() as f64 / quantum_us <= 0.025);
    }
}
