//! Ablations of the design choices DESIGN.md calls out.
//!
//! - **interval length** — §5.2: "averaging over such a long period of
//!   time caused us to miss our 'deadline'... the MPEG audio and video
//!   became unsynchronized"; the 10 ms interval is load-bearing.
//! - **memory model** — the Figure 9 plateau exists only because of the
//!   Table 3 wait-state quantization (see `fig9::run_with_memory`).
//! - **voltage-scaling threshold** — how much the 1.23 V rail can save
//!   depends on how fast a clock it is allowed under.

use core::fmt;

use engine::{Engine, EngineConfig, JobSpec, WorkloadSpec};
use itsy_hw::ClockTable;
use policies::{Hysteresis, PolicyDesc, PredictorDesc, SpeedChange, VoltageRule};
use sim_core::SimDuration;
use workloads::Benchmark;

use crate::report;

/// Result of one interval-length cell.
#[derive(Debug, Clone, Copy)]
pub struct IntervalCell {
    /// Scheduling interval, ms.
    pub interval_ms: u64,
    /// Deadline misses beyond tolerance.
    pub misses: usize,
    /// Energy, joules.
    pub energy_j: f64,
    /// Worst frame lateness, ms.
    pub max_lateness_ms: u64,
}

/// The interval-length ablation.
pub struct IntervalAblation {
    /// One cell per interval length.
    pub cells: Vec<IntervalCell>,
}

/// Runs MPEG under the best policy with 10/50/100 ms intervals.
pub fn interval_length(seed: u64) -> IntervalAblation {
    interval_length_with(&Engine::new(EngineConfig::in_memory()), seed)
}

/// [`interval_length`] on an explicit engine.
pub fn interval_length_with(eng: &Engine, seed: u64) -> IntervalAblation {
    const INTERVALS_MS: [u64; 3] = [10, 50, 100];
    let specs: Vec<JobSpec> = INTERVALS_MS
        .iter()
        .map(|&ms| {
            JobSpec::new(
                WorkloadSpec::Benchmark(Benchmark::Mpeg),
                PolicyDesc::best_from_paper(),
                30,
                seed,
            )
            .with_quantum(SimDuration::from_millis(ms))
        })
        .collect();
    let results = eng.run_batch("ablation-interval", &specs).expect_all();
    let cells = INTERVALS_MS
        .iter()
        .zip(&results)
        .map(|(&ms, r)| IntervalCell {
            interval_ms: ms,
            misses: r.misses as usize,
            energy_j: r.energy_j,
            max_lateness_ms: r.max_lateness_us / 1_000,
        })
        .collect();
    IntervalAblation { cells }
}

impl IntervalAblation {
    /// Writes the cells as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["interval_ms", "misses", "energy_j", "max_lateness_ms"],
            &self
                .cells
                .iter()
                .map(|c| {
                    vec![
                        c.interval_ms.to_string(),
                        c.misses.to_string(),
                        format!("{:.2}", c.energy_j),
                        c.max_lateness_ms.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("ablation", "interval_length", &doc).map(|_| ())
    }
}

impl fmt::Display for IntervalAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation: scheduling interval length (MPEG, best policy)"
        )?;
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    format!("{} ms", c.interval_ms),
                    c.misses.to_string(),
                    format!("{:.1} J", c.energy_j),
                    format!("{} ms", c.max_lateness_ms),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &["interval", "misses", "energy", "max lateness"],
            &rows,
        ))
    }
}

/// Result of one voltage-threshold cell.
#[derive(Debug, Clone, Copy)]
pub struct VscaleCell {
    /// Fastest step allowed at 1.23 V.
    pub threshold_step: usize,
    /// Energy, joules.
    pub energy_j: f64,
    /// Deadline misses.
    pub misses: usize,
}

/// The voltage-threshold ablation.
pub struct VscaleAblation {
    /// One cell per threshold, plus the no-scaling baseline first.
    pub cells: Vec<VscaleCell>,
}

/// Runs MPEG under the best policy with varying voltage thresholds.
/// `threshold_step = usize::MAX` in the result encodes "no scaling".
pub fn vscale_threshold(seed: u64) -> VscaleAblation {
    vscale_threshold_with(&Engine::new(EngineConfig::in_memory()), seed)
}

/// [`vscale_threshold`] on an explicit engine.
pub fn vscale_threshold_with(eng: &Engine, seed: u64) -> VscaleAblation {
    let rules: Vec<Option<VoltageRule>> = std::iter::once(None)
        .chain([3usize, 5, 7].map(|step| {
            Some(VoltageRule {
                low_at_or_below: step,
            })
        }))
        .collect();
    let specs: Vec<JobSpec> = rules
        .iter()
        .map(|rule| {
            let mut policy = PolicyDesc::best_from_paper();
            if let Some(r) = rule {
                policy = policy.with_voltage_rule(*r);
            }
            JobSpec::new(WorkloadSpec::Benchmark(Benchmark::Mpeg), policy, 30, seed)
        })
        .collect();
    let results = eng.run_batch("ablation-vscale", &specs).expect_all();
    let cells = rules
        .iter()
        .zip(&results)
        .map(|(rule, r)| VscaleCell {
            threshold_step: rule.map_or(usize::MAX, |r| r.low_at_or_below),
            energy_j: r.energy_j,
            misses: r.misses as usize,
        })
        .collect();
    VscaleAblation { cells }
}

impl VscaleAblation {
    /// Writes the cells as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["threshold_step", "energy_j", "misses"],
            &self
                .cells
                .iter()
                .map(|c| {
                    vec![
                        if c.threshold_step == usize::MAX {
                            "none".to_string()
                        } else {
                            c.threshold_step.to_string()
                        },
                        format!("{:.2}", c.energy_j),
                        c.misses.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("ablation", "vscale_threshold", &doc).map(|_| ())
    }
}

impl fmt::Display for VscaleAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: voltage-scaling threshold (MPEG, best policy)")?;
        let table = ClockTable::sa1100();
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    if c.threshold_step == usize::MAX {
                        "no voltage scaling".to_string()
                    } else {
                        format!("1.23V at <= {}", table.freq(c.threshold_step))
                    },
                    format!("{:.2} J", c.energy_j),
                    c.misses.to_string(),
                ]
            })
            .collect();
        f.write_str(&report::render_table(&["rule", "energy", "misses"], &rows))
    }
}

/// One cell of the Java-poller ablation.
#[derive(Debug, Clone, Copy)]
pub struct PollerCell {
    /// Whether the Kaffe poller ran.
    pub with_poller: bool,
    /// Clock switches over the run.
    pub switches: u64,
    /// Mean clock, MHz.
    pub mean_mhz: f64,
    /// Energy, joules.
    pub energy_j: f64,
}

/// §5.3: "the Java implementation uses a 30ms polling loop ... This
/// periodic polling adds additional variation to the clock setting
/// algorithms." This ablation runs the Web browse trace with and
/// without the poller under a settling-prone policy (AVG_3, one-one)
/// and measures the *additional* switching, clock elevation and energy
/// the poll ripple contributes on top of the workload's own bursts.
pub fn java_poller(seed: u64) -> (PollerCell, PollerCell) {
    java_poller_with(&Engine::new(EngineConfig::in_memory()), seed)
}

/// [`java_poller`] on an explicit engine.
pub fn java_poller_with(eng: &Engine, seed: u64) -> (PollerCell, PollerCell) {
    let policy = PolicyDesc::interval(
        PredictorDesc::AvgN(3),
        Hysteresis::BEST,
        SpeedChange::One,
        SpeedChange::One,
    );
    let specs: Vec<JobSpec> = [false, true]
        .map(|poller| JobSpec::new(WorkloadSpec::WebBrowse { poller }, policy, 60, seed))
        .to_vec();
    let results = eng.run_batch("ablation-poller", &specs).expect_all();
    let cell = |i: usize, with_poller: bool| PollerCell {
        with_poller,
        switches: results[i].clock_switches,
        mean_mhz: results[i].mean_freq_mhz,
        energy_j: results[i].energy_j,
    };
    (cell(0, false), cell(1, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_intervals_miss_deadlines() {
        // The paper's reason for 10-50 ms intervals: at 100 ms the
        // system reacts too slowly and A/V sync is lost.
        let a = interval_length(1);
        let at = |ms: u64| a.cells.iter().find(|c| c.interval_ms == ms).unwrap();
        assert_eq!(at(10).misses, 0, "10 ms interval must be safe");
        assert!(
            at(100).misses > 0,
            "100 ms interval should desynchronize (max lateness {} ms)",
            at(100).max_lateness_ms
        );
        // Lateness grows with the interval.
        assert!(at(100).max_lateness_ms > at(10).max_lateness_ms);
    }

    #[test]
    fn the_poller_adds_variation() {
        // The paper's wording is precise: the polling "adds *additional*
        // variation" on top of the workload's own burstiness — more
        // clock switches, a higher mean clock and more energy, without
        // being the dominant source of flapping.
        let (without, with) = java_poller(1);
        assert!(
            with.switches > without.switches,
            "poller: {} switches vs {} without",
            with.switches,
            without.switches
        );
        assert!(with.mean_mhz > without.mean_mhz);
        assert!(with.energy_j > without.energy_j);
    }

    #[test]
    fn wider_voltage_window_saves_more() {
        let a = vscale_threshold(1);
        let none = a.cells[0].energy_j;
        let narrow = a.cells[1].energy_j; // <= 103.2 MHz
        let wide = a.cells[3].energy_j; // <= 162.2 MHz
        assert!(wide <= narrow + 0.05, "wide {wide} vs narrow {narrow}");
        assert!(wide <= none + 0.05, "scaling must not cost energy");
        for c in &a.cells {
            assert_eq!(c.misses, 0);
        }
    }
}
