//! Property-based tests over the public API: invariants that must hold
//! for arbitrary inputs, not just the calibrated configurations.

use proptest::prelude::*;

use itsy_dvs::dvs::{AvgN, ClockPolicy, Hysteresis, IntervalScheduler, Predictor, SpeedChange};
use itsy_dvs::hw::{ClockTable, MemoryTiming, Work, WorkProgress};
use itsy_dvs::kernel::{Kernel, KernelConfig, Machine, TaskAction};
use itsy_dvs::sim::{SimDuration, SimTime};

proptest! {
    /// AVG_N output stays inside the convex hull of its inputs.
    #[test]
    fn avg_n_is_bounded(n in 0u32..12, inputs in proptest::collection::vec(0.0f64..=1.0, 1..200)) {
        let mut p = AvgN::new(n);
        for &u in &inputs {
            let w = p.observe(u);
            prop_assert!((0.0..=1.0).contains(&w), "w = {w}");
        }
    }

    /// Feeding a constant converges to that constant.
    #[test]
    fn avg_n_converges(n in 0u32..10, target in 0.0f64..=1.0) {
        let mut p = AvgN::new(n);
        for _ in 0..2_000 {
            p.observe(target);
        }
        prop_assert!((p.current() - target).abs() < 1e-6);
    }

    /// Speed-setting rules always return valid steps, with up >= current
    /// and down <= current.
    #[test]
    fn speed_rules_are_monotone(cur in 0usize..11) {
        let table = ClockTable::sa1100();
        for rule in [SpeedChange::One, SpeedChange::Double, SpeedChange::Peg] {
            let up = rule.up(cur, &table);
            let down = rule.down(cur, &table);
            prop_assert!(up >= cur && up < table.len());
            prop_assert!(down <= cur);
        }
    }

    /// Work execution conserves demand across arbitrary budget splits:
    /// running in two pieces takes the same total time (±1 µs rounding
    /// per piece) as running whole.
    #[test]
    fn work_split_conserves_time(
        cpu in 1.0e3f64..1.0e8,
        refs in 0.0f64..1.0e5,
        lines in 0.0f64..1.0e5,
        split_ms in 1u64..500,
        step in 0usize..11,
    ) {
        let table = ClockTable::sa1100();
        let mem = MemoryTiming::sa1100_edo();
        let freq = table.freq(step);
        let w = Work::new(cpu, refs, lines);
        let whole = w.time_at(step, freq, &mem);
        let budget = SimDuration::from_millis(split_ms);
        match w.execute_for(budget, step, freq, &mem) {
            WorkProgress::Completed(d) => prop_assert!(d <= budget && d == whole),
            WorkProgress::Remaining(rest) => {
                let rest_t = rest.time_at(step, freq, &mem);
                let total = budget.as_micros() + rest_t.as_micros();
                let diff = total as i64 - whole.as_micros() as i64;
                prop_assert!(diff.abs() <= 2, "split cost {total} vs whole {}", whole.as_micros());
            }
        }
    }

    /// Higher clock steps never make *CPU-bound* work slower. (For
    /// memory-bound work this is false — see
    /// `memory_bound_work_can_invert` below — which is the extreme form
    /// of the paper's Figure 9 non-linearity.)
    #[test]
    fn faster_clock_never_slows_cpu_bound_work(
        cpu in 1.0e3f64..1.0e8,
        step in 0usize..10,
    ) {
        let table = ClockTable::sa1100();
        let mem = MemoryTiming::sa1100_edo();
        let w = Work::cycles(cpu);
        let slow = w.time_at(step, table.freq(step), &mem);
        let fast = w.time_at(step + 1, table.freq(step + 1), &mem);
        prop_assert!(fast <= slow, "step {} -> {}: {:?} -> {:?}", step, step + 1, slow, fast);
    }

    /// The kernel conserves time for arbitrary synthetic workloads:
    /// busy + idle == elapsed, utilization in [0, 1], energy positive.
    #[test]
    fn kernel_conserves_time(
        busy_q in 0u64..12,
        idle_q in 0u64..12,
        step in 0usize..11,
        n in 0u32..6,
    ) {
        prop_assume!(busy_q + idle_q > 0);
        let mut kernel = Kernel::new(
            Machine::itsy(step, itsy_dvs::hw::DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_secs(2),
                ..KernelConfig::default()
            },
        );
        kernel.spawn(Box::new(itsy_dvs::apps::SquareWave::quanta(busy_q, idle_q)));
        kernel.install_policy(Box::new(IntervalScheduler::new(
            Box::new(AvgN::new(n)),
            Hysteresis::BEST,
            SpeedChange::Peg,
            SpeedChange::One,
            ClockTable::sa1100(),
        )));
        let r = kernel.run();
        prop_assert_eq!(r.time_accounted(), SimDuration::from_secs(2));
        prop_assert!(r.energy.as_joules() > 0.0);
        for u in r.utilization.values() {
            prop_assert!((0.0..=1.0).contains(&u));
        }
        // The stall budget can't exceed 200 us per tick.
        prop_assert!(r.stalled.as_micros() <= 200 * 200);
    }

    /// Interval schedulers only ever request valid steps.
    #[test]
    fn governor_requests_valid_steps(
        utils in proptest::collection::vec(0.0f64..=1.0, 1..100),
        n in 0u32..10,
        up_i in 0usize..3,
        down_i in 0usize..3,
    ) {
        let rules = [SpeedChange::One, SpeedChange::Double, SpeedChange::Peg];
        let table = ClockTable::sa1100();
        let mut gov = IntervalScheduler::new(
            Box::new(AvgN::new(n)),
            Hysteresis { up: 0.7, down: 0.5 },
            rules[up_i],
            rules[down_i],
            table.clone(),
        );
        let mut cur = 0usize;
        for (i, &u) in utils.iter().enumerate() {
            let req = gov.on_interval(SimTime::from_millis(10 * (i as u64 + 1)), u, cur);
            if let Some(s) = req.step {
                prop_assert!(s < table.len());
                prop_assert!(s != cur, "no-op requests are filtered");
                cur = s;
            }
        }
    }

    /// For sufficiently memory-bound work, the Table 3 wait-state jumps
    /// make a *faster* clock step slower in wall time: the per-line
    /// cost rises 42 -> 49 cycles across 132.7 -> 147.5 MHz (+16.7%)
    /// while the clock gains only +11.2%. This is the extreme form of
    /// the Figure 9 non-linearity.
    #[test]
    fn memory_bound_work_can_invert(lines in 1.0e4f64..1.0e6) {
        let table = ClockTable::sa1100();
        let mem = MemoryTiming::sa1100_edo();
        let w = Work::new(0.0, 0.0, lines);
        let at_132 = w.time_at(5, table.freq(5), &mem);
        let at_147 = w.time_at(6, table.freq(6), &mem);
        prop_assert!(at_147 > at_132, "pure line-fill work must invert here");
    }

    /// Tasks that exit immediately leave a fully idle, zero-deadline
    /// system regardless of how many are spawned.
    #[test]
    fn exiting_tasks_leave_an_idle_system(count in 1usize..20) {
        let mut kernel = Kernel::new(
            Machine::itsy(10, itsy_dvs::hw::DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_secs(1),
                ..KernelConfig::default()
            },
        );
        for i in 0..count {
            kernel.spawn(Box::new(itsy_dvs::kernel::task::FnBehavior::new(
                format!("t{i}"),
                |_ctx| TaskAction::Exit,
            )));
        }
        let r = kernel.run();
        prop_assert_eq!(r.busy, SimDuration::ZERO);
        prop_assert_eq!(r.idle, SimDuration::from_secs(1));
        prop_assert!(r.deadlines.is_empty());
    }
}
