//! Golden fixtures for the speed-scaling module: small instances whose
//! optimal schedules are worked out by hand, pinned as exact segment
//! lists and energies. If `yds` or the discretization drifts, these
//! say precisely where.

use policies::scaling::{
    avr, bkp, edf_feasible, itsy_step_speeds, oa, qoa_for, quantize_to_steps, yds, yds_on_steps,
    Job, JobSet, PowerModel,
};

fn assert_close(got: f64, want: f64, what: &str) {
    assert!((got - want).abs() < 1e-9, "{what}: got {got}, want {want}");
}

fn assert_segment(
    s: &policies::SpeedSegment,
    start: f64,
    end: f64,
    speed: f64,
    executed: f64,
    what: &str,
) {
    assert_close(s.start, start, &format!("{what} start"));
    assert_close(s.end, end, &format!("{what} end"));
    assert_close(s.speed, speed, &format!("{what} speed"));
    assert_close(s.executed, executed, &format!("{what} executed"));
}

/// One job of 5 units across [0, 10]: the optimum spreads it at speed
/// 1/2 — which happens to be exactly the Itsy's 103.2 MHz step, so
/// discretization is free here.
#[test]
fn single_job_spreads_across_its_window() {
    let set = JobSet::new(vec![Job::new(0.0, 10.0, 5.0)]);
    let opt = yds(&set);
    assert_eq!(opt.segments.len(), 1);
    assert_segment(&opt.segments[0], 0.0, 10.0, 0.5, 5.0, "only segment");
    assert_close(opt.max_speed, 0.5, "max speed");
    assert_close(opt.energy(&PowerModel::weiser()), 1.25, "energy α=2");
    assert_close(opt.energy(&PowerModel::cube()), 0.625, "energy α=3");
    assert!(edf_feasible(&set, &opt.segments));

    let q = yds_on_steps(&set, &itsy_step_speeds());
    assert!(q.feasible);
    assert_close(q.segments[0].speed, 103.2 / 206.4, "quantized speed");
    assert_close(
        q.energy(&PowerModel::weiser()),
        opt.energy(&PowerModel::weiser()),
        "on-step optimum pays no quantization penalty",
    );
}

/// Two nested jobs: 4 units on [0, 10] around 4 units on [2, 6]. The
/// critical interval is [2, 6] at speed 1; the outer job then spreads
/// its work over the remaining axis [0, 2] ∪ [6, 10] at 4/6.
#[test]
fn nested_jobs_carve_out_the_critical_interval() {
    let set = JobSet::new(vec![Job::new(0.0, 10.0, 4.0), Job::new(2.0, 6.0, 4.0)]);
    let opt = yds(&set);
    assert_eq!(opt.segments.len(), 3, "segments: {:?}", opt.segments);
    assert_segment(&opt.segments[0], 0.0, 2.0, 4.0 / 6.0, 8.0 / 6.0, "left");
    assert_segment(&opt.segments[1], 2.0, 6.0, 1.0, 4.0, "critical");
    assert_segment(&opt.segments[2], 6.0, 10.0, 4.0 / 6.0, 16.0 / 6.0, "right");
    assert_close(opt.max_speed, 1.0, "max speed");
    // E = 4·1² + 4·(2/3)² = 4 + 16/9.
    assert_close(opt.energy(&PowerModel::weiser()), 4.0 + 16.0 / 9.0, "α=2");
    // E = 4·1³ + 4·(2/3)³ = 4 + 32/27.
    assert_close(opt.energy(&PowerModel::cube()), 4.0 + 32.0 / 27.0, "α=3");
    assert!(edf_feasible(&set, &opt.segments));
}

/// The worked three-job critical-interval example: a 12-unit burst on
/// [4, 10] forces speed 2, a small job on [12, 16] runs at 1/2 on what
/// remains, and the long background job fills the leftover axis
/// [0, 4] ∪ [10, 12] ∪ [16, 20] at 1/5. Three rounds of the
/// construction, each visible as its own speed level.
#[test]
fn three_round_critical_interval_example() {
    let set = JobSet::new(vec![
        Job::new(0.0, 20.0, 2.0),
        Job::new(4.0, 10.0, 12.0),
        Job::new(12.0, 16.0, 2.0),
    ]);
    let opt = yds(&set);
    assert_eq!(opt.segments.len(), 5, "segments: {:?}", opt.segments);
    assert_segment(&opt.segments[0], 0.0, 4.0, 0.2, 0.8, "background left");
    assert_segment(&opt.segments[1], 4.0, 10.0, 2.0, 12.0, "burst");
    assert_segment(&opt.segments[2], 10.0, 12.0, 0.2, 0.4, "background mid");
    assert_segment(&opt.segments[3], 12.0, 16.0, 0.5, 2.0, "small job");
    assert_segment(&opt.segments[4], 16.0, 20.0, 0.2, 0.8, "background right");
    assert_close(opt.max_speed, 2.0, "max speed");
    // E(α=2) = 12·4 + 2·0.25 + 2·0.04 = 48.58.
    assert_close(opt.energy(&PowerModel::weiser()), 48.58, "α=2");
    assert!(edf_feasible(&set, &opt.segments));
    // Speed 2 exceeds the fastest clock: the Itsy cannot run this one.
    let q = quantize_to_steps(&opt, &itsy_step_speeds());
    assert!(!q.feasible, "a speed-2 burst must be flagged infeasible");
}

/// Quantization pays exactly the round-up-to-next-step penalty: 5.5
/// units over [0, 10] needs speed 0.55, between the 103.2 and
/// 118.0 MHz steps, so the discretized optimum runs at 118.0/206.4.
#[test]
fn quantization_rounds_to_the_next_itsy_step() {
    let set = JobSet::new(vec![Job::new(0.0, 10.0, 5.5)]);
    let steps = itsy_step_speeds();
    let q = yds_on_steps(&set, &steps);
    assert!(q.feasible);
    let step = 118.0 / 206.4;
    assert_close(q.segments[0].speed, step, "rounded speed");
    assert_close(
        q.energy(&PowerModel::weiser()),
        5.5 * step * step,
        "quantized energy α=2",
    );
    assert!(edf_feasible(&set, &q.segments));
}

/// On a single job, OA and AVR both coincide with the optimum (their
/// defining quantities equal the job's density), while qOA and BKP
/// deliberately over-provision.
#[test]
fn online_algorithms_on_a_single_job() {
    let set = JobSet::new(vec![Job::new(0.0, 10.0, 5.0)]);
    let power = PowerModel::weiser();
    let e_opt = yds(&set).energy(&power);
    for s in [oa(&set), avr(&set)] {
        assert!(s.feasible, "{} missed the deadline", s.name);
        assert_close(
            s.energy(&power),
            e_opt,
            &format!("{} matches OPT on one job", s.name),
        );
    }
    for s in [qoa_for(&set, &power), bkp(&set)] {
        assert!(s.feasible, "{} missed the deadline", s.name);
        assert!(
            s.energy(&power) > e_opt + 1e-9,
            "{} should over-provision on one job",
            s.name
        );
    }
}

/// Two sequential equal jobs inside one merged optimal segment: the
/// on-steps replay must not pull the second job's work forward past
/// its release (the naive "compress to the front" discretization would
/// — this pins the regression).
#[test]
fn sequential_jobs_stay_feasible_after_quantization() {
    // Speeds: each job needs 0.45 over its half; merged segment [0, 10]
    // at 0.45 rounds up to 0.5 (103.2 MHz) with idle slack.
    let set = JobSet::new(vec![Job::new(0.0, 5.0, 2.25), Job::new(5.0, 10.0, 2.25)]);
    let opt = yds(&set);
    assert_eq!(opt.segments.len(), 1, "one merged segment");
    assert_close(opt.segments[0].speed, 0.45, "merged speed");
    let q = yds_on_steps(&set, &itsy_step_speeds());
    assert!(q.feasible);
    assert!(
        edf_feasible(&set, &q.segments),
        "quantized schedule must respect the second release"
    );
    assert_close(q.segments[0].speed, 103.2 / 206.4, "rounded speed");
}
