//! The property-test oracle harness for the speed-scaling module.
//!
//! The YDS optimum is an *exact lower bound*: any schedule that
//! finishes every job inside its window spends at least as much energy
//! under any convex power model. That turns the offline optimum into
//! an oracle for the whole online suite — on random feasible job sets,
//! every algorithm must (a) stay deadline-feasible, (b) conserve work,
//! and (c) never beat the bound. The discretized optimum must
//! additionally sit inside the quantization corridor implied by
//! adjacent Itsy clock steps.

use proptest::prelude::*;

use policies::scaling::{
    avr, bkp, edf_feasible, itsy_step_speeds, oa, qoa_for, quantize_to_steps, yds, Job, JobSet,
    PowerModel,
};

/// Builds a job set from raw `(release, duration, work)` triples and
/// rescales the works so the continuous optimum stays comfortably
/// under the Itsy's top speed — keeping every random instance
/// step-feasible without rejection sampling.
fn feasible_set(raw: &[(f64, f64, f64)]) -> JobSet {
    let set = JobSet::new(
        raw.iter()
            .map(|&(r, len, w)| Job::new(r, r + len, w))
            .collect(),
    );
    let peak = yds(&set).max_speed;
    if peak > 0.85 {
        set.with_work_scaled(0.85 / peak)
    } else {
        set
    }
}

proptest! {
    /// The lower-bound invariant: OA, AVR, BKP and qOA all produce
    /// deadline-feasible, work-conserving schedules that spend at
    /// least the continuous optimum's energy, at α = 2 and α = 3.
    #[test]
    fn online_suite_never_beats_the_exact_optimum(
        raw in proptest::collection::vec(
            (0.0f64..40.0, 0.5f64..12.0, 0.05f64..6.0),
            1..14,
        ),
    ) {
        let set = feasible_set(&raw);
        let opt = yds(&set);
        prop_assert!(opt.max_speed <= 0.86);
        prop_assert!(
            edf_feasible(&set, &opt.segments),
            "the optimum itself must be EDF-feasible"
        );
        let total = set.total_work();
        prop_assert!((opt.executed() - total).abs() < 1e-6 * total.max(1.0));
        for power in [PowerModel::weiser(), PowerModel::cube()] {
            let e_opt = opt.energy(&power);
            for s in [avr(&set), oa(&set), qoa_for(&set, &power), bkp(&set)] {
                prop_assert!(s.feasible, "{} missed a deadline", s.name);
                prop_assert!(
                    (s.executed() - total).abs() < 1e-6 * total.max(1.0),
                    "{} lost work: {} of {total}",
                    s.name,
                    s.executed()
                );
                let e = s.energy(&power);
                prop_assert!(
                    e >= e_opt - 1e-6 * e_opt.max(1e-12),
                    "{} beat the optimum at α={}: {e} < {e_opt}",
                    s.name,
                    power.alpha()
                );
            }
        }
    }

    /// The discretized optimum sits in the quantization corridor:
    /// at least the continuous energy, at most what rounding every
    /// critical interval up by one step can cost —
    /// `r_max^α · E_cont + W · s0^α`, with `r_max` the largest
    /// adjacent-step ratio and `s0` the slowest step.
    #[test]
    fn quantized_optimum_is_within_the_step_bound(
        raw in proptest::collection::vec(
            (0.0f64..40.0, 0.5f64..12.0, 0.05f64..6.0),
            1..14,
        ),
    ) {
        let set = feasible_set(&raw);
        let steps = itsy_step_speeds();
        let r_max = steps
            .windows(2)
            .map(|w| w[1] / w[0])
            .fold(0.0f64, f64::max);
        let s0 = steps[0];
        let opt = yds(&set);
        let q = quantize_to_steps(&opt, &steps);
        prop_assert!(q.feasible, "scaled instances fit the step table");
        prop_assert!(
            edf_feasible(&set, &q.segments),
            "rounding speeds up must preserve EDF feasibility"
        );
        prop_assert!(q.max_speed <= 1.0 + 1e-12);
        for power in [PowerModel::weiser(), PowerModel::cube()] {
            let e_cont = opt.energy(&power);
            let e_q = q.energy(&power);
            prop_assert!(
                e_q >= e_cont - 1e-9,
                "discretization cannot beat the continuous optimum: {e_q} < {e_cont}"
            );
            let alpha = power.alpha();
            let bound = r_max.powf(alpha) * e_cont
                + set.total_work() * s0.powf(alpha);
            prop_assert!(
                e_q <= bound + 1e-6 * bound,
                "quantization bound violated at α={alpha}: {e_q} > {bound}"
            );
        }
    }

    /// Structural invariants of every schedule the module emits:
    /// segments are sorted, non-overlapping, inside the job horizon,
    /// and never claim more work than their capacity.
    #[test]
    fn schedules_are_well_formed(
        raw in proptest::collection::vec(
            (0.0f64..40.0, 0.5f64..12.0, 0.05f64..6.0),
            1..10,
        ),
    ) {
        let set = feasible_set(&raw);
        let power = PowerModel::weiser();
        let t0 = set.jobs().iter().map(|j| j.release).fold(f64::INFINITY, f64::min);
        let t1 = set.jobs().iter().map(|j| j.deadline).fold(0.0f64, f64::max);
        let quantized = quantize_to_steps(&yds(&set), &itsy_step_speeds());
        for s in [yds(&set), quantized, avr(&set), oa(&set), qoa_for(&set, &power), bkp(&set)] {
            let mut prev_end = f64::NEG_INFINITY;
            for seg in &s.segments {
                prop_assert!(seg.start >= prev_end - 1e-9, "{} overlaps", s.name);
                prop_assert!(seg.end > seg.start, "{} empty segment", s.name);
                prop_assert!(seg.start >= t0 - 1e-9 && seg.end <= t1 + 1e-9,
                    "{} escapes the horizon", s.name);
                prop_assert!(seg.speed > 0.0, "{} idle segment recorded", s.name);
                prop_assert!(
                    seg.executed <= seg.speed * (seg.end - seg.start) + 1e-9,
                    "{} overfull segment", s.name
                );
                prop_assert!(seg.speed <= s.max_speed + 1e-12, "{} max_speed wrong", s.name);
                prev_end = seg.end;
            }
        }
    }
}
