//! Microsecond-resolution virtual time.
//!
//! The paper's measurement chain operates at microsecond granularity (the
//! scheduler log records microsecond timestamps; the DAQ samples every
//! 200 µs), so a `u64` count of microseconds is both exact and roomy:
//! it can represent ~584 000 years of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant `s` seconds after the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; elapsed time in a
    /// discrete-event simulation never runs backwards, so this indicates
    /// a logic error at the call site.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: `earlier` is after `self`"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`]: returns zero if
    /// `earlier` is after `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from a float second count, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(10).as_micros(), 10_000);
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(10).as_micros(), 10_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(500);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d).as_micros(), 750);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!((t + d) - d, t);
        assert_eq!((d + d).as_micros(), 500);
        assert_eq!((d - d), SimDuration::ZERO);
    }

    #[test]
    fn saturating_duration() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a).as_micros(), 10);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards_time() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        let _ = a.duration_since(b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5us");
        assert_eq!(format!("{}", SimDuration::from_micros(5_000)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }
}
