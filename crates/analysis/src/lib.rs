//! Signal analysis behind the paper's §5.3 stability argument.
//!
//! The paper treats the processor workload as a 0/1 function of time and
//! AVG_N as a linear filter whose impulse response is a decaying
//! exponential. Three facts follow, each reproduced here:
//!
//! 1. the filter's kernel is `w_k = (1/(N+1)) (N/(N+1))^k`
//!    ([`filter::avg_n_kernel`]), the discrete counterpart of
//!    `x(t) = e^{-αt}u(t)`;
//! 2. the continuous Fourier transform has magnitude
//!    `|X(ω)| = 1/√(ω² + α²)` ([`fourier::decaying_exp_spectrum`]) —
//!    it *attenuates but does not eliminate* high frequencies (Figure 6);
//! 3. convolving the kernel with a rectangle wave (busy 9, idle 1 — the
//!    idealized MPEG load) therefore leaves a sustained oscillation over
//!    a wide utilization band (Figure 7), so AVG_N cannot settle even
//!    when the system starts at the ideal speed
//!    ([`oscillation::steady_state_band`]).
//!
//! [`window::moving_average`] provides the 100 ms smoothing of Figure 4,
//! and [`fourier::dft_magnitudes`]/[`fourier::fft`] give spectra of measured
//! utilization traces.

pub mod autocorr;
pub mod filter;
pub mod fourier;
pub mod oscillation;
pub mod window;

pub use autocorr::{autocorrelation, dominant_period, strongest_period};
pub use filter::{avg_n_alpha, avg_n_kernel, avg_n_response, convolve};
pub use fourier::{decaying_exp_spectrum, dft_magnitudes, fft, Complex};
pub use oscillation::{steady_state_band, OscillationBand};
pub use window::{moving_average, moving_average_series, square_wave};
