//! Fixed-range histograms and percentile estimates.
//!
//! The evaluation leans on distributional claims — "the system is
//! usually either completely idle or completely busy during a given
//! quantum" — that need more than a mean to check. [`Histogram`] bins
//! a bounded quantity (utilization, power) and answers mass-in-range
//! and percentile queries.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed `[lo, hi]` range with equal-width bins.
///
/// # Examples
///
/// ```
/// use sim_core::Histogram;
///
/// let mut h = Histogram::unit();
/// h.record_all(&[0.0, 0.005, 0.995, 1.0]);
/// assert!(h.edge_mass() > 0.9, "bimodal: all mass at the edges");
/// assert_eq!(h.count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    /// Values outside `[lo, hi]` are clamped into the edge bins but
    /// counted here for diagnostics.
    clamped: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the range is empty/invalid.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
            clamped: 0,
        }
    }

    /// A `[0, 1]` histogram with 100 bins — the shape used for
    /// utilization distributions.
    pub fn unit() -> Self {
        Histogram::new(0.0, 1.0, 100)
    }

    fn bin_of(&self, v: f64) -> usize {
        let frac = (v - self.lo) / (self.hi - self.lo);
        let idx = (frac * self.bins.len() as f64).floor() as isize;
        idx.clamp(0, self.bins.len() as isize - 1) as usize
    }

    /// Records a sample (values outside the range land in edge bins).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if v < self.lo || v > self.hi {
            self.clamped += 1;
        }
        let idx = self.bin_of(v);
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Records every value in a slice.
    pub fn record_all(&mut self, vs: &[f64]) {
        for &v in vs {
            self.record(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples that fell outside the configured range.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Fraction of mass with values in `[a, b]` (by bin midpoint).
    pub fn mass_in(&self, a: f64, b: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut mass = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            let mid = self.lo + (i as f64 + 0.5) * width;
            if mid >= a && mid <= b {
                mass += c;
            }
        }
        mass as f64 / self.count as f64
    }

    /// Percentile estimate (`q ∈ [0, 1]`) by bin interpolation; `None`
    /// if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if (seen + c) as f64 >= target {
                let into = if c == 0 {
                    0.5
                } else {
                    (target - seen as f64) / c as f64
                };
                return Some(self.lo + (i as f64 + into.clamp(0.0, 1.0)) * width);
            }
            seen += c;
        }
        Some(self.hi)
    }

    /// Folds another histogram's mass into this one.
    ///
    /// Merging is associative and commutative, which lets parallel
    /// workers each fill a private histogram and combine them in any
    /// join order without changing the aggregate.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms differ in range or bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram shapes differ: [{}, {}]x{} vs [{}, {}]x{}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len()
        );
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.count += other.count;
        self.clamped += other.clamped;
    }

    /// The fraction of mass in the two outermost bins — the
    /// "completely idle or completely busy" bimodality measure.
    pub fn edge_mass(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let first = self.bins[0];
        let last = *self.bins.last().expect("at least one bin");
        (first + last) as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::unit();
        h.record_all(&[0.0, 0.5, 1.0, 0.5]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.clamped(), 0);
        assert!((h.mass_in(0.4, 0.6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(-5.0);
        h.record(7.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.clamped(), 2);
        assert_eq!(h.edge_mass(), 1.0);
    }

    #[test]
    fn percentiles_of_a_uniform_ramp() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 999.0);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p90 = h.percentile(0.9).unwrap();
        assert!((p50 - 0.5).abs() < 0.02, "p50 = {p50}");
        assert!((p90 - 0.9).abs() < 0.02, "p90 = {p90}");
        assert!(h.percentile(0.0).unwrap() >= 0.0);
        assert!(h.percentile(1.0).unwrap() <= 1.0 + 1e-12);
    }

    #[test]
    fn bimodal_distribution_has_high_edge_mass() {
        let mut h = Histogram::unit();
        for _ in 0..45 {
            h.record(0.001);
        }
        for _ in 0..45 {
            h.record(0.999);
        }
        for _ in 0..10 {
            h.record(0.5);
        }
        assert!((h.edge_mass() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_graceful() {
        let h = Histogram::unit();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mass_in(0.0, 1.0), 0.0);
        assert_eq!(h.edge_mass(), 0.0);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut h = Histogram::unit();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0, "non-finite samples are dropped");
        h.record(0.5);
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_rejected() {
        let _ = Histogram::new(1.0, 0.0, 10);
    }

    #[test]
    fn merge_pools_bins_count_and_clamped() {
        let mut a = Histogram::unit();
        a.record_all(&[0.1, 0.1, 0.9]);
        a.record(-1.0);
        let mut b = Histogram::unit();
        b.record_all(&[0.9, 0.5]);
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.clamped(), 1);
        assert!((a.mass_in(0.85, 0.95) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let ys = [0.1, 0.2, 0.3];
        let mut split_a = Histogram::unit();
        split_a.record_all(&xs);
        let mut split_b = Histogram::unit();
        split_b.record_all(&ys);
        split_a.merge(&split_b);
        let mut whole = Histogram::unit();
        whole.record_all(&xs);
        whole.record_all(&ys);
        assert_eq!(split_a, whole);
    }

    #[test]
    #[should_panic(expected = "histogram shapes differ")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = Histogram::unit();
        let b = Histogram::new(0.0, 2.0, 100);
        a.merge(&b);
    }
}
