//! Parallel, cache-aware experiment execution.
//!
//! The paper's artifacts are grids of independent simulator runs — a
//! policy sweep is hundreds of cells, each a pure function of its
//! configuration. This crate turns that purity into infrastructure:
//!
//! - [`JobSpec`] describes one run completely and hashes to a stable
//!   [`ContentKey`];
//! - [`Engine`] executes batches of specs on a worker pool (`--jobs`),
//!   with results guaranteed bit-identical for 1 or N workers;
//! - completed cells persist in a content-addressed cache under
//!   `results/cache/`, so re-running a sweep only simulates what
//!   changed;
//! - a per-batch journal makes interrupted runs resumable (`--resume`)
//!   even when the cache is off.
//!
//! Experiment harnesses build specs, call [`Engine::run_batch`], and
//! format the returned [`JobResult`]s; they no longer own threading,
//! skipping, or progress reporting.

pub mod cache;
mod engine;
pub mod job;
pub mod journal;
pub mod key;

pub use cache::ResultCache;
pub use engine::{BatchOutcome, BatchStats, Engine, EngineConfig};
pub use job::{JobResult, JobSpec, WorkloadSpec, SIM_VERSION};
pub use journal::Journal;
pub use key::ContentKey;
