//! Offline stub of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` with no
//! dependencies (no `syn`/`quote`, which are equally unavailable
//! offline): it scans the raw token stream for the `struct`/`enum`
//! keyword, takes the following identifier as the type name, and emits
//! an empty impl of the corresponding marker trait from the stubbed
//! `serde` crate.
//!
//! Limitations (checked against every use in this workspace): the
//! derived type must be non-generic and must not use `#[serde(...)]`
//! attributes. Hitting either limit is a compile error, not silent
//! misbehavior.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following `struct` or `enum`, panicking on
/// generic types (the stub cannot reproduce serde's bound handling).
fn type_name(input: TokenStream, trait_name: &str) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("derive({trait_name}) stub: expected type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '<' {
                        panic!("derive({trait_name}) stub does not support generic type `{name}`");
                    }
                }
                return name;
            }
        }
    }
    panic!("derive({trait_name}) stub: no struct/enum found in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input, "Serialize");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("stub impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input, "Deserialize");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("stub impl parses")
}
