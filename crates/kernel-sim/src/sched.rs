//! The kernel proper: timer ticks, round-robin scheduling, utilization
//! accounting, the policy hook, and energy integration.
//!
//! Time advances in *segments* — maximal spans during which the machine
//! state (running task, mode, clock, voltage) is constant. Segment
//! boundaries are timer ticks, work completions, spin expirations and
//! stall expirations. Power is integrated per segment; the power trace
//! is a step function with one sample per power change.

use std::collections::VecDeque;

use sim_core::{Power, SimDuration, SimFidelity, SimTime, TimeSeries};

use itsy_hw::clock::V_HIGH;
use itsy_hw::{CorePowerCache, CpuMode, RunTotals, SpanEnergy, StepIndex, Work};
use policies::ClockPolicy;

use crate::log::{DeadlineLog, SchedLog};
use crate::machine::Machine;
use crate::report::KernelReport;
use crate::task::{Pid, TaskAction, TaskBehavior, TaskCtx, IDLE_PID};

/// Run-loop configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Scheduling quantum; the paper forces the Linux scheduler to run
    /// every 10 ms tick.
    pub quantum: SimDuration,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Capture the scheduler activity log.
    pub log_sched: bool,
    /// Capture the power step-function trace (needed by the DAQ).
    pub record_power: bool,
    /// Stop early once an attached battery is exhausted.
    pub stop_when_battery_empty: bool,
    /// The paper's kernel modification: "We set the counter to one each
    /// time we schedule a process, forcing the scheduler to be called
    /// every 10ms." When false, the stock Linux 2.0 behaviour applies:
    /// a process runs until its counter (see
    /// [`KernelConfig::default_counter`]) expires, so "a process can
    /// run for several quanta before the scheduler is called".
    pub force_schedule_every_tick: bool,
    /// Ticks a process may run before preemption when
    /// `force_schedule_every_tick` is off (Linux 2.0's DEF_PRIORITY is
    /// ~20 ticks = 200 ms).
    pub default_counter: u32,
    /// Collect a structured event trace (quantum boundaries, policy
    /// decisions, clock/voltage transitions, scheduling picks) into
    /// [`KernelReport::trace`]. Off by default: the bulk experiment
    /// engine runs thousands of cells and only `repro trace` wants the
    /// event stream.
    pub trace: bool,
    /// Bound on [`SchedLog`] records kept (the paper's kernel-memory
    /// limit); `None` keeps everything. Ignored when `log_sched` is
    /// off — a disabled log drops nothing.
    pub sched_log_capacity: Option<usize>,
    /// Run the original tick-by-tick loop instead of the batched
    /// uniform-span fast path. The two are bit-identical (the
    /// differential suite proves it); the reference loop exists as the
    /// oracle for that proof and for debugging. Tracing implies the
    /// reference path regardless of this flag: per-tick events make
    /// every tick observable, so there is nothing to batch.
    pub reference: bool,
    /// What the run must materialize. [`SimFidelity::Full`] (the
    /// default) records per-tick series, the scheduler log and the
    /// power trace exactly as always. [`SimFidelity::Summary`] skips
    /// all per-tick emission: uniform spans commit in O(1) per span,
    /// means come from exact integer accumulators
    /// ([`KernelReport::ticks`] and friends), and energy flows through
    /// a compensated [`SpanEnergy`] accumulator. Integer accounting,
    /// policy decision sequences, deadline outcomes and final battery
    /// state stay bit-identical to a Full run (the differential suite
    /// proves it); only series-derived floats differ, within the bound
    /// documented in DESIGN.md §9. Orthogonal to
    /// [`KernelConfig::reference`]: a Summary+reference run ticks
    /// through the oracle loop while still skipping emission.
    pub fidelity: SimFidelity,
    /// Number of equal sim-time windows to fold the run's trajectory
    /// into ([`KernelReport::timeline`]): per-window energy and busy
    /// time, derived from the same segment arithmetic in every
    /// path/fidelity combination. `0` (the default) records nothing.
    pub timeline_windows: u32,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            quantum: SimDuration::from_millis(10),
            duration: SimDuration::from_secs(30),
            log_sched: true,
            record_power: true,
            stop_when_battery_empty: false,
            force_schedule_every_tick: true,
            default_counter: 20,
            trace: false,
            sched_log_capacity: None,
            reference: false,
            fidelity: SimFidelity::Full,
            timeline_windows: 0,
        }
    }
}

/// Windowed trajectory accumulator: energy and busy time bucketed into
/// equal sim-time windows. Spans are split at window boundaries, so a
/// multi-window uniform span lands exactly where a tick-by-tick run
/// would put it.
struct TimelineAcc {
    win_us: u64,
    duration_us: u64,
    energy_j: Vec<f64>,
    busy_us: Vec<u64>,
}

impl TimelineAcc {
    fn new(windows: u32, duration_us: u64) -> Self {
        TimelineAcc {
            win_us: duration_us.div_ceil(u64::from(windows)).max(1),
            duration_us,
            energy_j: vec![0.0; windows as usize],
            busy_us: vec![0; windows as usize],
        }
    }

    /// Attributes `watts` drawn over `[a_us, b_us)` to the windows it
    /// crosses. Time past the nominal duration (a trailing stall) folds
    /// into the last window.
    fn energy(&mut self, a_us: u64, b_us: u64, watts: f64) {
        let (win, n) = (self.win_us, self.energy_j.len());
        let mut t = a_us;
        while t < b_us {
            let s = ((t / win) as usize).min(n - 1);
            let boundary = if s + 1 == n {
                b_us
            } else {
                ((s as u64 + 1) * win).min(b_us)
            };
            self.energy_j[s] += watts * (boundary - t) as f64 / 1e6;
            t = boundary;
        }
    }

    /// Attributes non-idle time over `[a_us, b_us)` to its windows.
    fn busy(&mut self, a_us: u64, b_us: u64) {
        let (win, n) = (self.win_us, self.busy_us.len());
        let mut t = a_us;
        while t < b_us {
            let s = ((t / win) as usize).min(n - 1);
            let boundary = if s + 1 == n {
                b_us
            } else {
                ((s as u64 + 1) * win).min(b_us)
            };
            self.busy_us[s] += boundary - t;
            t = boundary;
        }
    }

    fn samples(&self) -> Vec<crate::report::WindowSample> {
        (0..self.energy_j.len())
            .map(|i| crate::report::WindowSample {
                start_us: (i as u64 * self.win_us).min(self.duration_us),
                end_us: ((i as u64 + 1) * self.win_us).min(self.duration_us),
                energy_j: self.energy_j[i],
                busy_us: self.busy_us[i],
                misses: 0,
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RunState {
    NeedsAction,
    Work(Work),
    Spin(SimTime),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Ready,
    Sleeping(SimTime),
    Exited,
}

struct TaskState {
    behavior: Box<dyn TaskBehavior>,
    run: RunState,
    status: Status,
    cpu_time: SimDuration,
    counter: u32,
}

/// Reusable allocation pool for repeated kernel runs.
///
/// A run's report carries four [`TimeSeries`] whose backing vectors are
/// the bulk of a short run's heap traffic. Batch drivers that execute
/// thousands of simulations hand the same scratch to every run
/// ([`Kernel::run_scratch`]) and return each finished report's buffers
/// with [`SimScratch::recycle`], so steady-state simulation performs no
/// series allocation at all. Buffer reuse cannot change results: a
/// recycled vector is cleared before use and only its capacity
/// survives.
#[derive(Debug, Default)]
pub struct SimScratch {
    series_buffers: Vec<Vec<(u64, f64)>>,
}

impl SimScratch {
    /// An empty pool.
    pub fn new() -> Self {
        SimScratch::default()
    }

    fn take_buffer(&mut self) -> Vec<(u64, f64)> {
        self.series_buffers.pop().unwrap_or_default()
    }

    /// Returns a finished report's series allocations to the pool.
    pub fn recycle(&mut self, report: KernelReport) {
        for series in [
            report.utilization,
            report.freq_mhz,
            report.work_fraction,
            report.power_w,
        ] {
            self.series_buffers.push(series.into_buffer());
        }
    }
}

/// The run loop's mutable state, shared by the batched fast path and
/// the reference tick-by-tick path so both execute the exact same
/// accounting code where they overlap.
struct LoopState {
    now: SimTime,
    next_tick: SimTime,
    stall_until: SimTime,
    end: SimTime,
    quantum: SimDuration,
    utilization: TimeSeries,
    freq_mhz: TimeSeries,
    work_fraction: TimeSeries,
    power_w: TimeSeries,
    totals: RunTotals,
    /// Peripheral draw, constant for the whole run: the device set is
    /// fixed at machine construction and never changes mid-simulation.
    peripheral: Power,
    power_cache: CorePowerCache,
    busy_in_quantum: SimDuration,
    work_in_quantum: Work,
    last_power: Option<f64>,
    fastest: StepIndex,
    full_speed_khz: u32,
    action_fuel_at: (SimTime, u32),
    /// Set when an attached battery emptied and the run must stop.
    stopped: bool,
    /// Summary fidelity: per-tick emission is skipped and the fields
    /// below carry the run's exact closed-form observables.
    summary: bool,
    /// Completed quanta (= utilization samples a Full run would hold).
    ticks: u64,
    /// Busy microseconds inside completed quanta, each clamped to the
    /// quantum — the exact integer numerator of mean utilization.
    util_sum_us: u64,
    /// Sum of the per-tick frequency samples in kHz (plus the t = 0
    /// sample), the exact integer numerator of the mean frequency over
    /// `ticks + 1` samples.
    freq_khz_sum: u64,
    /// Compensated energy accumulator; committed into `totals` at
    /// finish. Only used in summary runs.
    span_energy: SpanEnergy,
    /// Windowed trajectory accumulator; `None` unless
    /// [`KernelConfig::timeline_windows`] is nonzero.
    timeline: Option<TimelineAcc>,
}

/// A provably-uniform stretch of whole quanta the batched kernel can
/// execute in a flat loop: machine state, the running task and the
/// per-tick utilization are all constant until the span's bounding
/// event.
enum SpanKind {
    /// No runnable task; the core naps.
    Idle,
    /// A single runnable task computing through its work quantum.
    Work(Pid, Work),
    /// A single runnable task spinning until the contained time.
    Spin(Pid, SimTime),
}

/// The simulated kernel. Construct, [`Kernel::spawn`] workloads,
/// optionally [`Kernel::install_policy`], then [`Kernel::run`].
///
/// # Examples
///
/// ```
/// use itsy_hw::{DeviceSet, Work};
/// use kernel_sim::task::FnBehavior;
/// use kernel_sim::{Kernel, KernelConfig, Machine, TaskAction};
/// use sim_core::SimDuration;
///
/// let mut kernel = Kernel::new(
///     Machine::itsy(10, DeviceSet::NONE),
///     KernelConfig {
///         duration: SimDuration::from_secs(1),
///         ..KernelConfig::default()
///     },
/// );
/// kernel.spawn(Box::new(FnBehavior::new("busy", |_ctx| {
///     TaskAction::Compute(Work::cycles(1.0e9))
/// })));
/// let report = kernel.run();
/// assert_eq!(report.mean_utilization(), 1.0);
/// assert!(report.energy.as_joules() > 0.0);
/// ```
pub struct Kernel {
    machine: Machine,
    config: KernelConfig,
    tasks: Vec<TaskState>,
    runqueue: VecDeque<Pid>,
    current: Option<Pid>,
    policy: Option<Box<dyn ClockPolicy>>,
    deadlines: DeadlineLog,
    sched_log: SchedLog,
    trace: obs::Trace,
}

impl Kernel {
    /// Creates a kernel for `machine` with the given configuration.
    pub fn new(machine: Machine, config: KernelConfig) -> Self {
        // Summary fidelity records no scheduler log: disabling it here
        // (rather than gating every record site) also keeps it from
        // counting drops it never intended to keep.
        let log_sched = config.log_sched && !config.fidelity.is_summary();
        let sched_log = SchedLog::bounded(log_sched, config.sched_log_capacity);
        let trace = if config.trace {
            obs::Trace::on()
        } else {
            obs::Trace::off()
        };
        Kernel {
            machine,
            config,
            tasks: Vec::new(),
            runqueue: VecDeque::new(),
            current: None,
            policy: None,
            deadlines: DeadlineLog::default(),
            sched_log,
            trace,
        }
    }

    /// Spawns a task; pids start at 1 (0 is the idle task).
    pub fn spawn(&mut self, behavior: Box<dyn TaskBehavior>) -> Pid {
        let pid = (self.tasks.len() + 1) as Pid;
        let counter = self.config.default_counter.max(1);
        self.tasks.push(TaskState {
            behavior,
            run: RunState::NeedsAction,
            status: Status::Ready,
            cpu_time: SimDuration::ZERO,
            counter,
        });
        self.runqueue.push_back(pid);
        pid
    }

    /// Installs the clock-scaling policy module.
    pub fn install_policy(&mut self, policy: Box<dyn ClockPolicy>) {
        self.policy = Some(policy);
    }

    /// Immutable access to the machine (e.g. to pre-set GPIO state).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn task(&mut self, pid: Pid) -> &mut TaskState {
        &mut self.tasks[(pid - 1) as usize]
    }

    /// True while the current task is waiting for its behavior to be
    /// asked what to do next.
    fn needs_action(&self) -> bool {
        self.current
            .is_some_and(|pid| self.tasks[(pid - 1) as usize].run == RunState::NeedsAction)
    }

    fn pick_current(&mut self, now: SimTime) {
        if let Some(pid) = self.current {
            if self.task(pid).status == Status::Ready {
                return;
            }
            self.current = None;
        }
        while let Some(pid) = self.runqueue.pop_front() {
            if self.task(pid).status == Status::Ready {
                self.current = Some(pid);
                let khz = self.machine.cpu.freq().as_khz();
                self.sched_log.record(now, pid, khz);
                self.emit_schedule(now, pid, khz);
                return;
            }
        }
        // Idle: record the idle task taking over (once per transition).
        let khz = self.machine.cpu.freq().as_khz();
        self.sched_log.record(now, IDLE_PID, khz);
        self.emit_schedule(now, IDLE_PID, khz);
    }

    fn emit_schedule(&mut self, now: SimTime, pid: Pid, clock_khz: u32) {
        if self.trace.is_enabled() {
            self.trace.emit(
                now.as_micros(),
                obs::EventKind::Schedule {
                    pid: u64::from(pid),
                    clock_khz: u64::from(clock_khz),
                },
            );
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(self) -> KernelReport {
        self.run_scratch(&mut SimScratch::new())
    }

    /// Like [`Kernel::run`], but draws series buffers from (and is
    /// expected to eventually [`SimScratch::recycle`] back into) a
    /// caller-held allocation pool. Batch drivers use this to amortize
    /// per-run allocation across thousands of jobs.
    pub fn run_scratch(mut self, scratch: &mut SimScratch) -> KernelReport {
        let quantum = self.config.quantum;
        assert!(!quantum.is_zero(), "quantum must be positive");
        let fastest = self.machine.cpu.table().fastest();
        let mut ls = LoopState {
            now: SimTime::ZERO,
            next_tick: SimTime::ZERO + quantum,
            stall_until: SimTime::ZERO,
            end: SimTime::ZERO + self.config.duration,
            quantum,
            utilization: TimeSeries::with_buffer("utilization", scratch.take_buffer()),
            freq_mhz: TimeSeries::with_buffer("freq_mhz", scratch.take_buffer()),
            work_fraction: TimeSeries::with_buffer("work_fraction", scratch.take_buffer()),
            power_w: TimeSeries::with_buffer("watts", scratch.take_buffer()),
            totals: RunTotals::new(),
            peripheral: self.machine.power.peripheral_power(self.machine.devices),
            power_cache: CorePowerCache::new(),
            busy_in_quantum: SimDuration::ZERO,
            work_in_quantum: Work::ZERO,
            last_power: None,
            fastest,
            full_speed_khz: self.machine.cpu.table().freq(fastest).as_khz(),
            action_fuel_at: (SimTime::ZERO, 0u32),
            stopped: false,
            summary: self.config.fidelity.is_summary(),
            ticks: 0,
            util_sum_us: 0,
            freq_khz_sum: 0,
            span_energy: SpanEnergy::new(),
            timeline: (self.config.timeline_windows > 0).then(|| {
                TimelineAcc::new(
                    self.config.timeline_windows,
                    self.config.duration.as_micros(),
                )
            }),
        };

        // Record the initial frequency sample so Figure 8-style plots
        // start at t = 0; a summary run keeps the same sample as an
        // exact integer term instead.
        if ls.summary {
            ls.freq_khz_sum += u64::from(self.machine.cpu.freq().as_khz());
        } else {
            ls.freq_mhz
                .push(ls.now, self.machine.cpu.freq().as_mhz_f64());
        }
        self.pick_current(ls.now);

        // Tracing forces the reference path: per-tick policy and
        // quantum events make every tick observable, so no span is
        // uniform.
        let batched = !self.config.reference && !self.config.trace;
        while ls.now < ls.end {
            self.resolve_actions(&mut ls);
            if batched && self.run_uniform_span(&mut ls) {
                if ls.stopped {
                    break;
                }
                continue;
            }
            if self.step_segment(&mut ls) {
                break; // battery empty
            }
        }
        self.finish(ls)
    }

    /// Resolves pending behavior decisions (no time passes). A stalled
    /// core executes nothing, so the whole block is skipped mid-stall;
    /// otherwise the loop ends when the current task has real work
    /// queued or the runqueue drains.
    fn resolve_actions(&mut self, ls: &mut LoopState) {
        let now = ls.now;
        while ls.stall_until <= now && self.needs_action() {
            let Some(pid) = self.current else { break };
            if ls.action_fuel_at.0 == now {
                ls.action_fuel_at.1 += 1;
                assert!(
                    ls.action_fuel_at.1 < 10_000,
                    "task {pid} livelocked at {now} (10k actions without time passing)"
                );
            } else {
                ls.action_fuel_at = (now, 0);
            }
            let freq = self.machine.cpu.freq();
            let state = &mut self.tasks[(pid - 1) as usize];
            let mut ctx = TaskCtx::new(now, freq, &mut self.deadlines);
            let action = state.behavior.next_action(&mut ctx);
            match action {
                TaskAction::Compute(w) if w.is_zero() => {} // ask again
                TaskAction::Compute(w) => state.run = RunState::Work(w),
                TaskAction::SpinUntil(t) if t <= now => {} // already passed
                TaskAction::SpinUntil(t) => state.run = RunState::Spin(t),
                TaskAction::SleepUntil(t) => {
                    state.status = Status::Sleeping(t);
                    state.run = RunState::NeedsAction;
                    self.pick_current(now);
                }
                TaskAction::Exit => {
                    state.status = Status::Exited;
                    state.run = RunState::NeedsAction;
                    self.pick_current(now);
                }
            }
        }
    }

    /// One iteration of the reference loop: a single segment plus, when
    /// the segment ends on a tick, the timer-tick work. Returns `true`
    /// when an attached battery emptied and the run must stop.
    ///
    /// This is the oracle the batched path is proven against — every
    /// non-uniform moment of a batched run also flows through here, so
    /// the two paths cannot drift in shared territory.
    fn step_segment(&mut self, ls: &mut LoopState) -> bool {
        let now = ls.now;
        let quantum = ls.quantum;
        let boundary = ls.next_tick.min(ls.end);

        // Determine the segment: its end, mode, and work consumed.
        let step = self.machine.cpu.step();
        let freq = self.machine.cpu.freq();
        let (seg_end, mode, work_done, completes, is_spin): (SimTime, CpuMode, Work, bool, bool) =
            if ls.stall_until > now {
                (
                    ls.stall_until.min(boundary),
                    CpuMode::Stalled,
                    Work::ZERO,
                    false,
                    false,
                )
            } else if let Some(pid) = self.current {
                match self.task(pid).run {
                    RunState::Work(w) => {
                        let budget = boundary.duration_since(now);
                        match w.execute_for(budget, step, freq, &self.machine.mem) {
                            itsy_hw::WorkProgress::Completed(d) => {
                                (now + d, CpuMode::Run, w, true, false)
                            }
                            itsy_hw::WorkProgress::Remaining(rest) => {
                                let done = w.plus(rest.scaled(-1.0));
                                self.task(pid).run = RunState::Work(rest);
                                (boundary, CpuMode::Run, done, false, false)
                            }
                        }
                    }
                    RunState::Spin(t) if t <= now => {
                        // The spin target passed while the task was
                        // rotated out; it completes immediately.
                        (now, CpuMode::Run, Work::ZERO, true, true)
                    }
                    RunState::Spin(t) => {
                        let seg = t.min(boundary);
                        (seg, CpuMode::Run, Work::ZERO, seg == t, true)
                    }
                    RunState::NeedsAction => unreachable!("resolved above"),
                }
            } else {
                (boundary, CpuMode::Nap, Work::ZERO, false, false)
            };

        // Integrate power over the segment.
        let span = seg_end.duration_since(now);
        if !span.is_zero() {
            let core_p =
                ls.power_cache
                    .get(&self.machine.power, mode, freq, self.machine.cpu.voltage());
            let p = core_p + ls.peripheral;
            if ls.summary {
                // No power trace; energy goes through the compensated
                // accumulator (committed into the totals at finish).
                ls.span_energy.add(p, core_p, span);
            } else {
                if self.config.record_power && ls.last_power != Some(p.as_watts()) {
                    ls.power_w.push(now, p.as_watts());
                    ls.last_power = Some(p.as_watts());
                }
                ls.totals.energy += p.over(span);
                ls.totals.core_energy += core_p.over(span);
            }
            if let Some(tl) = ls.timeline.as_mut() {
                // Energy is drawn even when the battery empties below
                // and cuts the run short, so it is bucketed first.
                tl.energy(now.as_micros(), seg_end.as_micros(), p.as_watts());
            }
            if let Some(batt) = self.machine.battery.as_mut() {
                batt.drain(p, span);
                if self.config.stop_when_battery_empty && batt.is_empty() {
                    ls.now = seg_end;
                    return true;
                }
            }
            match mode {
                CpuMode::Run => {
                    ls.totals.busy += span;
                    ls.busy_in_quantum += span;
                    if is_spin {
                        ls.totals.spun += span;
                    }
                    if let Some(pid) = self.current {
                        self.task(pid).cpu_time += span;
                    }
                }
                CpuMode::Stalled => {
                    ls.totals.busy += span;
                    ls.busy_in_quantum += span;
                    ls.totals.stalled += span;
                }
                CpuMode::Nap => ls.totals.idle += span,
            }
            if !matches!(mode, CpuMode::Nap) {
                if let Some(tl) = ls.timeline.as_mut() {
                    tl.busy(now.as_micros(), seg_end.as_micros());
                }
            }
            if !ls.summary {
                // Only the work-fraction series reads this; a summary
                // run never computes it.
                ls.work_in_quantum = ls.work_in_quantum.plus(work_done);
            }
        }
        ls.now = seg_end;
        let now = seg_end;

        // Mark completions.
        if completes {
            if let Some(pid) = self.current {
                self.task(pid).run = RunState::NeedsAction;
            }
        }

        // Timer tick.
        if now == ls.next_tick && now <= ls.end {
            // Utilization of the quantum that just ended. The f64 value
            // feeds the policy in both fidelities; Full pushes it as a
            // series sample, Summary folds the exact integer numerator
            // into the mean-utilization accumulator instead.
            let util = (ls.busy_in_quantum.as_micros() as f64 / quantum.as_micros() as f64)
                .clamp(0.0, 1.0);
            if ls.summary {
                ls.ticks += 1;
                ls.util_sum_us += ls.busy_in_quantum.as_micros().min(quantum.as_micros());
            } else {
                ls.utilization.push(now, util);
                self.trace.emit(
                    now.as_micros(),
                    obs::EventKind::QuantumBoundary { utilization: util },
                );
                let wf = ls
                    .work_in_quantum
                    .total_cycles(ls.fastest, &self.machine.mem)
                    / (ls.full_speed_khz as f64 * quantum.as_micros() as f64 / 1_000.0);
                ls.work_fraction.push(now, wf.clamp(0.0, 1.0));
            }
            ls.busy_in_quantum = SimDuration::ZERO;
            ls.work_in_quantum = Work::ZERO;

            // Wake sleepers (jiffy granularity).
            for (i, t) in self.tasks.iter_mut().enumerate() {
                if let Status::Sleeping(until) = t.status {
                    if until <= now {
                        t.status = Status::Ready;
                        self.runqueue.push_back((i + 1) as Pid);
                    }
                }
            }

            // The clock-scaling policy module runs from the timer
            // interrupt. A summary run honours the policy's observation
            // stride: ticks whose global index is off-stride are not
            // delivered (the policy asserted it does not consume them).
            let deliver = !ls.summary
                || self.policy.as_ref().is_none_or(|p| {
                    let stride = p.observation_stride().max(1);
                    stride == 1 || (now.as_micros() / quantum.as_micros()).is_multiple_of(stride)
                });
            if !deliver {
                // Skipped delivery: the machine state is untouched.
            } else if let Some(policy) = self.policy.as_mut() {
                let cur = self.machine.cpu.step();
                let req = policy.on_interval_traced(now, util, cur, &mut self.trace);
                let target_step = req.step.unwrap_or(cur);
                let target_v = req.voltage.unwrap_or(self.machine.cpu.voltage());
                let now_us = now.as_micros();
                let Machine { cpu, power, .. } = &mut self.machine;
                let params = &power.params;
                let transition = cpu
                    .request_traced(target_step, target_v, params, now_us, &mut self.trace)
                    .unwrap_or_else(|_| {
                        // Electrically unsafe request: the kernel
                        // clamps the voltage up and retries.
                        cpu.request_traced(target_step, V_HIGH, params, now_us, &mut self.trace)
                            .expect("high voltage is safe at every step")
                    });
                if !transition.stall.is_zero() {
                    ls.stall_until = now + transition.stall;
                }
            }
            if ls.summary {
                ls.freq_khz_sum += u64::from(self.machine.cpu.freq().as_khz());
            } else {
                ls.freq_mhz.push(now, self.machine.cpu.freq().as_mhz_f64());
            }

            // Scheduler entry. With the paper's modification the
            // counter is forced to 1, so every tick preempts; stock
            // Linux 2.0 lets the counter run down first.
            let force = self.config.force_schedule_every_tick;
            let default_counter = self.config.default_counter.max(1);
            if let Some(pid) = self.current {
                let t = self.task(pid);
                let expired = if force {
                    true
                } else {
                    t.counter = t.counter.saturating_sub(1);
                    t.counter == 0
                };
                if expired {
                    t.counter = default_counter;
                    self.current = None;
                    if self.task(pid).status == Status::Ready {
                        self.runqueue.push_back(pid);
                    }
                }
            }
            self.pick_current(now);

            ls.next_tick += quantum;
        }
        false
    }

    /// The batched fast path: detects a uniform span starting at the
    /// current (tick-aligned) time and executes it in a flat loop that
    /// performs exactly the floating-point operations the reference
    /// path would — in the same order, on the same values — while
    /// delivering every integer-valued side effect in closed form.
    ///
    /// Returns `true` if it consumed at least one whole quantum (the
    /// caller re-enters the loop), `false` to fall back to
    /// [`Kernel::step_segment`].
    ///
    /// A span is uniform while all of these hold:
    /// - the core is not stalled and `now` sits exactly on a tick;
    /// - the runqueue is empty, so scheduling is trivial (either pure
    ///   idle or a single runnable task that round-robins onto itself);
    /// - the current task, if any, is mid-[`Work`] or mid-spin — its
    ///   behavior is not consulted, so no action can change anything;
    /// - no sleeper wakes, the spin does not expire, the work does not
    ///   complete, and the run does not end before the span's last
    ///   tick (each limit is computed exactly below);
    /// - the policy keeps requesting machine no-ops (checked per tick;
    ///   a request that changes the machine ends the span *after* its
    ///   tick completes, exactly like the reference path).
    fn run_uniform_span(&mut self, ls: &mut LoopState) -> bool {
        if ls.stall_until > ls.now || ls.now + ls.quantum != ls.next_tick {
            return false;
        }
        if !self.runqueue.is_empty() {
            return false;
        }
        let kind = match self.current {
            None => SpanKind::Idle,
            Some(pid) => match self.tasks[(pid - 1) as usize].run {
                RunState::Work(w) => SpanKind::Work(pid, w),
                RunState::Spin(t) if t > ls.now => SpanKind::Spin(pid, t),
                _ => return false,
            },
        };
        debug_assert!(ls.busy_in_quantum.is_zero() && ls.work_in_quantum.is_zero());

        let start_us = ls.now.as_micros();
        let q_us = ls.quantum.as_micros();
        // Whole quanta until the run ends (a trailing partial quantum
        // is never batched).
        let mut max = ls.end.duration_since(ls.now).as_micros() / q_us;
        // A sleeper waking at tick `j` changes the runqueue during that
        // tick's processing, so the span may cover at most `j - 1`
        // quanta; the wake tick itself runs on the reference path.
        for t in &self.tasks {
            if let Status::Sleeping(until) = t.status {
                let wake_tick = if until.as_micros() <= start_us {
                    1
                } else {
                    let d = until.as_micros() - start_us;
                    d.div_ceil(q_us)
                };
                max = max.min(wake_tick - 1);
            }
        }
        // A spin expiring within quantum `k` (including exactly on its
        // tick, which marks a completion) ends uniformity at `k - 1`.
        if let SpanKind::Spin(_, until) = kind {
            let d = until.as_micros() - start_us;
            max = max.min((d - 1) / q_us);
        }
        if max == 0 {
            return false;
        }

        // Constant machine state across the span.
        let step = self.machine.cpu.step();
        let freq = self.machine.cpu.freq();
        let khz = freq.as_khz();
        let mhz = freq.as_mhz_f64();
        let voltage = self.machine.cpu.voltage();
        let (mode, util) = match kind {
            SpanKind::Idle => (CpuMode::Nap, 0.0),
            SpanKind::Work(..) | SpanKind::Spin(..) => (CpuMode::Run, 1.0),
        };
        let core_p = ls.power_cache.get(&self.machine.power, mode, freq, voltage);
        let p = core_p + ls.peripheral;
        let p_w = p.as_watts();
        // Same multiply the reference performs per segment; computing
        // it once and adding it `n` times gives the same bits as
        // computing it `n` times.
        let e_q = p.over(ls.quantum);
        let ce_q = core_p.over(ls.quantum);
        let wf_denom = ls.full_speed_khz as f64 * q_us as f64 / 1_000.0;
        let force = self.config.force_schedule_every_tick;
        let default_counter = self.config.default_counter.max(1);
        let has_battery = self.machine.battery.is_some();
        // A memoryless policy that answered one uniform tick with a
        // machine no-op answers every identical tick the same way and
        // ends the span in the same state, so the remaining calls are
        // elided.
        let elide_policy = self
            .policy
            .as_ref()
            .is_none_or(|policy| policy.is_memoryless());
        let mut policy_settled = false;

        if ls.summary {
            // ---- Summary fidelity: commit the span in closed form ----
            //
            // Nothing per-tick is emitted, so a quantum only needs real
            // execution when something genuinely per-tick remains:
            // order-dependent `Work` remainders, battery smoothing
            // state, or a policy that must observe each tick. Pure
            // idle/spin spans with an absent or settled memoryless
            // policy cost O(1) regardless of length.
            let stride = self
                .policy
                .as_ref()
                .map_or(1, |p| p.observation_stride().max(1));
            let mut w_left = match kind {
                SpanKind::Work(_, w) => w,
                _ => Work::ZERO,
            };
            let mut executed: u64 = 0; // quanta fully accounted
            let mut span_over = false; // policy changed the machine
            let mut energy_quanta: u64 = 0; // quanta owing energy
            let needs_tick_loop = matches!(kind, SpanKind::Work(..))
                || has_battery
                || (self.policy.is_some() && !elide_policy);
            if needs_tick_loop {
                while executed < max && !span_over {
                    let t_k = SimTime::from_micros(start_us + (executed + 1) * q_us);
                    if let SpanKind::Work(..) = kind {
                        match w_left.execute_for(ls.quantum, step, freq, &self.machine.mem) {
                            itsy_hw::WorkProgress::Completed(_) => break, // reference finishes it
                            itsy_hw::WorkProgress::Remaining(rest) => w_left = rest,
                        }
                    }
                    energy_quanta += 1;
                    if has_battery {
                        let batt = self.machine.battery.as_mut().expect("checked above");
                        batt.drain(p, ls.quantum);
                        if self.config.stop_when_battery_empty && batt.is_empty() {
                            // Same cut as the reference: the emptying
                            // quantum draws energy but adds no time.
                            ls.now = t_k;
                            ls.stopped = true;
                            break;
                        }
                    }
                    executed += 1;
                    if let Some(policy) = self.policy.as_mut() {
                        if !(policy_settled && elide_policy)
                            && (stride == 1 || (t_k.as_micros() / q_us).is_multiple_of(stride))
                        {
                            let req = policy.on_interval(t_k, util, step);
                            let noop = req.step.is_none_or(|s| s == step)
                                && req.voltage.is_none_or(|v| v == voltage);
                            if noop {
                                policy_settled = true;
                            } else {
                                let target_step = req.step.unwrap_or(step);
                                let target_v = req.voltage.unwrap_or(voltage);
                                let Machine { cpu, power, .. } = &mut self.machine;
                                let params = &power.params;
                                let transition = cpu
                                    .request(target_step, target_v, params)
                                    .unwrap_or_else(|_| {
                                        cpu.request(target_step, V_HIGH, params)
                                            .expect("high voltage is safe at every step")
                                    });
                                if !transition.stall.is_zero() {
                                    ls.stall_until = t_k + transition.stall;
                                }
                                span_over = true;
                            }
                        }
                    }
                }
            } else {
                // O(1) path: probe the (memoryless) policy once — its
                // answer to one uniform tick is its answer to all of
                // them — then commit every remaining quantum at once.
                if let Some(policy) = self.policy.as_mut() {
                    let t_1 = SimTime::from_micros(start_us + q_us);
                    let req = policy.on_interval(t_1, util, step);
                    let noop = req.step.is_none_or(|s| s == step)
                        && req.voltage.is_none_or(|v| v == voltage);
                    if !noop {
                        let target_step = req.step.unwrap_or(step);
                        let target_v = req.voltage.unwrap_or(voltage);
                        let Machine { cpu, power, .. } = &mut self.machine;
                        let params = &power.params;
                        let transition =
                            cpu.request(target_step, target_v, params)
                                .unwrap_or_else(|_| {
                                    cpu.request(target_step, V_HIGH, params)
                                        .expect("high voltage is safe at every step")
                                });
                        if !transition.stall.is_zero() {
                            ls.stall_until = t_1 + transition.stall;
                        }
                        span_over = true;
                        executed = 1;
                    }
                }
                if !span_over {
                    executed = max;
                }
                energy_quanta = executed;
            }

            if executed == 0 && !ls.stopped {
                return false;
            }

            // Closed-form commit: one compensated energy term for the
            // whole span (exact for constant power), exact integer
            // accounting for everything else.
            let span_total = SimDuration::from_micros(executed * q_us);
            ls.span_energy
                .add(p, core_p, SimDuration::from_micros(energy_quanta * q_us));
            if let Some(tl) = ls.timeline.as_mut() {
                // `energy_quanta` quanta drew power (an emptying
                // battery's final quantum draws energy but adds no
                // time); `executed` quanta were busy for Work/Spin.
                tl.energy(start_us, start_us + energy_quanta * q_us, p_w);
                if !matches!(kind, SpanKind::Idle) {
                    tl.busy(start_us, start_us + executed * q_us);
                }
            }
            if !ls.stopped {
                ls.now = SimTime::from_micros(start_us + executed * q_us);
            }
            ls.next_tick = ls.now + ls.quantum;
            ls.ticks += executed;
            // Frequency samples: every tick saw the span clock, except
            // that a span-ending decision leaves its own tick sampled
            // at the new clock (the reference samples post-decision).
            let khz64 = u64::from(khz);
            ls.freq_khz_sum += executed * khz64;
            if span_over {
                ls.freq_khz_sum -= khz64;
                ls.freq_khz_sum += u64::from(self.machine.cpu.freq().as_khz());
            }
            match kind {
                SpanKind::Idle => ls.totals.idle += span_total,
                SpanKind::Work(pid, _) => {
                    ls.totals.busy += span_total;
                    ls.util_sum_us += executed * q_us;
                    let t = &mut self.tasks[(pid - 1) as usize];
                    t.cpu_time += span_total;
                    t.run = RunState::Work(w_left);
                }
                SpanKind::Spin(pid, _) => {
                    ls.totals.busy += span_total;
                    ls.totals.spun += span_total;
                    ls.util_sum_us += executed * q_us;
                    self.tasks[(pid - 1) as usize].cpu_time += span_total;
                }
            }
            // Preemption counter in closed form: forced scheduling
            // resets it every tick; otherwise it decrements per tick
            // and wraps through `default_counter` on expiry.
            if executed > 0 {
                if let SpanKind::Work(pid, _) | SpanKind::Spin(pid, _) = kind {
                    let t = &mut self.tasks[(pid - 1) as usize];
                    t.counter = if force {
                        default_counter
                    } else {
                        let c0 = u64::from(t.counter.max(1));
                        let dc = u64::from(default_counter);
                        if executed < c0 {
                            (c0 - executed) as u32
                        } else {
                            let r = (executed - c0) % dc;
                            if r == 0 {
                                default_counter
                            } else {
                                (dc - r) as u32
                            }
                        }
                    };
                }
            }
            return true;
        }

        // Power-trace sample at the span head, exactly where the
        // reference samples its first segment.
        if self.config.record_power && ls.last_power != Some(p_w) {
            ls.power_w.push(ls.now, p_w);
            ls.last_power = Some(p_w);
        }

        let mut w_left = match kind {
            SpanKind::Work(_, w) => w,
            _ => Work::ZERO,
        };
        let mut executed: u64 = 0; // quanta fully accounted
        let mut span_over = false; // policy changed the machine
        while executed < max && !span_over {
            let t_k = SimTime::from_micros(start_us + (executed + 1) * q_us);

            // -- the quantum's single segment --
            let mut wf = 0.0;
            if let SpanKind::Work(..) = kind {
                match w_left.execute_for(ls.quantum, step, freq, &self.machine.mem) {
                    itsy_hw::WorkProgress::Completed(_) => break, // reference path finishes it
                    itsy_hw::WorkProgress::Remaining(rest) => {
                        let done = w_left.plus(rest.scaled(-1.0));
                        w_left = rest;
                        wf = (done.total_cycles(ls.fastest, &self.machine.mem) / wf_denom)
                            .clamp(0.0, 1.0);
                    }
                }
            }
            ls.totals.energy += e_q;
            ls.totals.core_energy += ce_q;
            if has_battery {
                let batt = self.machine.battery.as_mut().expect("checked above");
                batt.drain(p, ls.quantum);
                if self.config.stop_when_battery_empty && batt.is_empty() {
                    // The reference breaks out before the mode
                    // accounting and the tick, so this quantum adds
                    // energy but no busy/idle time.
                    ls.now = t_k;
                    ls.stopped = true;
                    break;
                }
            }
            executed += 1;

            // -- the tick at t_k --
            ls.utilization.push(t_k, util);
            ls.work_fraction.push(t_k, wf);
            // No sleeper can wake before the span's bound.
            if let Some(policy) = self.policy.as_mut() {
                if !(policy_settled && elide_policy) {
                    let req = policy.on_interval(t_k, util, step);
                    let noop = req.step.is_none_or(|s| s == step)
                        && req.voltage.is_none_or(|v| v == voltage);
                    if noop {
                        // Applying a no-op request is free and mutates
                        // nothing (no transition, no switch counters).
                        policy_settled = true;
                    } else {
                        let target_step = req.step.unwrap_or(step);
                        let target_v = req.voltage.unwrap_or(voltage);
                        let Machine { cpu, power, .. } = &mut self.machine;
                        let params = &power.params;
                        let transition =
                            cpu.request(target_step, target_v, params)
                                .unwrap_or_else(|_| {
                                    cpu.request(target_step, V_HIGH, params)
                                        .expect("high voltage is safe at every step")
                                });
                        if !transition.stall.is_zero() {
                            ls.stall_until = t_k + transition.stall;
                        }
                        span_over = true;
                    }
                }
            }
            let (cur_khz, cur_mhz) = if span_over {
                let f = self.machine.cpu.freq();
                (f.as_khz(), f.as_mhz_f64())
            } else {
                (khz, mhz)
            };
            ls.freq_mhz.push(t_k, cur_mhz);
            match kind {
                SpanKind::Idle => self.sched_log.record(t_k, IDLE_PID, cur_khz),
                SpanKind::Work(pid, _) | SpanKind::Spin(pid, _) => {
                    let t = &mut self.tasks[(pid - 1) as usize];
                    let expired = if force {
                        true
                    } else {
                        t.counter = t.counter.saturating_sub(1);
                        t.counter == 0
                    };
                    if expired {
                        // The reference pops the task off the runqueue
                        // and immediately re-picks it: current and the
                        // (empty) runqueue end up unchanged, leaving
                        // only the log record and the counter reset.
                        t.counter = default_counter;
                        self.sched_log.record(t_k, pid, cur_khz);
                    }
                }
            }
        }

        if executed == 0 && !ls.stopped {
            return false;
        }

        // Closed-form delivery of the integer accounting the flat loop
        // skipped: n identical integer adds of `quantum` are exactly
        // `n * quantum`.
        let span_total = SimDuration::from_micros(executed * q_us);
        if let Some(tl) = ls.timeline.as_mut() {
            // An emptying battery's final quantum drew energy without
            // counting as executed; mirror that in the window buckets.
            let energy_quanta = executed + u64::from(ls.stopped);
            tl.energy(start_us, start_us + energy_quanta * q_us, p_w);
            if !matches!(kind, SpanKind::Idle) {
                tl.busy(start_us, start_us + executed * q_us);
            }
        }
        if !ls.stopped {
            ls.now = SimTime::from_micros(start_us + executed * q_us);
        }
        ls.next_tick = ls.now + ls.quantum;
        match kind {
            SpanKind::Idle => ls.totals.idle += span_total,
            SpanKind::Work(pid, _) => {
                ls.totals.busy += span_total;
                let t = &mut self.tasks[(pid - 1) as usize];
                t.cpu_time += span_total;
                t.run = RunState::Work(w_left);
            }
            SpanKind::Spin(pid, _) => {
                ls.totals.busy += span_total;
                ls.totals.spun += span_total;
                self.tasks[(pid - 1) as usize].cpu_time += span_total;
            }
        }
        true
    }

    /// Closes the power trace and assembles the report.
    fn finish(self, mut ls: LoopState) -> KernelReport {
        if ls.summary {
            // All of a summary run's energy flowed through the
            // compensated accumulator; land it in the totals now.
            ls.span_energy.commit(&mut ls.totals);
        } else if self.config.record_power {
            if let Some(p) = ls.last_power {
                ls.power_w.push(ls.now, p);
            }
        }

        let per_task = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| ((i + 1) as Pid, t.behavior.label(), t.cpu_time))
            .collect();

        KernelReport {
            utilization: ls.utilization,
            freq_mhz: ls.freq_mhz,
            work_fraction: ls.work_fraction,
            power_w: ls.power_w,
            busy: ls.totals.busy,
            idle: ls.totals.idle,
            stalled: ls.totals.stalled,
            spun: ls.totals.spun,
            energy: ls.totals.energy,
            core_energy: ls.totals.core_energy,
            sched_log: self.sched_log,
            deadlines: self.deadlines,
            trace: self.trace,
            clock_switches: self.machine.cpu.clock_switches(),
            voltage_switches: self.machine.cpu.voltage_switches(),
            final_step: self.machine.cpu.step(),
            per_task_cpu: per_task,
            battery_remaining: self
                .machine
                .battery
                .as_ref()
                .map(|b| b.remaining_fraction()),
            elapsed: ls.now.duration_since(SimTime::ZERO),
            fidelity: self.config.fidelity,
            quantum: ls.quantum,
            ticks: ls.ticks,
            util_sum_us: ls.util_sum_us,
            freq_khz_sum: ls.freq_khz_sum,
            timeline: ls.timeline.map(|t| t.samples()).unwrap_or_default(),
        }
    }
}

/// Convenience: the step index of a frequency in the SA-1100 table.
pub fn sa1100_step_of_mhz(mhz: f64) -> StepIndex {
    let table = itsy_hw::ClockTable::sa1100();
    table.step_at_least(sim_core::Frequency::from_khz((mhz * 1000.0) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::FnBehavior;
    use itsy_hw::DeviceSet;
    use policies::{ClockPolicy, IntervalScheduler, PolicyRequest};

    fn config(secs: u64) -> KernelConfig {
        KernelConfig {
            duration: SimDuration::from_secs(secs),
            ..KernelConfig::default()
        }
    }

    fn busy_forever() -> Box<dyn TaskBehavior> {
        Box::new(FnBehavior::new("busy", |_ctx| {
            TaskAction::Compute(Work::cycles(1.0e9))
        }))
    }

    #[test]
    fn fully_busy_task_gives_unit_utilization() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        let r = k.run();
        assert_eq!(r.utilization.len(), 100);
        assert!(r.utilization.values().iter().all(|&u| u == 1.0));
        assert_eq!(r.idle, SimDuration::ZERO);
        assert_eq!(r.busy, SimDuration::from_secs(1));
    }

    #[test]
    fn empty_system_is_fully_idle() {
        let k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), config(1));
        let r = k.run();
        assert!(r.utilization.values().iter().all(|&u| u == 0.0));
        assert_eq!(r.busy, SimDuration::ZERO);
        assert_eq!(r.idle, SimDuration::from_secs(1));
    }

    #[test]
    fn time_is_conserved() {
        let mut k = Kernel::new(Machine::itsy(5, DeviceSet::AV), config(2));
        k.spawn(Box::new(FnBehavior::new("half", |ctx| {
            // Compute 5 ms worth of cycles at 132.7 MHz, then sleep 15 ms.
            if ctx.now.as_micros() % 20_000 < 10_000 {
                TaskAction::Compute(Work::cycles(132_700.0 * 5.0))
            } else {
                TaskAction::SleepUntil(ctx.now + SimDuration::from_millis(15))
            }
        })));
        let r = k.run();
        assert_eq!(r.time_accounted(), SimDuration::from_secs(2));
    }

    #[test]
    fn half_load_measures_half_utilization() {
        // 5 ms of work at the start of every 20 ms period.
        let mut k = Kernel::new(Machine::itsy(5, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("period", |ctx| {
            let period_start = SimTime::from_micros(ctx.now.as_micros() / 20_000 * 20_000);
            if ctx.now == period_start {
                // 5 ms of cycles at the current clock (132.7 MHz).
                TaskAction::Compute(Work::cycles(132_700.0 * 5.0))
            } else {
                TaskAction::SleepUntil(period_start + SimDuration::from_millis(20))
            }
        })));
        let r = k.run();
        let mean = r.mean_utilization();
        assert!((mean - 0.25).abs() < 0.05, "mean utilization = {mean}");
    }

    #[test]
    fn sleep_wakes_at_jiffy_granularity() {
        // A task sleeping until t=15ms must not run again before the
        // 20 ms tick.
        let mut first_wake = None;
        let mut started = false;
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        let wake_probe = std::sync::Arc::new(std::sync::Mutex::new(None));
        let probe = wake_probe.clone();
        k.spawn(Box::new(FnBehavior::new("sleeper", move |ctx| {
            if !started {
                started = true;
                return TaskAction::SleepUntil(SimTime::from_millis(15));
            }
            if first_wake.is_none() {
                first_wake = Some(ctx.now);
                *probe.lock().unwrap() = Some(ctx.now);
            }
            TaskAction::SleepUntil(ctx.now + SimDuration::from_secs(10))
        })));
        let _ = k.run();
        let woke = wake_probe.lock().unwrap().expect("task never woke");
        assert_eq!(woke, SimTime::from_millis(20));
    }

    #[test]
    fn spin_counts_as_busy() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("spinner", |ctx| {
            TaskAction::SpinUntil(ctx.now + SimDuration::from_millis(50))
        })));
        let r = k.run();
        assert_eq!(r.busy, SimDuration::from_secs(1));
        assert!(r.utilization.values().iter().all(|&u| u == 1.0));
    }

    #[test]
    fn round_robin_shares_the_cpu() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        let a = k.spawn(busy_forever());
        let b = k.spawn(busy_forever());
        let r = k.run();
        let count = |pid| {
            r.sched_log
                .records()
                .iter()
                .filter(|rec| rec.pid == pid)
                .count() as f64
        };
        let (ca, cb) = (count(a), count(b));
        assert!(ca > 0.0 && cb > 0.0);
        assert!((ca / cb - 1.0).abs() < 0.1, "unfair: {ca} vs {cb}");
    }

    #[test]
    fn best_policy_pegs_up_under_load() {
        let mut k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.install_policy(Box::new(IntervalScheduler::best_from_paper(
            itsy_hw::ClockTable::sa1100(),
        )));
        let r = k.run();
        assert_eq!(r.final_step, 10);
        assert_eq!(r.clock_switches, 1, "one peg to the top, then stay");
        // The frequency trace shows the jump at the first tick.
        let vals = r.freq_mhz.values();
        assert!((vals[0] - 59.0).abs() < 1e-9);
        assert!((vals[2] - 206.4).abs() < 1e-9);
    }

    #[test]
    fn policy_toggling_accumulates_stalls() {
        // A pathological policy that alternates the clock every tick.
        struct Toggle(bool);
        impl ClockPolicy for Toggle {
            fn on_interval(&mut self, _: SimTime, _: f64, cur: StepIndex) -> PolicyRequest {
                self.0 = !self.0;
                PolicyRequest {
                    step: Some(if cur == 0 { 10 } else { 0 }),
                    voltage: None,
                }
            }
            fn name(&self) -> String {
                "toggle".into()
            }
        }
        let mut k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.install_policy(Box::new(Toggle(false)));
        let r = k.run();
        // 100 ticks, a switch on each (except possibly the last),
        // 200 us stall each.
        assert!(r.clock_switches >= 99, "switches = {}", r.clock_switches);
        let stall_us = r.stalled.as_micros();
        assert!(
            (stall_us as i64 - (r.clock_switches as i64 * 200)).abs() <= 200,
            "stalled = {stall_us}us for {} switches",
            r.clock_switches
        );
    }

    #[test]
    fn energy_decomposes_into_core_and_peripherals() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::AV), config(2));
        k.spawn(busy_forever());
        let r = k.run();
        let core = r.core_energy.as_joules();
        let periph = r.peripheral_energy().as_joules();
        assert!(core > 0.0 && periph > 0.0);
        assert!((core + periph - r.energy.as_joules()).abs() < 1e-9);
        // Fully busy at 206.4 MHz: core = 0.64 W x 2 s, peripherals
        // (base + LCD + audio) = 0.95 W x 2 s.
        assert!((core - 1.28).abs() < 0.07, "core = {core}J");
        assert!((periph - 1.90).abs() < 0.05, "periph = {periph}J");
    }

    #[test]
    fn energy_matches_mean_power_times_time() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::AV), config(2));
        k.spawn(busy_forever());
        let r = k.run();
        let p = r.mean_power_w();
        assert!((r.energy.as_joules() - p * 2.0).abs() < 1e-9);
        // Fully busy at 206.4/1.5V with AV devices: core 0.64 W + 0.95 W.
        assert!((1.4..1.8).contains(&p), "mean power = {p}W");
    }

    #[test]
    fn exited_tasks_free_the_cpu() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        let mut done = false;
        k.spawn(Box::new(FnBehavior::new("oneshot", move |_ctx| {
            if done {
                TaskAction::Exit
            } else {
                done = true;
                // ~100 ms of cycles at 206.4 MHz.
                TaskAction::Compute(Work::cycles(206_400.0 * 100.0))
            }
        })));
        let r = k.run();
        let busy_ms = r.busy.as_micros() / 1_000;
        assert!((95..=105).contains(&busy_ms), "busy = {busy_ms}ms");
    }

    #[test]
    fn deadline_reports_flow_through() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        let mut n = 0u32;
        k.spawn(Box::new(FnBehavior::new("dl", move |ctx| {
            n += 1;
            if n == 1 {
                TaskAction::Compute(Work::cycles(206_400.0 * 30.0)) // 30 ms
            } else if n == 2 {
                ctx.report_deadline("frame", SimTime::from_millis(20));
                TaskAction::Exit
            } else {
                TaskAction::Exit
            }
        })));
        let r = k.run();
        assert_eq!(r.deadlines.len(), 1);
        assert_eq!(r.deadlines.misses(SimDuration::ZERO), 1);
        assert_eq!(r.deadlines.misses(SimDuration::from_millis(15)), 0);
    }

    #[test]
    fn power_trace_is_a_step_function_with_final_sample() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("burst", |ctx| {
            if ctx.now.as_micros() % 100_000 < 50_000 {
                TaskAction::Compute(Work::cycles(206_400.0 * 10.0))
            } else {
                TaskAction::SleepUntil(ctx.now + SimDuration::from_millis(50))
            }
        })));
        let r = k.run();
        assert!(r.power_w.len() >= 3);
        let times = r.power_w.times_us();
        assert_eq!(*times.last().unwrap(), 1_000_000);
    }

    #[test]
    fn classic_counter_scheduling_runs_longer_slices() {
        // Stock Linux 2.0: "a process can run for several quanta before
        // the scheduler is called". With two busy tasks and a counter
        // of 20, context switches happen every ~200 ms instead of every
        // tick.
        let run = |force: bool| {
            let mut k = Kernel::new(
                Machine::itsy(10, DeviceSet::NONE),
                KernelConfig {
                    duration: SimDuration::from_secs(2),
                    force_schedule_every_tick: force,
                    ..KernelConfig::default()
                },
            );
            k.spawn(busy_forever());
            k.spawn(busy_forever());
            k.run()
        };
        let forced = run(true);
        let classic = run(false);
        // Context switches = sched-log entries (one per pick).
        assert!(
            forced.sched_log.len() > classic.sched_log.len() * 5,
            "forced {} vs classic {}",
            forced.sched_log.len(),
            classic.sched_log.len()
        );
        // Fairness and utilization are unaffected.
        assert_eq!(classic.busy, SimDuration::from_secs(2));
        let a = classic.per_task_cpu[0].2.as_secs_f64();
        let b = classic.per_task_cpu[1].2.as_secs_f64();
        assert!((a / b - 1.0).abs() < 0.15, "unfair: {a} vs {b}");
        // Classic slices are ~20 ticks: consecutive same-pid log gaps.
        let recs = classic.sched_log.records();
        let gaps: Vec<u64> = recs.windows(2).map(|w| w[1].at_us - w[0].at_us).collect();
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len().max(1) as f64;
        assert!(
            (150_000.0..=260_000.0).contains(&mean_gap),
            "mean slice = {mean_gap}us"
        );
    }

    #[test]
    fn per_task_accounting_adds_up() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.spawn(busy_forever());
        let r = k.run();
        assert_eq!(r.per_task_cpu.len(), 2);
        let a = r.per_task_cpu[0].2;
        let b = r.per_task_cpu[1].2;
        // Round-robin: equal shares, totalling all busy time.
        assert_eq!(a + b, r.busy);
        let ratio = a.as_micros() as f64 / b.as_micros() as f64;
        assert!((ratio - 1.0).abs() < 0.05, "unfair split {a} vs {b}");
        assert!(r.cpu_time_of("busy").is_some());
        assert_eq!(r.per_task_total(), r.busy);
    }

    #[test]
    fn fractional_final_quantum_is_accounted() {
        // 25 ms = 2 full quanta + a 5 ms tail with no tick.
        let mut k = Kernel::new(
            Machine::itsy(10, DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_millis(25),
                ..KernelConfig::default()
            },
        );
        k.spawn(busy_forever());
        let r = k.run();
        assert_eq!(r.utilization.len(), 2, "only full quanta get samples");
        assert_eq!(r.time_accounted(), SimDuration::from_millis(25));
        assert_eq!(r.busy, SimDuration::from_millis(25));
    }

    #[test]
    fn unsafe_voltage_requests_are_clamped_not_fatal() {
        // A policy that asks for 1.23 V at the top step: electrically
        // unsafe; the kernel must clamp the voltage up and proceed.
        struct Reckless;
        impl ClockPolicy for Reckless {
            fn on_interval(&mut self, _: SimTime, _: f64, _: StepIndex) -> PolicyRequest {
                PolicyRequest {
                    step: Some(10),
                    voltage: Some(itsy_hw::clock::V_LOW),
                }
            }
            fn name(&self) -> String {
                "reckless".into()
            }
        }
        let mut k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.install_policy(Box::new(Reckless));
        let r = k.run();
        assert_eq!(r.final_step, 10, "the step change itself is honoured");
        // And the run completed with sane accounting.
        assert_eq!(r.time_accounted(), SimDuration::from_secs(1));
    }

    #[test]
    fn sleeping_past_the_end_is_fine() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("farsleeper", |ctx| {
            TaskAction::SleepUntil(ctx.now + SimDuration::from_secs(100))
        })));
        let r = k.run();
        assert_eq!(r.idle, SimDuration::from_secs(1));
    }

    #[test]
    fn trace_captures_quanta_decisions_and_transitions() {
        let mut k = Kernel::new(
            Machine::itsy(0, DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_secs(1),
                trace: true,
                ..KernelConfig::default()
            },
        );
        k.spawn(busy_forever());
        k.install_policy(Box::new(IntervalScheduler::best_from_paper(
            itsy_hw::ClockTable::sa1100(),
        )));
        let r = k.run();
        let count = |name: &str| {
            r.trace
                .events()
                .iter()
                .filter(|e| e.kind.name() == name)
                .count()
        };
        assert_eq!(count("quantum"), 100, "one per 10ms tick over 1s");
        assert_eq!(count("policy"), 100, "policy runs on every tick");
        assert_eq!(
            count("clock") as u64,
            r.clock_switches,
            "trace agrees with the hardware counters"
        );
        assert!(count("sched") > 0);
        // Times never decrease (export relies on this).
        let times: Vec<u64> = r.trace.events().iter().map(|e| e.time_us).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tracing_does_not_change_the_simulation() {
        let run = |trace: bool| {
            let mut k = Kernel::new(
                Machine::itsy(0, DeviceSet::NONE),
                KernelConfig {
                    duration: SimDuration::from_secs(1),
                    trace,
                    ..KernelConfig::default()
                },
            );
            k.spawn(busy_forever());
            k.install_policy(Box::new(IntervalScheduler::best_from_paper(
                itsy_hw::ClockTable::sa1100(),
            )));
            k.run()
        };
        let traced = run(true);
        let plain = run(false);
        assert!(plain.trace.is_empty());
        assert_eq!(traced.energy, plain.energy);
        assert_eq!(traced.clock_switches, plain.clock_switches);
        assert_eq!(traced.final_step, plain.final_step);
        assert_eq!(traced.busy, plain.busy);
    }

    fn summary_config(secs: u64) -> KernelConfig {
        KernelConfig {
            fidelity: SimFidelity::Summary,
            ..config(secs)
        }
    }

    #[test]
    fn summary_run_emits_no_series_or_log() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), summary_config(1));
        k.spawn(busy_forever());
        let r = k.run();
        assert_eq!(r.utilization.len(), 0);
        assert_eq!(r.freq_mhz.len(), 0);
        assert_eq!(r.work_fraction.len(), 0);
        assert_eq!(r.power_w.len(), 0);
        assert!(r.sched_log.is_empty());
        assert_eq!(r.sched_log.dropped(), 0);
        // The closed-form accumulators carry the run instead.
        assert_eq!(r.ticks, 100);
        assert_eq!(r.util_sum_us, 1_000_000);
        assert_eq!(r.mean_utilization(), 1.0);
        assert_eq!(r.busy, SimDuration::from_secs(1));
    }

    #[test]
    fn summary_integer_accounting_matches_full() {
        // A mixed workload (compute bursts + sleeps) through both
        // fidelities: every integer observable must agree exactly.
        let run = |fidelity: SimFidelity| {
            let mut k = Kernel::new(
                Machine::itsy(5, DeviceSet::AV),
                KernelConfig {
                    fidelity,
                    ..config(2)
                },
            );
            k.spawn(Box::new(FnBehavior::new("half", |ctx| {
                if ctx.now.as_micros() % 20_000 < 10_000 {
                    TaskAction::Compute(Work::cycles(132_700.0 * 5.0))
                } else {
                    TaskAction::SleepUntil(ctx.now + SimDuration::from_millis(15))
                }
            })));
            k.install_policy(Box::new(IntervalScheduler::best_from_paper(
                itsy_hw::ClockTable::sa1100(),
            )));
            k.run()
        };
        let full = run(SimFidelity::Full);
        let summary = run(SimFidelity::Summary);
        assert_eq!(summary.busy, full.busy);
        assert_eq!(summary.idle, full.idle);
        assert_eq!(summary.stalled, full.stalled);
        assert_eq!(summary.spun, full.spun);
        assert_eq!(summary.clock_switches, full.clock_switches);
        assert_eq!(summary.voltage_switches, full.voltage_switches);
        assert_eq!(summary.final_step, full.final_step);
        assert_eq!(summary.per_task_cpu, full.per_task_cpu);
        assert_eq!(summary.ticks as usize, full.utilization.len());
        // Energy agrees to the documented bound (the summation order
        // differs); with spans this short the gap is tiny.
        let (e, f) = (summary.energy.as_joules(), full.energy.as_joules());
        assert!((e - f).abs() <= 1e-9 * f.max(1.0), "{e} vs {f}");
    }

    #[test]
    fn summary_means_are_exact_closed_forms() {
        let mut k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), summary_config(1));
        k.spawn(busy_forever());
        k.install_policy(Box::new(IntervalScheduler::best_from_paper(
            itsy_hw::ClockTable::sa1100(),
        )));
        let r = k.run();
        // Peg to the top at the first tick: one sample at 59 MHz (t=0),
        // one at 59 MHz... no — the first tick's sample is taken after
        // the decision applies, so: t=0 at 59 MHz, 100 tick samples at
        // 206.4 MHz except the first tick is already switched.
        assert_eq!(r.final_step, 10);
        assert_eq!(r.ticks, 100);
        let khz = r.freq_khz_sum;
        assert_eq!(khz, 59_000 + 100 * 206_400);
        let expected = (khz as f64 / 101.0) / 1000.0;
        assert_eq!(r.mean_freq_mhz(), expected);
    }

    #[test]
    fn summary_reference_and_batched_agree_on_integers() {
        let run = |reference: bool| {
            let mut k = Kernel::new(
                Machine::itsy(10, DeviceSet::AV),
                KernelConfig {
                    reference,
                    ..summary_config(2)
                },
            );
            k.spawn(busy_forever());
            k.spawn(Box::new(FnBehavior::new("napper", |ctx| {
                TaskAction::SleepUntil(ctx.now + SimDuration::from_millis(130))
            })));
            k.install_policy(Box::new(IntervalScheduler::best_from_paper(
                itsy_hw::ClockTable::sa1100(),
            )));
            k.run()
        };
        let batched = run(false);
        let reference = run(true);
        assert_eq!(batched.busy, reference.busy);
        assert_eq!(batched.idle, reference.idle);
        assert_eq!(batched.ticks, reference.ticks);
        assert_eq!(batched.util_sum_us, reference.util_sum_us);
        assert_eq!(batched.freq_khz_sum, reference.freq_khz_sum);
        assert_eq!(batched.clock_switches, reference.clock_switches);
        assert_eq!(batched.per_task_cpu, reference.per_task_cpu);
    }

    #[test]
    fn summary_classic_counter_state_matches_reference() {
        // force_schedule_every_tick = false exercises the closed-form
        // preemption counter; per-task CPU shares must still match the
        // reference bit-for-bit.
        let run = |reference: bool| {
            let mut k = Kernel::new(
                Machine::itsy(10, DeviceSet::NONE),
                KernelConfig {
                    duration: SimDuration::from_secs(2),
                    force_schedule_every_tick: false,
                    reference,
                    fidelity: SimFidelity::Summary,
                    ..KernelConfig::default()
                },
            );
            k.spawn(busy_forever());
            k.spawn(Box::new(FnBehavior::new("sleeper", |ctx| {
                TaskAction::SleepUntil(ctx.now + SimDuration::from_millis(70))
            })));
            k.run()
        };
        let batched = run(false);
        let reference = run(true);
        assert_eq!(batched.per_task_cpu, reference.per_task_cpu);
        assert_eq!(batched.busy, reference.busy);
        assert_eq!(batched.ticks, reference.ticks);
    }

    #[test]
    fn observation_stride_decimates_summary_delivery() {
        // A stride-3 policy counts deliveries; in summary mode only
        // every third tick (by global index) reaches it.
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        struct Decimated(Arc<AtomicU64>);
        impl ClockPolicy for Decimated {
            fn on_interval(&mut self, now: SimTime, _: f64, _: StepIndex) -> PolicyRequest {
                assert_eq!(
                    (now.as_micros() / 10_000) % 3,
                    0,
                    "summary must deliver only on-stride ticks"
                );
                self.0.fetch_add(1, Ordering::Relaxed);
                PolicyRequest::NONE
            }
            fn observation_stride(&self) -> u64 {
                3
            }
            fn name(&self) -> String {
                "decimated".into()
            }
        }
        // An event-dense workload keeps ticks on the general path, a
        // steady one exercises the span path; both must decimate.
        for reference in [false, true] {
            let calls = Arc::new(AtomicU64::new(0));
            let mut k = Kernel::new(
                Machine::itsy(10, DeviceSet::NONE),
                KernelConfig {
                    reference,
                    ..summary_config(1)
                },
            );
            k.spawn(busy_forever());
            k.install_policy(Box::new(Decimated(calls.clone())));
            let _ = k.run();
            // Ticks 3, 6, ..., 99 → 33 deliveries.
            assert_eq!(calls.load(Ordering::Relaxed), 33, "reference={reference}");
        }
    }

    #[test]
    fn full_fidelity_ignores_observation_stride() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        struct Counting(Arc<AtomicU64>);
        impl ClockPolicy for Counting {
            fn on_interval(&mut self, _: SimTime, _: f64, _: StepIndex) -> PolicyRequest {
                self.0.fetch_add(1, Ordering::Relaxed);
                PolicyRequest::NONE
            }
            fn observation_stride(&self) -> u64 {
                7
            }
            fn name(&self) -> String {
                "counting".into()
            }
        }
        let calls = Arc::new(AtomicU64::new(0));
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.install_policy(Box::new(Counting(calls.clone())));
        let _ = k.run();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            100,
            "full delivers every tick"
        );
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn zero_work_livelock_is_detected() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("livelock", |_ctx| {
            TaskAction::Compute(Work::ZERO)
        })));
        let _ = k.run();
    }

    /// 5 ms of work at the start of every 20 ms period — a workload
    /// whose trajectory is *not* uniform across windows.
    fn periodic_half_load() -> Box<dyn TaskBehavior> {
        Box::new(FnBehavior::new("period", |ctx| {
            let period_start = SimTime::from_micros(ctx.now.as_micros() / 20_000 * 20_000);
            if ctx.now == period_start {
                TaskAction::Compute(Work::cycles(132_700.0 * 5.0))
            } else {
                TaskAction::SleepUntil(period_start + SimDuration::from_millis(20))
            }
        }))
    }

    #[test]
    fn timeline_partitions_the_run_and_conserves_totals() {
        // 7 windows over 1 s: deliberately not a divisor, so the last
        // window is short.
        let cfg = KernelConfig {
            timeline_windows: 7,
            ..config(1)
        };
        let mut k = Kernel::new(Machine::itsy(5, DeviceSet::NONE), cfg);
        k.spawn(periodic_half_load());
        let r = k.run();
        assert_eq!(r.timeline.len(), 7);
        // Windows tile [0, duration] exactly.
        assert_eq!(r.timeline[0].start_us, 0);
        assert_eq!(r.timeline.last().unwrap().end_us, 1_000_000);
        for pair in r.timeline.windows(2) {
            assert_eq!(pair[0].end_us, pair[1].start_us);
            assert!(pair[0].start_us < pair[0].end_us);
        }
        // Busy time and energy bucketed per window sum back to the
        // run's totals (energy up to float re-association).
        let busy_sum: u64 = r.timeline.iter().map(|w| w.busy_us).sum();
        assert_eq!(busy_sum, r.busy.as_micros());
        let energy_sum: f64 = r.timeline.iter().map(|w| w.energy_j).sum();
        let total = r.energy.as_joules();
        assert!(
            (energy_sum - total).abs() < 1e-9 * total.max(1.0),
            "{energy_sum} vs {total}"
        );
        // Every window saw some busy time and some energy.
        assert!(r.timeline.iter().all(|w| w.busy_us > 0));
        assert!(r.timeline.iter().all(|w| w.energy_j > 0.0));
        // Kernel leaves misses for the caller.
        assert!(r.timeline.iter().all(|w| w.misses == 0));
    }

    #[test]
    fn timeline_windows_zero_records_nothing() {
        let mut k = Kernel::new(Machine::itsy(5, DeviceSet::NONE), config(1));
        k.spawn(periodic_half_load());
        assert!(k.run().timeline.is_empty());
    }

    #[test]
    fn timeline_agrees_across_paths_and_fidelities() {
        let run = |reference: bool, fidelity: SimFidelity| {
            let cfg = KernelConfig {
                timeline_windows: 10,
                reference,
                fidelity,
                ..config(2)
            };
            let mut k = Kernel::new(Machine::itsy(5, DeviceSet::NONE), cfg);
            k.spawn(periodic_half_load());
            k.install_policy(Box::new(IntervalScheduler::best_from_paper(
                itsy_hw::ClockTable::sa1100(),
            )));
            k.run().timeline
        };
        let batched = run(false, SimFidelity::Full);
        for (which, other) in [
            ("reference", run(true, SimFidelity::Full)),
            ("summary", run(false, SimFidelity::Summary)),
            ("summary+reference", run(true, SimFidelity::Summary)),
        ] {
            assert_eq!(batched.len(), other.len());
            for (a, b) in batched.iter().zip(&other) {
                assert_eq!((a.start_us, a.end_us), (b.start_us, b.end_us), "{which}");
                assert_eq!(a.busy_us, b.busy_us, "{which} busy @{}", a.start_us);
                assert!(
                    (a.energy_j - b.energy_j).abs() < 1e-9 * a.energy_j.max(1.0),
                    "{which} energy @{}: {} vs {}",
                    a.start_us,
                    a.energy_j,
                    b.energy_j
                );
            }
        }
    }
}
