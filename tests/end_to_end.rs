//! Cross-crate integration: workload → kernel → hardware → DAQ →
//! statistics, through the facade crate's public API only.

use itsy_dvs::apps::Benchmark;
use itsy_dvs::dvs::{ConstantPolicy, IntervalScheduler};
use itsy_dvs::hw::clock::V_HIGH;
use itsy_dvs::hw::ClockTable;
use itsy_dvs::kernel::{Kernel, KernelConfig, Machine};
use itsy_dvs::measure::Daq;
use itsy_dvs::sim::{Rng, RunStats, SimDuration, SimTime};

fn run_mpeg(step: usize, secs: u64, policy: bool, seed: u64) -> itsy_dvs::kernel::KernelReport {
    let mut kernel = Kernel::new(
        Machine::itsy(step, Benchmark::Mpeg.devices()),
        KernelConfig {
            duration: SimDuration::from_secs(secs),
            ..KernelConfig::default()
        },
    );
    Benchmark::Mpeg.spawn_into(&mut kernel, seed);
    if policy {
        kernel.install_policy(Box::new(IntervalScheduler::best_from_paper(
            ClockTable::sa1100(),
        )));
    } else {
        kernel.install_policy(Box::new(ConstantPolicy::new(step, V_HIGH)));
    }
    kernel.run()
}

#[test]
fn daq_energy_matches_kernel_energy() {
    // The measurement chain must agree with the simulator's own
    // integration to within noise + quantisation.
    let report = run_mpeg(10, 10, false, 3);
    let daq = Daq::default();
    let mut rng = Rng::new(17);
    let profile = daq.capture(
        &report.power_w,
        SimTime::ZERO,
        SimTime::from_secs(10),
        &mut rng,
    );
    let rel = (profile.energy().as_joules() - report.energy.as_joules()).abs()
        / report.energy.as_joules();
    assert!(rel < 0.01, "DAQ vs kernel energy differ by {rel:.4}");
}

#[test]
fn repeated_measurements_are_tight() {
    // The paper's repeatability criterion over the full pipeline.
    let mut stats = RunStats::new();
    let daq = Daq::default();
    for run in 0..6 {
        let report = run_mpeg(10, 5, false, 100 + run);
        let mut rng = Rng::new(run);
        let profile = daq.capture(
            &report.power_w,
            SimTime::ZERO,
            SimTime::from_secs(5),
            &mut rng,
        );
        stats.record(profile.energy().as_joules());
    }
    let ci = stats.ci95().expect("six runs");
    assert!(
        ci.relative_half_width() < 0.007,
        "CI half width {:.3}% of mean",
        ci.relative_half_width() * 100.0
    );
}

#[test]
fn policy_saves_energy_without_missing_deadlines() {
    let constant = run_mpeg(10, 20, false, 5);
    let governed = run_mpeg(10, 20, true, 5);
    assert!(governed.energy.as_joules() < constant.energy.as_joules());
    assert_eq!(
        governed.deadlines.misses(SimDuration::from_millis(100)),
        0,
        "max lateness {}",
        governed.deadlines.max_lateness()
    );
    assert!(governed.clock_switches > 0);
}

#[test]
fn all_benchmarks_run_to_completion_under_all_stock_policies() {
    for b in Benchmark::ALL {
        for policy in [false, true] {
            let mut kernel = Kernel::new(
                Machine::itsy(10, b.devices()),
                KernelConfig {
                    duration: SimDuration::from_secs(10),
                    ..KernelConfig::default()
                },
            );
            b.spawn_into(&mut kernel, 9);
            if policy {
                kernel.install_policy(Box::new(IntervalScheduler::best_from_paper(
                    ClockTable::sa1100(),
                )));
            }
            let r = kernel.run();
            assert_eq!(
                r.time_accounted(),
                SimDuration::from_secs(10),
                "{} lost time",
                b.name()
            );
            assert!(r.energy.as_joules() > 0.0);
            assert_eq!(r.utilization.len(), 1000);
        }
    }
}

#[test]
fn sched_log_has_the_papers_record_shape() {
    let report = run_mpeg(10, 5, true, 2);
    let recs = report.sched_log.records();
    assert!(!recs.is_empty());
    // Timestamps nondecreasing, pids valid, clock rates from the table.
    let table = ClockTable::sa1100();
    let valid_khz: Vec<u32> = table.iter().map(|(_, f)| f.as_khz()).collect();
    for w in recs.windows(2) {
        assert!(w[0].at_us <= w[1].at_us);
    }
    for r in recs {
        assert!(r.pid <= 2, "MPEG has two tasks plus idle");
        assert!(
            valid_khz.contains(&r.clock_khz),
            "bogus rate {}",
            r.clock_khz
        );
    }
    // Both the player and the idle task appear.
    assert!(recs.iter().any(|r| r.pid == 0));
    assert!(recs.iter().any(|r| r.pid != 0));
}

#[test]
fn oracle_baselines_consume_kernel_work_traces() {
    // Weiser-style trace-driven algorithms run on the work trace the
    // kernel records.
    let report = run_mpeg(10, 10, false, 4);
    let trace = itsy_dvs::dvs::WorkTrace::new(report.work_fraction.values());
    let opt = itsy_dvs::dvs::oracle::opt(&trace);
    let future = itsy_dvs::dvs::oracle::future(&trace);
    let past = itsy_dvs::dvs::oracle::weiser_past(&trace);
    assert!(opt.energy <= future.energy + 1e-9);
    assert!(future.energy <= past.energy * 1.05);
    // OPT's constant speed sits near MPEG's mean work fraction.
    let mean = trace.mean_work();
    assert!((opt.speeds[0] - mean.clamp(59.0 / 206.4, 1.0)).abs() < 1e-9);
}
