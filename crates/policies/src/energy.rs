//! Voltage-scheduling arithmetic (§2.1).
//!
//! Pering's term *voltage scheduling* means reducing the clock "such
//! that all work on the processor can be completed 'on time' and then
//! reduc\[ing\] the voltage to the minimum needed to insure stability at
//! that frequency". Under the CMOS relation `P ∝ V²f` with the minimum
//! stable voltage roughly proportional to frequency, energy per cycle
//! falls as `f²` — so running a fixed amount of work slower always
//! saves energy, and the energy-optimal schedule finishes exactly at
//! the deadline. This module provides that arithmetic, used by the
//! examples and by the deadline governor's documentation.

use sim_core::{Energy, Frequency, Power, SimDuration};

/// A processor family's voltage-frequency operating curve, modelled as
/// `V(f) = v_min + slope · f` (volts, MHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfCurve {
    /// Voltage floor at (extrapolated) zero frequency, volts.
    pub v_min: f64,
    /// Volts per MHz above the floor.
    pub slope: f64,
    /// Effective switched capacitance coefficient: watts per
    /// (MHz · V²).
    pub cap_w_per_mhz_v2: f64,
}

impl VfCurve {
    /// A curve fitted to the paper's StrongARM SA-2 example: 500 mW at
    /// 600 MHz, 40 mW at 150 MHz (≈12.5× power for 4× clock implies a
    /// strongly super-linear V(f)).
    pub fn strongarm_sa2() -> Self {
        // Solve P = c·f·V(f)^2 through both points with V(600)=1.5V:
        // c = 0.5 / (600 · 1.5²) = 3.70e-4; V(150) = sqrt(0.04 /
        // (c·150)) = 0.849 V; slope = (1.5-0.849)/450 = 1.447e-3;
        // v_min = 0.849 - 150·slope = 0.632.
        VfCurve {
            v_min: 0.632,
            slope: 1.447e-3,
            cap_w_per_mhz_v2: 3.70e-4,
        }
    }

    /// Minimum stable voltage at `f`.
    pub fn voltage_at(&self, f: Frequency) -> f64 {
        self.v_min + self.slope * f.as_mhz_f64()
    }

    /// Power at `f` with the minimum stable voltage.
    pub fn power_at(&self, f: Frequency) -> Power {
        let v = self.voltage_at(f);
        Power::from_watts(self.cap_w_per_mhz_v2 * f.as_mhz_f64() * v * v)
    }

    /// Energy to run `cycles` at `f` (voltage-scaled).
    pub fn energy_for(&self, cycles: u64, f: Frequency) -> Energy {
        self.power_at(f).over(f.time_for_cycles(cycles))
    }

    /// The slowest frequency that completes `cycles` by `deadline` —
    /// the energy-optimal single-speed schedule (energy per cycle is
    /// increasing in `f`, so slower is always cheaper).
    ///
    /// # Panics
    ///
    /// Panics if the deadline is zero.
    pub fn optimal_frequency(&self, cycles: u64, deadline: SimDuration) -> Frequency {
        assert!(!deadline.is_zero(), "deadline must be positive");
        let khz = (cycles as f64 / deadline.as_secs_f64() / 1_000.0).ceil();
        Frequency::from_khz(khz as u32)
    }

    /// Energy of the race-to-idle schedule: run `cycles` flat out at
    /// `f_max`, then idle at `idle_power` until the deadline.
    pub fn race_to_idle_energy(
        &self,
        cycles: u64,
        deadline: SimDuration,
        f_max: Frequency,
        idle_power: Power,
    ) -> Energy {
        let busy = f_max.time_for_cycles(cycles);
        assert!(busy <= deadline, "infeasible even at full speed");
        self.power_at(f_max).over(busy) + idle_power.over(deadline - busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa2() -> VfCurve {
        VfCurve::strongarm_sa2()
    }

    #[test]
    fn fits_the_papers_sa2_numbers() {
        let c = sa2();
        let fast = c.power_at(Frequency::from_mhz(600)).as_watts();
        let slow = c.power_at(Frequency::from_mhz(150)).as_watts();
        assert!((fast - 0.5).abs() < 0.01, "600 MHz: {fast} W");
        assert!((slow - 0.04).abs() < 0.004, "150 MHz: {slow} W");
    }

    #[test]
    fn energy_per_cycle_is_increasing_in_frequency() {
        let c = sa2();
        let mut last = 0.0;
        for mhz in [100u32, 200, 300, 400, 500, 600] {
            let e = c
                .energy_for(1_000_000, Frequency::from_mhz(mhz))
                .as_joules();
            assert!(e > last, "{mhz} MHz: {e}");
            last = e;
        }
    }

    #[test]
    fn optimal_schedule_finishes_exactly_on_time() {
        let c = sa2();
        let cycles = 600_000_000;
        let deadline = SimDuration::from_secs(4);
        let f = c.optimal_frequency(cycles, deadline);
        assert_eq!(f.as_khz(), 150_000);
        let t = f.time_for_cycles(cycles);
        assert!(t <= deadline);
        assert!(deadline - t < SimDuration::from_millis(1));
    }

    #[test]
    fn crawling_beats_racing_even_with_free_idle() {
        // The section 2.1 argument: 600M cycles with a 4 s budget costs
        // 160 mJ at 150 MHz but 500 mJ at 600 MHz — racing loses even if
        // idling were free.
        let c = sa2();
        let cycles = 600_000_000;
        let deadline = SimDuration::from_secs(4);
        let crawl = c
            .energy_for(cycles, c.optimal_frequency(cycles, deadline))
            .as_joules();
        let race = c
            .race_to_idle_energy(cycles, deadline, Frequency::from_mhz(600), Power::ZERO)
            .as_joules();
        assert!((crawl - 0.16).abs() < 0.02, "crawl = {crawl}");
        assert!((race - 0.5).abs() < 0.01, "race = {race}");
        assert!(crawl < race / 3.0);
    }

    #[test]
    fn race_to_idle_gets_worse_with_real_idle_power() {
        let c = sa2();
        let cycles = 600_000_000;
        let deadline = SimDuration::from_secs(4);
        let free = c
            .race_to_idle_energy(cycles, deadline, Frequency::from_mhz(600), Power::ZERO)
            .as_joules();
        let real = c
            .race_to_idle_energy(
                cycles,
                deadline,
                Frequency::from_mhz(600),
                Power::from_milliwatts(50.0),
            )
            .as_joules();
        assert!(real > free);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn race_to_idle_rejects_impossible_deadlines() {
        let c = sa2();
        let _ = c.race_to_idle_energy(
            600_000_000,
            SimDuration::from_millis(100),
            Frequency::from_mhz(600),
            Power::ZERO,
        );
    }

    #[test]
    fn voltage_curve_is_monotone() {
        let c = sa2();
        assert!(c.voltage_at(Frequency::from_mhz(150)) < c.voltage_at(Frequency::from_mhz(600)));
        assert!((c.voltage_at(Frequency::from_mhz(600)) - 1.5).abs() < 0.01);
    }
}
