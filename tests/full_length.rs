//! Full-length runs: every workload at its paper-nominal duration
//! (MPEG 60 s, TalkingEditor 70 s, Web 190 s, Chess 218 s) under the
//! best policy, checking the end-to-end story holds beyond the short
//! windows the unit tests use.

use itsy_dvs::apps::Benchmark;
use itsy_dvs::dvs::IntervalScheduler;
use itsy_dvs::hw::ClockTable;
use itsy_dvs::kernel::{Kernel, KernelConfig, Machine};
use itsy_dvs::sim::SimDuration;

#[test]
fn nominal_durations_run_clean_under_the_best_policy() {
    for b in Benchmark::ALL {
        let mut kernel = Kernel::new(
            Machine::itsy(10, b.devices()),
            KernelConfig {
                duration: b.nominal_duration(),
                ..KernelConfig::default()
            },
        );
        b.spawn_into(&mut kernel, 1);
        kernel.install_policy(Box::new(IntervalScheduler::best_from_paper(
            ClockTable::sa1100(),
        )));
        let r = kernel.run();
        assert_eq!(
            r.time_accounted(),
            b.nominal_duration(),
            "{} lost time",
            b.name()
        );
        assert_eq!(
            r.deadlines.misses(SimDuration::from_millis(100)),
            0,
            "{} missed deadlines over the full trace (worst {})",
            b.name(),
            r.deadlines.max_lateness()
        );
        assert!(r.energy.as_joules() > 0.0);
        // The policy was active: it moved the clock at least once on
        // every workload.
        assert!(r.clock_switches > 0, "{} never scaled", b.name());
    }
}

#[test]
fn mpeg_full_hour_is_stable() {
    // Ten clip loops: lateness must not accumulate across loops.
    let mut kernel = Kernel::new(
        Machine::itsy(5, Benchmark::Mpeg.devices()),
        KernelConfig {
            duration: SimDuration::from_secs(140),
            ..KernelConfig::default()
        },
    );
    Benchmark::Mpeg.spawn_into(&mut kernel, 1);
    let r = kernel.run();
    // Frame deadlines at 132.7 MHz stay met from the first loop to the
    // last.
    assert_eq!(r.deadlines.misses(SimDuration::from_millis(100)), 0);
    // Lateness in the final 20 s is no worse than in the first 20 s
    // (no drift).
    let lateness_in = |from: u64, to: u64| {
        r.deadlines
            .records()
            .iter()
            .filter(|d| d.label == "frame")
            .filter(|d| d.due_us >= from * 1_000_000 && d.due_us < to * 1_000_000)
            .map(|d| d.lateness().as_micros())
            .max()
            .unwrap_or(0)
    };
    let head = lateness_in(0, 20);
    let tail = lateness_in(120, 140);
    assert!(
        tail <= head + 30_000,
        "lateness drifted: head {head}us tail {tail}us"
    );
}

#[test]
fn chess_trace_matches_the_papers_218_seconds() {
    // A complete game: the engine goes quiet near the paper's trace
    // length and never resumes.
    let mut kernel = Kernel::new(
        Machine::itsy(10, Benchmark::Chess.devices()),
        KernelConfig {
            duration: SimDuration::from_secs(300),
            ..KernelConfig::default()
        },
    );
    Benchmark::Chess.spawn_into(&mut kernel, 1);
    let r = kernel.run();
    // Find the last saturated (planning) quantum.
    let last_busy = r
        .utilization
        .iter()
        .filter(|&(_, u)| u > 0.9)
        .map(|(t, _)| t.as_secs_f64())
        .fold(None::<f64>, |_, t| Some(t))
        .expect("the engine planned at least once");
    assert!(
        (60.0..300.0).contains(&last_busy),
        "game ended at {last_busy:.0}s"
    );
    // After the game only the poller's ripple remains.
    let after = r.utilization.window(
        itsy_dvs::sim::SimTime::from_micros(((last_busy + 10.0) * 1e6) as u64),
        itsy_dvs::sim::SimTime::from_secs(300),
    );
    if let Some(m) = after.mean() {
        assert!(m < 0.15, "post-game utilization {m}");
    }
}
