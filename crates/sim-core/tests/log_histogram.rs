//! Property-based tests for [`sim_core::LogHistogram`]: percentile
//! queries against a naive sorted-vec oracle, and monotonicity of the
//! quantile chain p50 ≤ p90 ≤ p99 ≤ max.

use proptest::prelude::*;

use sim_core::LogHistogram;

/// Nearest-rank percentile over the raw samples — the oracle the
/// histogram's bucketed estimate must track.
fn oracle_percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// One bucket spans the ratio 2^(1/16), so a bucket's geometric
/// midpoint is within 2^(1/32) ≈ 1.022 of every sample in it.
const BUCKET_TOL: f64 = 0.03;

proptest! {
    /// Every percentile estimate lands within one bucket's relative
    /// error of the nearest-rank oracle on the raw samples.
    #[test]
    fn percentiles_track_sorted_vec_oracle(
        samples in proptest::collection::vec(1e-6f64..1e12, 1..400),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for &q in &qs {
            let got = h.percentile(q).expect("non-empty");
            let want = oracle_percentile(&sorted, q);
            let rel = (got / want - 1.0).abs();
            prop_assert!(
                rel <= BUCKET_TOL,
                "q={q}: histogram {got} vs oracle {want} (rel err {rel:.4})"
            );
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), Some(sorted[0]));
        prop_assert_eq!(h.max(), Some(*sorted.last().unwrap()));
    }

    /// p50 ≤ p90 ≤ p99 ≤ max for arbitrary sample sets, including
    /// zeros and negatives (which share the zero bucket).
    #[test]
    fn quantile_chain_is_monotone(
        samples in proptest::collection::vec(-10.0f64..1e9, 1..400),
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let p50 = h.percentile(0.50).expect("non-empty");
        let p90 = h.percentile(0.90).expect("non-empty");
        let p99 = h.percentile(0.99).expect("non-empty");
        let max = h.max().expect("non-empty");
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        prop_assert!(p99 <= max, "p99 {p99} > max {max}");
    }

    /// Splitting a sample set across workers and merging gives the
    /// same histogram as recording everything in one, wherever the
    /// split falls.
    #[test]
    fn merge_is_split_invariant(
        samples in proptest::collection::vec(1e-3f64..1e9, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((samples.len() as f64 * split_frac) as usize).min(samples.len());
        let mut a = LogHistogram::new();
        for &s in &samples[..split] {
            a.record(s);
        }
        let mut b = LogHistogram::new();
        for &s in &samples[split..] {
            b.record(s);
        }
        a.merge(&b);
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        // Float summation order differs between the split and whole
        // paths, so `sum` may drift in the last ulp; everything
        // rank-based must match exactly.
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.percentile(q), whole.percentile(q), "q={}", q);
        }
        let rel = (a.sum() / whole.sum() - 1.0).abs();
        prop_assert!(rel < 1e-12, "sums diverge: {} vs {}", a.sum(), whole.sum());
    }
}
