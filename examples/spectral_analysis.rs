//! Walk through the paper's §5.3 stability mathematics on live data:
//! record a workload's utilization, find its periodicity, filter it the
//! way AVG_N does, and see why the governor can never settle.
//!
//! ```text
//! cargo run --release --example spectral_analysis
//! ```

use itsy_dvs::apps::Benchmark;
use itsy_dvs::kernel::{Kernel, KernelConfig, Machine};
use itsy_dvs::signal::{
    autocorrelation, avg_n_alpha, avg_n_response, decaying_exp_spectrum, dominant_period,
    steady_state_band,
};
use itsy_dvs::sim::SimDuration;

fn main() {
    // 1. Record MPEG's per-quantum utilization at full speed.
    let mut kernel = Kernel::new(
        Machine::itsy(10, Benchmark::Mpeg.devices()),
        KernelConfig {
            duration: SimDuration::from_secs(30),
            ..KernelConfig::default()
        },
    );
    Benchmark::Mpeg.spawn_into(&mut kernel, 42);
    let report = kernel.run();
    let util = report.utilization.values();
    println!("recorded {} quanta of MPEG utilization", util.len());

    // 2. Find the workload's time-scale.
    match dominant_period(&util, 100, 0.2) {
        Some(p) => {
            let r = autocorrelation(&util, p)[p];
            println!(
                "dominant period: {p} quanta = {} ms (autocorrelation {r:.2})",
                p * 10
            );
            println!("  -> the paper: frames take 'just under 7 scheduling quanta'");
        }
        None => println!("no dominant period found"),
    }

    // 3. Filter it the way AVG_N smooths utilization.
    for n in [1u32, 3, 9] {
        let filtered = avg_n_response(n, &util);
        let band = steady_state_band(&filtered, 200);
        println!(
            "AVG_{n}: steady-state band [{:.2}, {:.2}] (swing {:.2})",
            band.min,
            band.max,
            band.swing()
        );
        if band.destabilizes(0.98, 0.93) {
            println!("  -> straddles the best policy's 98%/93% thresholds: the clock flaps");
        }
    }

    // 4. The closed-form reason: the filter's spectrum never reaches
    //    zero.
    let alpha = avg_n_alpha(3, 1.0);
    println!("\nAVG_3 kernel spectrum |X(w)| (per-interval radians):");
    for w in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let rel = decaying_exp_spectrum(alpha, w) / decaying_exp_spectrum(alpha, 0.0) * 100.0;
        println!("  w = {w:>3}: {rel:>5.1}% of DC");
    }
    println!("high frequencies are attenuated but never eliminated — if the");
    println!("input oscillates, the weighted utilization oscillates too.");
}
