//! Property-based tests of the kernel and the deadline registry.

use proptest::prelude::*;

use itsy_hw::{DeviceSet, Work};
use kernel_sim::deadline::{DeadlineGovernor, DeadlineRegistry};
use kernel_sim::task::FnBehavior;
use kernel_sim::{Kernel, KernelConfig, Machine, TaskAction};
use policies::ClockPolicy;
use sim_core::{SimDuration, SimTime};

proptest! {
    /// Reservation rates add linearly and drop out on completion, for
    /// arbitrary announcement sets.
    #[test]
    fn registry_rates_are_additive(
        anns in proptest::collection::vec((1.0e3f64..1.0e8, 1u64..10_000), 1..20),
    ) {
        let mut reg = DeadlineRegistry::default();
        let mut ids = Vec::new();
        let mut expect = 0.0;
        for &(cycles, due_ms) in &anns {
            ids.push(reg.announce(cycles, SimTime::ZERO, SimTime::from_millis(due_ms)));
            expect += cycles / (due_ms as f64 * 1_000.0) * 1_000.0;
        }
        let got = reg.required_khz(SimTime::ZERO);
        prop_assert!((got - expect).abs() < 1e-6 * expect.max(1.0), "{got} vs {expect}");
        // Complete them all: requirement returns to zero.
        for id in ids {
            reg.complete(id);
        }
        prop_assert_eq!(reg.required_khz(SimTime::ZERO), 0.0);
    }

    /// The governor's step selection is monotone in the announced rate.
    #[test]
    fn governor_step_monotone_in_rate(c1 in 1.0e5f64..3.0e6, c2 in 1.0e5f64..3.0e6) {
        prop_assume!(c1 < c2);
        let step_for = |cycles: f64| {
            let reg = DeadlineRegistry::shared();
            reg.lock()
                .unwrap()
                .announce(cycles, SimTime::ZERO, SimTime::from_millis(10));
            let mut gov = DeadlineGovernor::new(reg, itsy_hw::ClockTable::sa1100());
            gov.on_interval(SimTime::ZERO, 0.5, 0).step.unwrap_or(0)
        };
        prop_assert!(step_for(c1) <= step_for(c2));
    }

    /// A periodic compute task conserves time and reports one deadline
    /// per period, for arbitrary period/demand combinations.
    #[test]
    fn periodic_tasks_account_cleanly(
        period_ms in 20u64..200,
        work_ms in 1u64..19,
        step in 0usize..11,
    ) {
        let mut kernel = Kernel::new(
            Machine::itsy(step, DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_secs(4),
                record_power: false,
                log_sched: false,
                ..KernelConfig::default()
            },
        );
        let work = Work::cycles(206_400.0 * work_ms as f64);
        let period = SimDuration::from_millis(period_ms);
        let mut k = 0u64;
        let mut pending = false;
        kernel.spawn(Box::new(FnBehavior::new("periodic", move |ctx| {
            let due = SimTime::ZERO + SimDuration::from_micros((k + 1) * period.as_micros());
            if pending {
                ctx.report_deadline("burst", due);
                pending = false;
                k += 1;
                let start = due;
                if ctx.now < start {
                    return TaskAction::SleepUntil(start);
                }
            }
            pending = true;
            TaskAction::Compute(work)
        })));
        let r = kernel.run();
        prop_assert_eq!(r.time_accounted(), SimDuration::from_secs(4));
        prop_assert!(!r.deadlines.is_empty());
        // Deadline count can't exceed the number of periods.
        prop_assert!(r.deadlines.len() as u64 <= 4_000 / period_ms + 1);
        // Busy time matches demand when the task keeps up.
        if r.deadlines.misses(SimDuration::from_millis(50)) == 0 && step == 10 {
            let expect = r.deadlines.len() as f64 * work_ms as f64 / 1_000.0;
            let busy = r.busy.as_secs_f64();
            prop_assert!((busy - expect).abs() < 0.2 * expect + 0.05, "{busy} vs {expect}");
        }
    }

    /// Any fixed-step "policy" that only re-requests the current step
    /// never causes a transition.
    #[test]
    fn noop_policies_never_switch(step in 0usize..11) {
        struct Hold(usize);
        impl ClockPolicy for Hold {
            fn on_interval(
                &mut self,
                _: SimTime,
                _: f64,
                cur: usize,
            ) -> policies::PolicyRequest {
                policies::PolicyRequest {
                    step: (cur != self.0).then_some(self.0),
                    voltage: None,
                }
            }
            fn name(&self) -> String {
                "hold".into()
            }
        }
        let mut kernel = Kernel::new(
            Machine::itsy(step, DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_secs(1),
                record_power: false,
                log_sched: false,
                ..KernelConfig::default()
            },
        );
        kernel.spawn(Box::new(FnBehavior::new("busy", |_ctx| {
            TaskAction::Compute(Work::cycles(1.0e9))
        })));
        kernel.install_policy(Box::new(Hold(step)));
        let r = kernel.run();
        prop_assert_eq!(r.clock_switches, 0);
        prop_assert_eq!(r.stalled, SimDuration::ZERO);
    }
}
