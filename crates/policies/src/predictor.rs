//! Utilization predictors: PAST, AVG_N and a sliding-window average.
//!
//! All predictors consume the utilization `U_{t-1}` of the interval that
//! just finished and produce a "weighted utilization" `W_t` used as the
//! prediction for the coming interval.
//!
//! - **PAST** (Weiser et al.): the coming interval will be exactly as
//!   busy as the last one — `W_t = U_{t-1}`. Equivalent to `AVG_0`.
//! - **AVG_N** (Govil et al., Pering et al.): an exponential moving
//!   average with decay `N`:
//!   `W_t = (N · W_{t-1} + U_{t-1}) / (N + 1)`.
//! - **Sliding-window**: the plain mean of the last `n` utilizations —
//!   the paper simulated this too and found it "no better than the
//!   weighted averaging policy".

/// A per-interval utilization predictor.
pub trait Predictor {
    /// Consumes the utilization of the interval that just ended
    /// (`0.0..=1.0`) and returns the prediction for the next interval.
    fn observe(&mut self, utilization: f64) -> f64;

    /// The current prediction without new input.
    fn current(&self) -> f64;

    /// Resets internal history to the just-booted state.
    fn reset(&mut self);

    /// True when [`Predictor::observe`] is idempotent: feeding the same
    /// utilization twice leaves the predictor in the same state and
    /// returns the same prediction as feeding it once. PAST is the
    /// canonical example (`W_t = U_{t-1}` — no history survives one
    /// observation). The batched kernel uses this to elide repeated
    /// identical policy calls inside a uniform span; predictors that
    /// accumulate history (AVG_N, windows) must leave this `false`.
    fn is_memoryless(&self) -> bool {
        false
    }

    /// Human-readable name for reports (e.g. `AVG_9`).
    fn name(&self) -> String;
}

/// The PAST predictor: next interval == previous interval.
#[derive(Debug, Clone, Default)]
pub struct Past {
    last: f64,
}

impl Past {
    /// Creates a PAST predictor (initial prediction 0: system assumed
    /// idle at boot).
    pub fn new() -> Self {
        Past::default()
    }
}

impl Predictor for Past {
    fn observe(&mut self, utilization: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&utilization));
        self.last = utilization;
        self.last
    }

    fn current(&self) -> f64 {
        self.last
    }

    fn reset(&mut self) {
        self.last = 0.0;
    }

    fn is_memoryless(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        "PAST".to_string()
    }
}

/// The AVG_N exponentially-weighted predictor.
///
/// `N` controls the decay: larger `N` smooths more but lags more — the
/// paper's Table 1 shows AVG_9 taking 12 quanta (120 ms) to cross a 70 %
/// threshold from idle.
#[derive(Debug, Clone)]
pub struct AvgN {
    n: u32,
    weighted: f64,
}

impl AvgN {
    /// Creates an AVG_N predictor with decay `n`. `AvgN::new(0)` is
    /// exactly PAST.
    pub fn new(n: u32) -> Self {
        AvgN { n, weighted: 0.0 }
    }

    /// The decay parameter.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The impulse-response weight of the sample `k` intervals ago:
    /// `w_k = (1/(N+1)) · (N/(N+1))^k`. Used by the §5.3 signal
    /// analysis; the weights form the decaying exponential whose Fourier
    /// transform the paper studies.
    pub fn kernel_weight(&self, k: u32) -> f64 {
        let n = self.n as f64;
        (1.0 / (n + 1.0)) * (n / (n + 1.0)).powi(k as i32)
    }
}

impl Predictor for AvgN {
    fn observe(&mut self, utilization: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&utilization));
        let n = self.n as f64;
        self.weighted = (n * self.weighted + utilization) / (n + 1.0);
        self.weighted
    }

    fn current(&self) -> f64 {
        self.weighted
    }

    fn reset(&mut self) {
        self.weighted = 0.0;
    }

    fn name(&self) -> String {
        format!("AVG_{}", self.n)
    }
}

/// Plain mean of the last `n` interval utilizations.
#[derive(Debug, Clone)]
pub struct SlidingWindowAvg {
    window: std::collections::VecDeque<f64>,
    n: usize,
}

impl SlidingWindowAvg {
    /// Creates a window of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "window must hold at least one interval");
        SlidingWindowAvg {
            window: std::collections::VecDeque::with_capacity(n),
            n,
        }
    }
}

impl Predictor for SlidingWindowAvg {
    fn observe(&mut self, utilization: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&utilization));
        if self.window.len() == self.n {
            self.window.pop_front();
        }
        self.window.push_back(utilization);
        self.current()
    }

    fn current(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }

    fn reset(&mut self) {
        self.window.clear();
    }

    fn name(&self) -> String {
        format!("WIN_{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn past_echoes_last_interval() {
        let mut p = Past::new();
        assert_eq!(p.current(), 0.0);
        assert_eq!(p.observe(0.8), 0.8);
        assert_eq!(p.observe(0.1), 0.1);
        p.reset();
        assert_eq!(p.current(), 0.0);
    }

    #[test]
    fn avg0_is_past() {
        let mut avg0 = AvgN::new(0);
        let mut past = Past::new();
        for &u in &[0.3, 0.9, 0.0, 1.0, 0.5] {
            assert!((avg0.observe(u) - past.observe(u)).abs() < 1e-12);
        }
    }

    #[test]
    fn avg9_reproduces_table1_prefix() {
        // Paper Table 1 (x 10^4, floor), active quanta. The table's
        // 80 ms entry "5965" is a transcription typo for 5695 (it is not
        // reachable from 5217 nor does it lead to 6125; 5695 does both).
        let mut p = AvgN::new(9);
        let expected = [
            1000, 1900, 2710, 3439, 4095, 4685, 5217, 5695, 6125, 6513, 6861, 7175, 7458, 7712,
            7941,
        ];
        for &e in &expected {
            let w = p.observe(1.0);
            assert_eq!((w * 10_000.0).floor() as u64, e);
        }
        // Then idle quanta decay exactly as the table's tail.
        let tail = [7146, 6432, 5789, 5210, 4689];
        for &e in &tail {
            let w = p.observe(0.0);
            assert_eq!((w * 10_000.0).floor() as u64, e);
        }
    }

    #[test]
    fn avg9_crosses_70_percent_only_after_12_quanta() {
        // "Starting from an idle state, the clock will not scale to
        // 206MHz for 120 ms (12 quanta)" with a 70% upper bound.
        let mut p = AvgN::new(9);
        let mut crossings = 0;
        for i in 1..=15 {
            let w = p.observe(1.0);
            if w > 0.70 && crossings == 0 {
                crossings = i;
            }
        }
        assert_eq!(crossings, 12);
    }

    #[test]
    fn avg_settles_toward_steady_input() {
        let mut p = AvgN::new(5);
        for _ in 0..200 {
            p.observe(0.6);
        }
        assert!((p.current() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn table1_downward_bias_asymmetry() {
        // "If the weighted average is 70%, a fully active quantum will
        // only increase the average to 73% while a fully idle quantum
        // will reduce it to 63%".
        let mut up = AvgN::new(9);
        up.weighted_set_for_test(0.70);
        let w_up = up.observe(1.0);
        assert!((w_up - 0.73).abs() < 1e-9);
        let mut down = AvgN::new(9);
        down.weighted_set_for_test(0.70);
        let w_down = down.observe(0.0);
        assert!((w_down - 0.63).abs() < 1e-9);
    }

    #[test]
    fn kernel_weights_sum_to_one() {
        let p = AvgN::new(9);
        let total: f64 = (0..2_000).map(|k| p.kernel_weight(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // And decay monotonically.
        assert!(p.kernel_weight(0) > p.kernel_weight(1));
    }

    #[test]
    fn kernel_weight_matches_recurrence() {
        // Feeding a unit impulse through the recurrence must reproduce
        // the closed-form kernel.
        let mut p = AvgN::new(4);
        let w0 = p.observe(1.0);
        assert!((w0 - p.kernel_weight(0)).abs() < 1e-12);
        let w1 = p.observe(0.0);
        assert!((w1 - p.kernel_weight(1)).abs() < 1e-12);
        let w2 = p.observe(0.0);
        assert!((w2 - p.kernel_weight(2)).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_mean() {
        let mut p = SlidingWindowAvg::new(4);
        assert_eq!(p.observe(1.0), 1.0);
        assert_eq!(p.observe(0.0), 0.5);
        p.observe(1.0);
        p.observe(1.0);
        // Window now [1,0,1,1] -> 0.75.
        assert!((p.current() - 0.75).abs() < 1e-12);
        // Pushing another sample evicts the oldest.
        p.observe(0.0); // [0,1,1,0] -> 0.5
        assert!((p.current() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn names() {
        assert_eq!(Past::new().name(), "PAST");
        assert_eq!(AvgN::new(9).name(), "AVG_9");
        assert_eq!(SlidingWindowAvg::new(4).name(), "WIN_4");
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn zero_window_rejected() {
        let _ = SlidingWindowAvg::new(0);
    }

    impl AvgN {
        fn weighted_set_for_test(&mut self, w: f64) {
            self.weighted = w;
        }
    }
}
