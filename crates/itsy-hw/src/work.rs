//! The unit of computational demand: CPU cycles plus memory traffic.
//!
//! A [`Work`] quantum describes a burst of computation as a mix of pure
//! ALU cycles, individual word reads and cache-line fills. Its execution
//! *time* depends on the clock step, because the memory components cost
//! more core cycles at higher frequencies ([`MemoryTiming`]); this is the
//! mechanism behind the paper's Figure 9 ("processor utilization does not
//! always vary linearly with clock frequency").
//!
//! Components are `f64` so that work can be split at arbitrary event
//! boundaries (a policy may change the clock mid-burst) without
//! accumulating rounding debt.

use serde::{Deserialize, Serialize};
use sim_core::{Frequency, SimDuration};

use crate::clock::StepIndex;
use crate::memory::MemoryTiming;

/// A quantum of computational demand.
///
/// # Examples
///
/// Memory-bound work speeds up sub-linearly with the clock (Table 3):
///
/// ```
/// use itsy_hw::{ClockTable, MemoryTiming, Work};
///
/// let table = ClockTable::sa1100();
/// let mem = MemoryTiming::sa1100_edo();
/// let w = Work::new(1.0e6, 0.0, 50_000.0); // CPU cycles + cache-line fills
/// let slow = w.time_at(0, table.freq(0), &mem);
/// let fast = w.time_at(10, table.freq(10), &mem);
/// let speedup = slow.as_micros() as f64 / fast.as_micros() as f64;
/// assert!(speedup < 3.5, "3.5x clock gives only {speedup:.2}x");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Work {
    /// Pure CPU cycles (frequency-independent cycle count).
    pub cpu_cycles: f64,
    /// Individual word reads that miss the cache.
    pub mem_refs: f64,
    /// Full cache-line fills.
    pub cache_lines: f64,
}

/// Result of running a [`Work`] quantum for a bounded duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkProgress {
    /// The work finished, taking the contained time (≤ the budget).
    Completed(SimDuration),
    /// The budget elapsed; the contained work remains.
    Remaining(Work),
}

impl Work {
    /// No work at all.
    pub const ZERO: Work = Work {
        cpu_cycles: 0.0,
        mem_refs: 0.0,
        cache_lines: 0.0,
    };

    /// Pure-CPU work of the given cycle count.
    pub fn cycles(cpu_cycles: f64) -> Self {
        Work {
            cpu_cycles,
            ..Work::ZERO
        }
    }

    /// Work with both CPU cycles and memory traffic.
    pub fn new(cpu_cycles: f64, mem_refs: f64, cache_lines: f64) -> Self {
        debug_assert!(cpu_cycles >= 0.0 && mem_refs >= 0.0 && cache_lines >= 0.0);
        Work {
            cpu_cycles,
            mem_refs,
            cache_lines,
        }
    }

    /// True if no demand remains (under a small epsilon to absorb f64
    /// splitting residue).
    pub fn is_zero(&self) -> bool {
        self.total_raw() < 1e-6
    }

    fn total_raw(&self) -> f64 {
        self.cpu_cycles + self.mem_refs + self.cache_lines
    }

    /// Total core cycles this work occupies at clock step `step`.
    pub fn total_cycles(&self, step: StepIndex, mem: &MemoryTiming) -> f64 {
        self.cpu_cycles
            + self.mem_refs * mem.word_cycles(step) as f64
            + self.cache_lines * mem.line_cycles(step) as f64
    }

    /// Wall-clock time this work takes at step `step` running at `f`,
    /// rounded up to the next microsecond.
    pub fn time_at(&self, step: StepIndex, f: Frequency, mem: &MemoryTiming) -> SimDuration {
        let cycles = self.total_cycles(step, mem);
        if cycles <= 0.0 {
            return SimDuration::ZERO;
        }
        let us = cycles * 1_000.0 / f.as_khz() as f64;
        SimDuration::from_micros(us.ceil() as u64)
    }

    /// Scales every component by `q`.
    pub fn scaled(&self, q: f64) -> Work {
        Work {
            cpu_cycles: self.cpu_cycles * q,
            mem_refs: self.mem_refs * q,
            cache_lines: self.cache_lines * q,
        }
    }

    /// Adds two quanta component-wise.
    pub fn plus(&self, other: Work) -> Work {
        Work {
            cpu_cycles: self.cpu_cycles + other.cpu_cycles,
            mem_refs: self.mem_refs + other.mem_refs,
            cache_lines: self.cache_lines + other.cache_lines,
        }
    }

    /// Runs this work at step `step`/frequency `f` for at most `budget`.
    ///
    /// The work is treated as a homogeneous mix: a fraction of the budget
    /// consumes the same fraction of every component. Returns either the
    /// (exact, rounded-up-to-µs) completion time or the unconsumed
    /// remainder.
    pub fn execute_for(
        &self,
        budget: SimDuration,
        step: StepIndex,
        f: Frequency,
        mem: &MemoryTiming,
    ) -> WorkProgress {
        let needed = self.time_at(step, f, mem);
        if needed <= budget {
            return WorkProgress::Completed(needed);
        }
        if budget.is_zero() {
            return WorkProgress::Remaining(*self);
        }
        let q_done = budget.as_micros() as f64 / needed.as_micros() as f64;
        WorkProgress::Remaining(self.scaled(1.0 - q_done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockTable;

    fn setup() -> (ClockTable, MemoryTiming) {
        (ClockTable::sa1100(), MemoryTiming::sa1100_edo())
    }

    #[test]
    fn pure_cpu_time_scales_inversely_with_frequency() {
        let (t, m) = setup();
        let w = Work::cycles(59_000_000.0); // 1 s at 59 MHz.
        assert_eq!(w.time_at(0, t.freq(0), &m).as_micros(), 1_000_000);
        // At 118 MHz (exactly 2x), half the time.
        assert_eq!(w.time_at(4, t.freq(4), &m).as_micros(), 500_000);
    }

    #[test]
    fn memory_heavy_work_scales_sublinearly() {
        let (t, m) = setup();
        // All cache-line fills: 39 cycles each at 59 MHz, 69 at 206.4.
        let w = Work::new(0.0, 0.0, 1_000_000.0);
        let slow = w.time_at(0, t.freq(0), &m).as_micros() as f64;
        let fast = w.time_at(10, t.freq(10), &m).as_micros() as f64;
        let speedup = slow / fast;
        let freq_ratio = 206.4 / 59.0; // 3.5x
        assert!(speedup < freq_ratio * 0.6, "speedup = {speedup}");
        // But still faster in absolute terms.
        assert!(fast < slow);
    }

    #[test]
    fn total_cycles_uses_table3() {
        let (_, m) = setup();
        let w = Work::new(100.0, 10.0, 1.0);
        // Step 0: 100 + 10*11 + 1*39 = 249.
        assert!((w.total_cycles(0, &m) - 249.0).abs() < 1e-9);
        // Step 10: 100 + 10*20 + 1*69 = 369.
        assert!((w.total_cycles(10, &m) - 369.0).abs() < 1e-9);
    }

    #[test]
    fn execute_within_budget_completes() {
        let (t, m) = setup();
        let w = Work::cycles(59_000.0); // 1 ms at 59 MHz.
        match w.execute_for(SimDuration::from_millis(10), 0, t.freq(0), &m) {
            WorkProgress::Completed(d) => assert_eq!(d.as_micros(), 1_000),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn execute_over_budget_conserves_work() {
        let (t, m) = setup();
        let w = Work::new(59_000_000.0, 1_000.0, 500.0); // ~1 s at 59 MHz.
        let budget = SimDuration::from_millis(400);
        match w.execute_for(budget, 0, t.freq(0), &m) {
            WorkProgress::Remaining(rest) => {
                // Remaining fraction should equal 1 - budget/needed.
                let needed = w.time_at(0, t.freq(0), &m).as_micros() as f64;
                let expect_q = 1.0 - 400_000.0 / needed;
                assert!((rest.cpu_cycles / w.cpu_cycles - expect_q).abs() < 1e-9);
                assert!((rest.mem_refs / w.mem_refs - expect_q).abs() < 1e-9);
                // Running the remainder takes needed - budget (±1 us of
                // rounding).
                let rest_t = rest.time_at(0, t.freq(0), &m).as_micros() as i64;
                assert!((rest_t - (needed as i64 - 400_000)).abs() <= 1);
            }
            other => panic!("expected remainder, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_returns_everything() {
        let (t, m) = setup();
        let w = Work::cycles(1000.0);
        match w.execute_for(SimDuration::ZERO, 0, t.freq(0), &m) {
            WorkProgress::Remaining(rest) => assert_eq!(rest, w),
            other => panic!("expected remainder, got {other:?}"),
        }
    }

    #[test]
    fn zero_work_takes_zero_time() {
        let (t, m) = setup();
        assert_eq!(Work::ZERO.time_at(0, t.freq(0), &m), SimDuration::ZERO);
        assert!(Work::ZERO.is_zero());
    }

    #[test]
    fn scaled_and_plus() {
        let w = Work::new(100.0, 20.0, 4.0);
        let half = w.scaled(0.5);
        assert_eq!(half.cpu_cycles, 50.0);
        let sum = half.plus(half);
        assert!((sum.cpu_cycles - w.cpu_cycles).abs() < 1e-12);
        assert!((sum.mem_refs - w.mem_refs).abs() < 1e-12);
    }
}
