//! Deterministic trace export: CSV and Chrome `trace_event` JSON.
//!
//! A scenario produces one [`Trace`] per run; [`merge_traces`] flattens
//! them into a single stream ordered by `(sim_time, run label, per-run
//! sequence)`. Every component of that key is a pure function of the
//! job specs — wall clock, worker count and cache state never enter —
//! which is what makes `repro trace` byte-identical across `--jobs 1`
//! vs `--jobs N` and cold vs warm cache, and lets the chaos suite
//! `diff` exports directly.
//!
//! The Chrome format targets `chrome://tracing` / Perfetto: quantum
//! utilization becomes a counter track (`ph:"C"`) per run, everything
//! else instant events (`ph:"i"`), with a `thread_name` metadata record
//! mapping each run to its own row.

use crate::event::{Event, EventKind, Field, Trace};
use crate::span::Profile;

/// One event of the merged, deterministically ordered stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedEvent<'a> {
    /// Simulated time, µs.
    pub time_us: u64,
    /// Label of the run the event belongs to.
    pub run: &'a str,
    /// Position within its run's trace (tiebreak for equal times).
    pub seq: usize,
    /// The event payload.
    pub kind: &'a EventKind,
}

/// Merges per-run traces into one stream ordered by
/// `(time_us, run, seq)`.
pub fn merge_traces<'a>(runs: &'a [(String, Trace)]) -> Vec<MergedEvent<'a>> {
    let mut merged: Vec<MergedEvent<'a>> = Vec::new();
    for (label, trace) in runs {
        for (seq, Event { time_us, kind }) in trace.events().iter().enumerate() {
            merged.push(MergedEvent {
                time_us: *time_us,
                run: label.as_str(),
                seq,
                kind,
            });
        }
    }
    merged.sort_by(|a, b| {
        (a.time_us, a.run, a.seq)
            .partial_cmp(&(b.time_us, b.run, b.seq))
            .expect("total order")
    });
    merged
}

/// Quotes a CSV field if it contains a comma, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders the merged stream as CSV
/// (`time_us,run,seq,event,detail`).
pub fn export_csv(merged: &[MergedEvent<'_>]) -> String {
    let mut out = String::from("time_us,run,seq,event,detail\n");
    for e in merged {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            e.time_us,
            csv_field(e.run),
            e.seq,
            e.kind.name(),
            csv_field(&e.kind.detail()),
        ));
    }
    out
}

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_value(f: &Field) -> String {
    match f {
        Field::U64(v) => v.to_string(),
        Field::F64(v) => format!("{v:.6}"),
        Field::Text(s) => format!("\"{}\"", json_escape(s)),
    }
}

fn json_args(kind: &EventKind) -> String {
    let fields = kind.fields();
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", k, json_value(v)));
    }
    out.push('}');
    out
}

fn push(out: &mut String, first: &mut bool, s: String) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(&s);
    out.push('\n');
}

/// Renders the merged stream as Chrome `trace_event` JSON.
///
/// Each run gets its own `tid` (runs sorted by label, so the mapping is
/// deterministic); quantum boundaries become per-run counter tracks and
/// every other event an instant.
pub fn export_chrome_json(merged: &[MergedEvent<'_>]) -> String {
    export_chrome_json_with_spans(merged, &Profile::default())
}

/// [`export_chrome_json`] plus a wall-clock span track.
///
/// Sim-time events stay on `pid 0` exactly as before — an empty
/// `profile` yields byte-identical output to [`export_chrome_json`],
/// which is what keeps the default export deterministic. A non-empty
/// profile (from `repro --profile`) adds `pid 1`: one row per recorded
/// thread, spans as `ph:"X"` complete events — the flame chart of the
/// real batch next to the simulated timeline.
pub fn export_chrome_json_with_spans(merged: &[MergedEvent<'_>], profile: &Profile) -> String {
    let mut labels: Vec<&str> = merged.iter().map(|e| e.run).collect();
    labels.sort_unstable();
    labels.dedup();
    let tid_of = |run: &str| labels.iter().position(|&l| l == run).expect("known run");

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (tid, label) in labels.iter().enumerate() {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ),
        );
    }
    for e in merged {
        let tid = tid_of(e.run);
        let record = match e.kind {
            EventKind::QuantumBoundary { utilization } => format!(
                "{{\"name\":\"utilization\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"utilization\":{:.6}}}}}",
                e.time_us, utilization
            ),
            kind => format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\
                 \"tid\":{tid},\"args\":{}}}",
                kind.name(),
                e.time_us,
                json_args(kind)
            ),
        };
        push(&mut out, &mut first, record);
    }
    push_span_track(&mut out, &mut first, profile);
    out.push_str("]}\n");
    out
}

/// Renders a profile alone as Chrome `trace_event` JSON — the
/// standalone `profile.trace.json` the engine writes per batch.
pub fn export_spans_chrome_json(profile: &Profile) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    push_span_track(&mut out, &mut first, profile);
    out.push_str("]}\n");
    out
}

/// Appends the wall-clock span track (`pid 1`) for a batch profile:
/// per-thread `thread_name` metadata, then every span as a `ph:"X"`
/// complete event with µs timestamps relative to the profiling epoch.
fn push_span_track(out: &mut String, first: &mut bool, profile: &Profile) {
    if profile.is_empty() {
        return;
    }
    push(
        out,
        first,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
         \"args\":{\"name\":\"wall-clock (profiler)\"}}"
            .to_string(),
    );
    for (tid, (label, _)) in profile.threads.iter().enumerate() {
        push(
            out,
            first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ),
        );
    }
    for (tid, (_, spans)) in profile.threads.iter().enumerate() {
        for rec in &spans.records {
            let name = spans.paths[rec.path as usize].name;
            push(
                out,
                first,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
                     \"pid\":1,\"tid\":{tid}}}",
                    json_escape(name),
                    rec.start_ns / 1_000,
                    rec.start_ns % 1_000,
                    rec.dur_ns / 1_000,
                    rec.dur_ns % 1_000,
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(points: &[(u64, f64)]) -> Trace {
        let mut t = Trace::on();
        for &(at, u) in points {
            t.emit(at, EventKind::QuantumBoundary { utilization: u });
        }
        t
    }

    #[test]
    fn merge_orders_by_time_then_run_then_seq() {
        let runs = vec![
            ("b".to_string(), trace(&[(10, 0.1), (20, 0.2)])),
            ("a".to_string(), trace(&[(10, 0.3), (10, 0.4)])),
        ];
        let merged = merge_traces(&runs);
        let keys: Vec<(u64, &str, usize)> =
            merged.iter().map(|e| (e.time_us, e.run, e.seq)).collect();
        assert_eq!(
            keys,
            vec![(10, "a", 0), (10, "a", 1), (10, "b", 0), (20, "b", 1)]
        );
    }

    #[test]
    fn merge_is_input_order_independent() {
        let ab = vec![
            ("a".to_string(), trace(&[(10, 0.1)])),
            ("b".to_string(), trace(&[(5, 0.2)])),
        ];
        let ba = vec![ab[1].clone(), ab[0].clone()];
        assert_eq!(
            export_csv(&merge_traces(&ab)),
            export_csv(&merge_traces(&ba))
        );
        assert_eq!(
            export_chrome_json(&merge_traces(&ab)),
            export_chrome_json(&merge_traces(&ba))
        );
    }

    #[test]
    fn csv_quotes_commas_in_run_labels() {
        let runs = vec![("PAST, peg - peg".to_string(), trace(&[(10, 1.0)]))];
        let csv = export_csv(&merge_traces(&runs));
        assert!(csv.contains("10,\"PAST, peg - peg\",0,quantum,utilization=1.000000"));
    }

    #[test]
    fn csv_header_and_rows() {
        let runs = vec![("r".to_string(), trace(&[(0, 0.5)]))];
        let csv = export_csv(&merge_traces(&runs));
        assert_eq!(
            csv,
            "time_us,run,seq,event,detail\n0,r,0,quantum,utilization=0.500000\n"
        );
    }

    #[test]
    fn chrome_json_has_thread_names_and_counters() {
        let mut t = Trace::on();
        t.emit(10_000, EventKind::QuantumBoundary { utilization: 0.75 });
        t.emit(
            10_000,
            EventKind::ClockTransition {
                from_khz: 59_000,
                to_khz: 206_400,
                stall_us: 200,
            },
        );
        let runs = vec![("mpeg".to_string(), t)];
        let json = export_chrome_json(&merge_traces(&runs));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"utilization\":0.750000"));
        assert!(json.contains("\"to_khz\":206400"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    fn profile_of_one_span() -> Profile {
        use crate::span::{PathEntry, SpanRec, ThreadSpans};
        Profile {
            threads: vec![(
                "worker-0".to_string(),
                ThreadSpans {
                    paths: vec![
                        PathEntry {
                            parent: None,
                            name: "job",
                        },
                        PathEntry {
                            parent: Some(0),
                            name: "simulate",
                        },
                    ],
                    records: vec![SpanRec {
                        path: 1,
                        start_ns: 1_234_567,
                        dur_ns: 89_001,
                    }],
                    dropped: 0,
                },
            )],
        }
    }

    #[test]
    fn empty_profile_is_byte_identical_to_plain_export() {
        let runs = vec![("mpeg".to_string(), trace(&[(10, 0.5), (20, 0.75)]))];
        let merged = merge_traces(&runs);
        assert_eq!(
            export_chrome_json(&merged),
            export_chrome_json_with_spans(&merged, &Profile::default()),
            "an empty span track must not perturb the deterministic export"
        );
    }

    #[test]
    fn span_track_lands_on_pid_1_as_complete_events() {
        let runs = vec![("mpeg".to_string(), trace(&[(10, 0.5)]))];
        let merged = merge_traces(&runs);
        let json = export_chrome_json_with_spans(&merged, &profile_of_one_span());
        assert!(json.contains("\"name\":\"wall-clock (profiler)\""));
        assert!(json.contains(
            "{\"name\":\"simulate\",\"ph\":\"X\",\"ts\":1234.567,\"dur\":89.001,\"pid\":1,\"tid\":0}"
        ));
        assert!(
            json.contains("\"ph\":\"C\""),
            "sim-time track still present"
        );
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn standalone_span_export_is_valid_and_named() {
        let json = export_spans_chrome_json(&profile_of_one_span());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker-0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.trim_end().ends_with("]}"));
        // An empty profile renders an empty but well-formed document.
        assert_eq!(
            export_spans_chrome_json(&Profile::default()),
            "{\"traceEvents\":[\n]}\n"
        );
    }
}
