//! The paper's policies vs their Linux cpufreq descendants.
//!
//! The calibration note on this reproduction observes that "Linux
//! cpufreq governors (ondemand, schedutil) implement similar policies";
//! this experiment makes the lineage concrete by running `ondemand` and
//! `conservative` (see [`policies::cpufreq`]) on the paper's workloads
//! next to PAST-peg-peg and the §6 deadline governor's territory.
//!
//! Expected shape: ondemand's 80 % threshold sits *below* MPEG's
//! utilization at most speeds, so it behaves like a less extreme
//! peg-peg — its proportional step still flaps on the frame structure;
//! conservative's slow ramp risks the same deadline lag as one-step
//! AVG_N.

use core::fmt;

use itsy_hw::ClockTable;
use policies::cpufreq::{Conservative, Ondemand, Schedutil};
use policies::{ClockPolicy, IntervalScheduler};
use workloads::Benchmark;

use crate::report;
use crate::runner::{run_benchmark, RunSpec, TOLERANCE};

/// One governor × workload cell.
#[derive(Debug, Clone)]
pub struct ModernCell {
    /// Governor label.
    pub governor: String,
    /// Workload.
    pub benchmark: Benchmark,
    /// Energy, joules.
    pub energy_j: f64,
    /// Saving vs constant top.
    pub saving: f64,
    /// Deadline misses.
    pub misses: usize,
    /// Clock switches.
    pub switches: u64,
    /// Mean clock, MHz.
    pub mean_mhz: f64,
}

/// The comparison.
pub struct Modern {
    /// All cells.
    pub cells: Vec<ModernCell>,
    /// Seconds per run.
    pub secs: u64,
}

/// A named governor constructor.
type GovernorFactory = (&'static str, fn() -> Box<dyn ClockPolicy>);

fn governors() -> Vec<GovernorFactory> {
    vec![
        ("PAST peg-peg 98/93 (paper)", || {
            Box::new(IntervalScheduler::best_from_paper(ClockTable::sa1100()))
        }),
        ("ondemand (Linux 2.6.9)", || {
            Box::new(Ondemand::new(ClockTable::sa1100()))
        }),
        ("conservative (Linux)", || {
            Box::new(Conservative::new(ClockTable::sa1100()))
        }),
        ("schedutil (Linux 4.7)", || {
            Box::new(Schedutil::new(ClockTable::sa1100()))
        }),
    ]
}

/// Runs the grid on MPEG and Web.
pub fn run(seed: u64) -> Modern {
    let secs = 30u64;
    let mut cells = Vec::new();
    for b in [Benchmark::Mpeg, Benchmark::Web] {
        let baseline = run_benchmark(&RunSpec::new(b, 10).for_secs(secs).with_seed(seed), None)
            .energy
            .as_joules();
        for (name, make) in governors() {
            let r = run_benchmark(
                &RunSpec::new(b, 10).for_secs(secs).with_seed(seed),
                Some(make()),
            );
            cells.push(ModernCell {
                governor: name.to_string(),
                benchmark: b,
                energy_j: r.energy.as_joules(),
                saving: 1.0 - r.energy.as_joules() / baseline,
                misses: r.deadlines.misses(TOLERANCE),
                switches: r.clock_switches,
                mean_mhz: r.freq_mhz.mean().unwrap_or(0.0),
            });
        }
    }
    Modern { cells, secs }
}

impl Modern {
    /// Cell lookup.
    pub fn cell(&self, governor_prefix: &str, b: Benchmark) -> &ModernCell {
        self.cells
            .iter()
            .find(|c| c.benchmark == b && c.governor.starts_with(governor_prefix))
            .expect("cell present")
    }

    /// Writes the grid as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &[
                "governor",
                "benchmark",
                "energy_j",
                "saving",
                "misses",
                "switches",
                "mean_mhz",
            ],
            &self
                .cells
                .iter()
                .map(|c| {
                    vec![
                        c.governor.replace(',', ";"),
                        c.benchmark.name().to_string(),
                        format!("{:.2}", c.energy_j),
                        format!("{:.4}", c.saving),
                        c.misses.to_string(),
                        c.switches.to_string(),
                        format!("{:.1}", c.mean_mhz),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("modern", "cpufreq_governors", &doc).map(|_| ())
    }
}

impl fmt::Display for Modern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "The paper's policy vs its Linux cpufreq descendants ({}s runs)",
            self.secs
        )?;
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.benchmark.name().to_string(),
                    c.governor.clone(),
                    format!("{:.1} J ({:+.1}%)", c.energy_j, -c.saving * 100.0),
                    c.misses.to_string(),
                    c.switches.to_string(),
                    format!("{:.1} MHz", c.mean_mhz),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &[
                "workload",
                "governor",
                "energy",
                "misses",
                "switches",
                "mean clock",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> &'static Modern {
        use std::sync::OnceLock;
        static CELL: OnceLock<Modern> = OnceLock::new();
        CELL.get_or_init(|| run(1))
    }

    #[test]
    fn grid_is_complete() {
        assert_eq!(exp().cells.len(), 8);
    }

    #[test]
    fn schedutil_runs_clean_on_both() {
        let e = exp();
        for b in [Benchmark::Mpeg, Benchmark::Web] {
            let c = e.cell("schedutil", b);
            assert_eq!(c.misses, 0, "{}: schedutil missed", b.name());
            assert!(c.saving > 0.0);
        }
    }

    #[test]
    fn ondemand_saves_energy_on_both_workloads() {
        let e = exp();
        for b in [Benchmark::Mpeg, Benchmark::Web] {
            let c = e.cell("ondemand", b);
            assert!(c.saving > 0.0, "{}: {:.1}%", b.name(), c.saving * 100.0);
        }
    }

    #[test]
    fn the_papers_findings_carry_over() {
        // Threshold sensitivity did not go away in 2004: on MPEG the
        // production governors still either flap or leave most of the
        // saving behind — nobody reaches the ~10% of the constant
        // oracle without misses.
        let e = exp();
        for c in e.cells.iter().filter(|c| c.benchmark == Benchmark::Mpeg) {
            if c.misses == 0 {
                assert!(
                    c.saving < 0.095,
                    "{} saved {:.1}% with no misses",
                    c.governor,
                    c.saving * 100.0
                );
            }
        }
    }

    #[test]
    fn ondemand_still_flaps_on_periodic_load() {
        let e = exp();
        let c = e.cell("ondemand", Benchmark::Mpeg);
        assert!(
            c.switches > 50,
            "ondemand switched only {} times",
            c.switches
        );
    }

    #[test]
    fn conservative_is_gentler_than_ondemand_on_web() {
        // The design goal from the kernel docs: fewer, smaller jumps.
        let e = exp();
        let od = e.cell("ondemand", Benchmark::Web);
        let cons = e.cell("conservative", Benchmark::Web);
        assert!(
            cons.mean_mhz <= od.mean_mhz + 30.0,
            "conservative {} vs ondemand {}",
            cons.mean_mhz,
            od.mean_mhz
        );
    }
}
