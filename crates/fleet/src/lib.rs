//! Streaming population simulation: millions of simulated Itsys at
//! bounded memory.
//!
//! The paper evaluates policies on *one* device; this crate asks the
//! fleet question — what does a policy do across a whole population of
//! devices whose hardware, charge state and workloads vary? It builds
//! on three pieces:
//!
//! - [`PopulationConfig`]/[`DevicePopulation`] ([`population`]) — a
//!   seeded generator that describes each device (hardware spread over
//!   the stock Itsy, a workload drawn from a mix, per-device trace
//!   jitter) as a pure function of `(seed, device_id)`, exposed as a
//!   lazy [`engine::JobSpec`] stream that is never materialized;
//! - [`engine::Engine::run_stream`] — bounded-channel streaming
//!   execution with per-worker fold, so peak RSS is flat in device
//!   count;
//! - [`sim_core::FleetSummary`] — mergeable log-histogram sketches
//!   whose bit-for-bit associative merge makes the population summary
//!   byte-identical at any `--jobs`, verified by diffing
//!   [`FleetSummary::encode`](sim_core::FleetSummary::encode) output.
//!
//! [`run`](crate::run::run) ties them together; the `repro fleet`
//! subcommand is a thin CLI over it.

pub mod population;
pub mod run;

pub use population::{DevicePopulation, PopulationConfig};
pub use run::{
    digest, fold_result, run, FleetAccum, FleetOutcome, FleetWindow, OSCILLATION_SWITCHES_PER_SEC,
    TIMELINE_WINDOWS,
};
