//! Execution-engine benchmarks: what the worker pool buys over
//! sequential execution on a reduced sweep grid, and what a warm cache
//! buys over both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use engine::{Engine, EngineConfig};
use experiments::sweep::{self, SweepConfig};
use policies::{Hysteresis, SpeedChange};
use workloads::Benchmark;

/// A reduced grid: 2 baselines + 2x2x2x2x1 = 18 two-second cells.
fn reduced_grid() -> SweepConfig {
    SweepConfig {
        benchmarks: vec![Benchmark::Mpeg, Benchmark::Web],
        ns: vec![0, 3],
        rules: vec![SpeedChange::One, SpeedChange::Peg],
        thresholds: vec![Hysteresis::BEST],
        secs: 2,
    }
}

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let config = reduced_grid();
    let cells = sweep::specs(&config, 1).len() as u64;
    let mut g = c.benchmark_group("engine_sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for jobs in [1usize, parallelism] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let eng = Engine::new(EngineConfig {
                jobs,
                ..EngineConfig::hermetic()
            });
            b.iter(|| black_box(sweep::run_with(&eng, &config, 1)))
        });
    }
    g.finish();
}

fn bench_warm_cache(c: &mut Criterion) {
    let config = reduced_grid();
    let root = std::env::temp_dir().join(format!("engine-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let eng = Engine::new(EngineConfig {
        jobs: 0,
        use_cache: true,
        state_root: Some(root.clone()),
        ..EngineConfig::hermetic()
    });
    // Prime the cache once; every timed iteration is then a pure
    // cache read of the full grid.
    let (_, stats, _) = sweep::run_with(&eng, &config, 1);
    assert_eq!(stats.cache_hits, 0);

    let cells = sweep::specs(&config, 1).len() as u64;
    let mut g = c.benchmark_group("engine_sweep");
    g.throughput(Throughput::Elements(cells));
    g.bench_function("warm_cache", |b| {
        b.iter(|| {
            let (sweep, stats, _) = sweep::run_with(&eng, &config, 1);
            assert_eq!(stats.executed, 0, "warm iterations must not simulate");
            black_box(sweep)
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(
    engine_benches,
    bench_sequential_vs_parallel,
    bench_warm_cache
);
criterion_main!(engine_benches);
