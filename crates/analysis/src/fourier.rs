//! Fourier analysis: the Figure 6 spectrum and general-purpose DFT/FFT.

use core::f64::consts::PI;
use core::ops::{Add, Mul, Sub};

/// A complex number (custom, to keep the workspace dependency-light).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Magnitude of the continuous Fourier transform of the decaying
/// exponential `x(t) = e^{−αt}·u(t)`:
/// `|X(ω)| = 1/√(ω² + α²)` — the curve of Figure 6.
///
/// The transform "attenuates, but does not eliminate, higher frequency
/// elements": it never reaches zero, which is the crux of the paper's
/// instability argument.
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn decaying_exp_spectrum(alpha: f64, omega: f64) -> f64 {
    assert!(alpha > 0.0, "decay rate must be positive");
    1.0 / (omega * omega + alpha * alpha).sqrt()
}

/// In-place radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the input length is not a power of two.
pub fn fft(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Magnitudes of the DFT of a real signal, one per bin up to (and
/// including) Nyquist. Uses the FFT when the length is a power of two
/// and a direct O(n²) DFT otherwise.
pub fn dft_magnitudes(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft(&mut buf);
        return buf[..=n / 2].iter().map(|c| c.abs()).collect();
    }
    (0..=n / 2)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &x) in signal.iter().enumerate() {
                acc = acc
                    + Complex::cis(-2.0 * PI * k as f64 * t as f64 / n as f64)
                        * Complex::new(x, 0.0);
            }
            acc.abs()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_peaks_at_dc_and_decays() {
        let alpha = 2.0;
        let dc = decaying_exp_spectrum(alpha, 0.0);
        assert!((dc - 0.5).abs() < 1e-12, "|X(0)| = 1/alpha");
        let mut last = dc;
        for w in 1..50 {
            let v = decaying_exp_spectrum(alpha, w as f64);
            assert!(v < last, "must decay monotonically");
            assert!(v > 0.0, "never reaches zero (the paper's point)");
            last = v;
        }
    }

    #[test]
    fn smaller_alpha_attenuates_high_frequencies_more_relative_to_dc() {
        // "As alpha gets smaller the higher frequencies are attenuated
        // to a greater degree" (relative to the passband).
        let rel =
            |alpha: f64| decaying_exp_spectrum(alpha, 10.0) / decaying_exp_spectrum(alpha, 0.0);
        assert!(rel(0.5) < rel(5.0));
    }

    #[test]
    fn fft_of_constant_is_a_dc_spike() {
        let mags = dft_magnitudes(&[1.0; 64]);
        assert!((mags[0] - 64.0).abs() < 1e-9);
        for &m in &mags[1..] {
            assert!(m < 1e-9);
        }
    }

    #[test]
    fn fft_finds_a_pure_tone() {
        let n = 256;
        let f = 17;
        let sig: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * f as f64 * t as f64 / n as f64).cos())
            .collect();
        let mags = dft_magnitudes(&sig);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, f);
        assert!((mags[f] - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn fft_matches_naive_dft() {
        let sig: Vec<f64> = (0..32).map(|i| ((i * 13) % 7) as f64).collect();
        let via_fft = dft_magnitudes(&sig);
        // Force the O(n^2) path with a 31-sample prefix scaled to match
        // is not comparable; instead compute the naive DFT directly.
        let n = sig.len();
        let naive: Vec<f64> = (0..=n / 2)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &x) in sig.iter().enumerate() {
                    acc = acc
                        + Complex::cis(-2.0 * PI * k as f64 * t as f64 / n as f64)
                            * Complex::new(x, 0.0);
                }
                acc.abs()
            })
            .collect();
        for (a, b) in via_fft.iter().zip(naive.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn square_wave_has_rich_harmonics() {
        // "A rectangular wave has many high frequency components".
        let sig: Vec<f64> = (0..512).map(|t| ((t % 10) < 9) as u8 as f64).collect();
        let mags = dft_magnitudes(&sig);
        // Fundamental at bin 512/10 ~ 51, with harmonics at multiples.
        let fundamental = 51;
        assert!(mags[fundamental] > 10.0);
        assert!(mags[2 * fundamental + 1] > 5.0 || mags[2 * fundamental] > 5.0);
        // Energy above the fundamental band is substantial.
        let high: f64 = mags[100..].iter().sum();
        assert!(high > 10.0);
    }

    #[test]
    fn non_power_of_two_falls_back_to_naive() {
        let mags = dft_magnitudes(&[1.0, 1.0, 1.0]);
        assert_eq!(mags.len(), 2);
        assert!((mags[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_signal_yields_empty_spectrum() {
        assert!(dft_magnitudes(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::ZERO; 12];
        fft(&mut buf);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }
}
