//! The governor: prediction + hysteresis + speed-setting + voltage rule.
//!
//! [`IntervalScheduler`] is the paper's interval scheduler skeleton. On
//! every scheduling interval it feeds the observed utilization to its
//! predictor; if the weighted utilization rises above the upper
//! hysteresis bound the clock is scaled up by the configured rule, and
//! if it drops below the lower bound it is scaled down. Pering et al.
//! used 70 %/50 % bounds; the paper's best policy used 98 %/93 % with
//! PAST prediction and peg-peg speed setting.

use core::fmt;

use serde::{Deserialize, Serialize};
use sim_core::{SimTime, Voltage};

use itsy_hw::clock::{V_HIGH, V_LOW};
use itsy_hw::cpu::V_LOW_MAX_STEP;
use itsy_hw::{ClockTable, StepIndex};

use crate::predictor::Predictor;
use crate::speed::SpeedChange;

/// The hysteresis band gating clock changes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hysteresis {
    /// Scale up when the weighted utilization exceeds this.
    pub up: f64,
    /// Scale down when the weighted utilization falls below this.
    pub down: f64,
}

impl Hysteresis {
    /// Pering et al.'s starting values (70 % / 50 %).
    pub const PERING: Hysteresis = Hysteresis {
        up: 0.70,
        down: 0.50,
    };

    /// The paper's best empirical thresholds (98 % / 93 %).
    pub const BEST: Hysteresis = Hysteresis {
        up: 0.98,
        down: 0.93,
    };

    /// Validates that the band is well-formed.
    ///
    /// # Panics
    ///
    /// Panics if `down > up` or either bound leaves `[0, 1]`.
    pub fn validate(self) -> Self {
        assert!(
            (0.0..=1.0).contains(&self.up) && (0.0..=1.0).contains(&self.down),
            "hysteresis bounds must be in [0,1]"
        );
        assert!(self.down <= self.up, "hysteresis band inverted");
        self
    }
}

impl fmt::Display for Hysteresis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ">{:.0}%/<{:.0}%", self.up * 100.0, self.down * 100.0)
    }
}

/// What a policy asks the kernel to do after an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyRequest {
    /// Desired clock step, if a change is requested.
    pub step: Option<StepIndex>,
    /// Desired core voltage, if a change is requested.
    pub voltage: Option<Voltage>,
}

impl PolicyRequest {
    /// A request that changes nothing.
    pub const NONE: PolicyRequest = PolicyRequest {
        step: None,
        voltage: None,
    };
}

/// A clock-scaling policy module, called from the kernel's timer
/// interrupt at every scheduling interval — the paper's "extensible
/// clock scaling policy module ... implemented as a kernel module".
pub trait ClockPolicy {
    /// Observes the utilization (`0.0..=1.0`) of the interval ending at
    /// `now` while the CPU sat at `current_step`, and returns the
    /// desired machine state.
    fn on_interval(
        &mut self,
        now: SimTime,
        utilization: f64,
        current_step: StepIndex,
    ) -> PolicyRequest;

    /// Like [`ClockPolicy::on_interval`], but also emits an
    /// [`obs::EventKind::PolicyDecision`] event into `trace`.
    ///
    /// The default implementation reports the raw utilization as the
    /// weighted value, which is correct for memoryless policies;
    /// predictor-backed policies override to expose the predictor's
    /// state (the quantity the hysteresis band actually compares).
    fn on_interval_traced(
        &mut self,
        now: SimTime,
        utilization: f64,
        current_step: StepIndex,
        trace: &mut obs::Trace,
    ) -> PolicyRequest {
        let req = self.on_interval(now, utilization, current_step);
        emit_decision(trace, now, utilization, utilization, current_step, req);
        req
    }

    /// True when the decision is a pure function of `(utilization,
    /// current_step)` and observing the same utilization repeatedly is
    /// idempotent — i.e. calling [`ClockPolicy::on_interval`] N times
    /// with identical arguments is indistinguishable from calling it
    /// once. The batched kernel uses this to elide repeated identical
    /// calls across a uniform span; any policy with interval-counting
    /// or history state must leave this `false` (the safe default).
    fn is_memoryless(&self) -> bool {
        false
    }

    /// Observation decimation factor for summary-fidelity spans.
    ///
    /// A policy returning `k > 1` asserts that, across a run of
    /// consecutive intervals with identical utilization, its decisions
    /// and internal state depend only on every k-th
    /// [`ClockPolicy::on_interval`] call — and that it derives any
    /// sampling phase from the `now` argument, never from an internal
    /// call counter (summary runs deliver only the ticks whose global
    /// index is a multiple of `k` inside uniform spans, so a counter
    /// would slip). The default of `1` means every tick is delivered,
    /// which is always safe. All shipped policies use 1: PAST, AVG_N
    /// and the sliding-window predictors fold every interval into their
    /// state. The hook exists for externally-defined coarse policies
    /// (e.g. one that re-evaluates once per N quanta by timestamp).
    fn observation_stride(&self) -> u64 {
        1
    }

    /// Name used in reports.
    fn name(&self) -> String;
}

/// Records one policy decision into `trace` (no-op when disabled).
fn emit_decision(
    trace: &mut obs::Trace,
    now: SimTime,
    utilization: f64,
    weighted: f64,
    current_step: StepIndex,
    req: PolicyRequest,
) {
    if trace.is_enabled() {
        trace.emit(
            now.as_micros(),
            obs::EventKind::PolicyDecision {
                utilization,
                weighted,
                from_step: current_step as u64,
                to_step: req.step.map(|s| s as u64),
                to_mv: req.voltage.map(|v| u64::from(v.as_mv())),
            },
        );
    }
}

/// Voltage-scaling rule: run the core at 1.23 V whenever the clock is at
/// or below a threshold step (the paper used 162.2 MHz, the fastest
/// step at which the lowered supply is stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoltageRule {
    /// Steps at or below this run at the low voltage.
    pub low_at_or_below: StepIndex,
}

impl Default for VoltageRule {
    fn default() -> Self {
        VoltageRule {
            low_at_or_below: V_LOW_MAX_STEP,
        }
    }
}

impl VoltageRule {
    /// The voltage this rule selects for a step.
    pub fn voltage_for(&self, step: StepIndex) -> Voltage {
        if step <= self.low_at_or_below {
            V_LOW
        } else {
            V_HIGH
        }
    }
}

/// The composed interval scheduler.
pub struct IntervalScheduler {
    predictor: Box<dyn Predictor + Send>,
    hysteresis: Hysteresis,
    up_rule: SpeedChange,
    down_rule: SpeedChange,
    table: ClockTable,
    voltage_rule: Option<VoltageRule>,
}

impl IntervalScheduler {
    /// Builds a scheduler from its four components.
    pub fn new(
        predictor: Box<dyn Predictor + Send>,
        hysteresis: Hysteresis,
        up_rule: SpeedChange,
        down_rule: SpeedChange,
        table: ClockTable,
    ) -> Self {
        IntervalScheduler {
            predictor,
            hysteresis: hysteresis.validate(),
            up_rule,
            down_rule,
            table,
            voltage_rule: None,
        }
    }

    /// Enables voltage scaling with the given rule.
    pub fn with_voltage_rule(mut self, rule: VoltageRule) -> Self {
        self.voltage_rule = Some(rule);
        self
    }

    /// The paper's best policy: PAST, peg-peg, >98 % up / <93 % down.
    pub fn best_from_paper(table: ClockTable) -> Self {
        IntervalScheduler::new(
            Box::new(crate::predictor::Past::new()),
            Hysteresis::BEST,
            SpeedChange::Peg,
            SpeedChange::Peg,
            table,
        )
    }

    /// The current weighted utilization (reporting).
    pub fn weighted_utilization(&self) -> f64 {
        self.predictor.current()
    }

    /// The hysteresis band in force.
    pub fn hysteresis(&self) -> Hysteresis {
        self.hysteresis
    }
}

impl ClockPolicy for IntervalScheduler {
    fn on_interval(
        &mut self,
        _now: SimTime,
        utilization: f64,
        current_step: StepIndex,
    ) -> PolicyRequest {
        let w = self.predictor.observe(utilization.clamp(0.0, 1.0));
        let target = if w > self.hysteresis.up {
            Some(self.up_rule.up(current_step, &self.table))
        } else if w < self.hysteresis.down {
            Some(self.down_rule.down(current_step, &self.table))
        } else {
            None
        };
        let step = target.filter(|&s| s != current_step);
        let voltage = self
            .voltage_rule
            .map(|r| r.voltage_for(step.unwrap_or(current_step)));
        PolicyRequest { step, voltage }
    }

    fn on_interval_traced(
        &mut self,
        now: SimTime,
        utilization: f64,
        current_step: StepIndex,
        trace: &mut obs::Trace,
    ) -> PolicyRequest {
        let req = self.on_interval(now, utilization, current_step);
        let weighted = self.predictor.current();
        emit_decision(trace, now, utilization, weighted, current_step, req);
        req
    }

    fn is_memoryless(&self) -> bool {
        // The scheduler itself holds no per-interval state beyond the
        // predictor, and `now` is unused, so memorylessness is exactly
        // the predictor's.
        self.predictor.is_memoryless()
    }

    fn name(&self) -> String {
        let v = if self.voltage_rule.is_some() {
            ", Vscale"
        } else {
            ""
        };
        format!(
            "{}, {} - {}, Thresholds: {}{}",
            self.predictor.name(),
            self.up_rule.label(),
            self.down_rule.label(),
            self.hysteresis,
            v
        )
    }
}

/// A fixed-speed, fixed-voltage "policy" — the paper's constant-speed
/// baselines in Table 2.
#[derive(Debug, Clone, Copy)]
pub struct ConstantPolicy {
    /// The pinned clock step.
    pub step: StepIndex,
    /// The pinned core voltage.
    pub voltage: Voltage,
}

impl ConstantPolicy {
    /// Creates a constant policy.
    pub fn new(step: StepIndex, voltage: Voltage) -> Self {
        ConstantPolicy { step, voltage }
    }
}

impl ClockPolicy for ConstantPolicy {
    fn on_interval(&mut self, _: SimTime, _: f64, current: StepIndex) -> PolicyRequest {
        PolicyRequest {
            step: (current != self.step).then_some(self.step),
            voltage: Some(self.voltage),
        }
    }

    fn is_memoryless(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("Constant Speed @ step {}, {}", self.step, self.voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{AvgN, Past};

    fn best() -> IntervalScheduler {
        IntervalScheduler::best_from_paper(ClockTable::sa1100())
    }

    #[test]
    fn busy_interval_pegs_up() {
        let mut p = best();
        let req = p.on_interval(SimTime::ZERO, 1.0, 0);
        assert_eq!(req.step, Some(10));
        assert_eq!(req.voltage, None);
    }

    #[test]
    fn idle_interval_pegs_down() {
        let mut p = best();
        p.on_interval(SimTime::ZERO, 1.0, 0);
        let req = p.on_interval(SimTime::from_millis(10), 0.5, 10);
        assert_eq!(req.step, Some(0));
    }

    #[test]
    fn in_band_utilization_requests_nothing() {
        let mut p = best();
        // 0.95 is between 0.93 and 0.98.
        let req = p.on_interval(SimTime::ZERO, 0.95, 5);
        assert_eq!(req, PolicyRequest::NONE);
    }

    #[test]
    fn no_request_when_already_at_target() {
        let mut p = best();
        let req = p.on_interval(SimTime::ZERO, 1.0, 10);
        assert_eq!(req.step, None, "already pegged at the top");
    }

    #[test]
    fn avg9_lags_12_intervals_from_idle() {
        // Table 1's headline: with a 70% upper bound, AVG_9 takes 12
        // fully-busy quanta before the first scale-up.
        let mut p = IntervalScheduler::new(
            Box::new(AvgN::new(9)),
            Hysteresis::PERING,
            SpeedChange::One,
            SpeedChange::One,
            ClockTable::sa1100(),
        );
        let mut first_up = None;
        for i in 1..=20 {
            let req = p.on_interval(SimTime::from_millis(10 * i), 1.0, 0);
            if req.step.is_some() && first_up.is_none() {
                first_up = Some(i);
            }
        }
        assert_eq!(first_up, Some(12));
    }

    #[test]
    fn voltage_rule_tracks_threshold() {
        let r = VoltageRule::default();
        assert_eq!(r.voltage_for(7), V_LOW); // 162.2 MHz
        assert_eq!(r.voltage_for(8), V_HIGH); // 176.9 MHz
        assert_eq!(r.voltage_for(0), V_LOW);
    }

    #[test]
    fn scheduler_with_voltage_rule_requests_voltage() {
        let mut p = IntervalScheduler::new(
            Box::new(Past::new()),
            Hysteresis::BEST,
            SpeedChange::Peg,
            SpeedChange::Peg,
            ClockTable::sa1100(),
        )
        .with_voltage_rule(VoltageRule::default());
        // Pegging down to step 0 must come with the low voltage.
        p.on_interval(SimTime::ZERO, 1.0, 0);
        let req = p.on_interval(SimTime::from_millis(10), 0.1, 10);
        assert_eq!(req.step, Some(0));
        assert_eq!(req.voltage, Some(V_LOW));
        // Pegging up must come with the high voltage.
        let req = p.on_interval(SimTime::from_millis(20), 1.0, 0);
        assert_eq!(req.step, Some(10));
        assert_eq!(req.voltage, Some(V_HIGH));
    }

    #[test]
    fn constant_policy_restores_its_step() {
        let mut p = ConstantPolicy::new(5, V_HIGH);
        assert_eq!(
            p.on_interval(SimTime::ZERO, 0.5, 5),
            PolicyRequest {
                step: None,
                voltage: Some(V_HIGH)
            }
        );
        let req = p.on_interval(SimTime::ZERO, 0.5, 3);
        assert_eq!(req.step, Some(5));
    }

    #[test]
    fn stride_defaults_to_every_tick() {
        // Predictor-backed schedulers consume every interval; the
        // default stride of 1 must hold for both memoryless (PAST) and
        // stateful (AVG_N) compositions.
        assert_eq!(best().observation_stride(), 1);
        let avg = IntervalScheduler::new(
            Box::new(AvgN::new(3)),
            Hysteresis::PERING,
            SpeedChange::One,
            SpeedChange::One,
            ClockTable::sa1100(),
        );
        assert_eq!(avg.observation_stride(), 1);
        assert!(!avg.is_memoryless());
        assert_eq!(ConstantPolicy::new(5, V_HIGH).observation_stride(), 1);
    }

    #[test]
    fn name_matches_paper_style() {
        let p = best();
        assert_eq!(p.name(), "PAST, peg - peg, Thresholds: >98%/<93%");
    }

    #[test]
    fn traced_interval_reports_predictor_weighted_value() {
        // AVG_3 after observing 1.0 from a zeroed state decays to
        // (3·0 + 1)/4 = 0.25 — the traced event must carry the
        // predictor's state, not the raw utilization.
        let mut p = IntervalScheduler::new(
            Box::new(AvgN::new(3)),
            Hysteresis::PERING,
            SpeedChange::One,
            SpeedChange::One,
            ClockTable::sa1100(),
        );
        let mut trace = obs::Trace::on();
        let req = p.on_interval_traced(SimTime::from_millis(10), 1.0, 5, &mut trace);
        assert_eq!(trace.len(), 1);
        let e = &trace.events()[0];
        assert_eq!(e.time_us, 10_000);
        match &e.kind {
            obs::EventKind::PolicyDecision {
                utilization,
                weighted,
                from_step,
                to_step,
                ..
            } => {
                assert_eq!(*utilization, 1.0);
                assert!((*weighted - 0.25).abs() < 1e-9);
                assert_eq!(*from_step, 5);
                assert_eq!(*to_step, req.step.map(|s| s as u64));
            }
            other => panic!("expected policy decision, got {other:?}"),
        }
    }

    #[test]
    fn traced_interval_matches_untraced_decision() {
        let mut traced = best();
        let mut plain = best();
        let mut trace = obs::Trace::off();
        for (i, u) in [1.0, 0.2, 0.97, 0.5].into_iter().enumerate() {
            let now = SimTime::from_millis(10 * (i as u64 + 1));
            let a = traced.on_interval_traced(now, u, 5, &mut trace);
            let b = plain.on_interval(now, u, 5);
            assert_eq!(a, b, "tracing must not perturb decisions");
        }
        assert!(trace.is_empty());
    }

    #[test]
    fn default_traced_impl_uses_raw_utilization() {
        let mut p = ConstantPolicy::new(5, V_HIGH);
        let mut trace = obs::Trace::on();
        p.on_interval_traced(SimTime::from_millis(10), 0.4, 5, &mut trace);
        match &trace.events()[0].kind {
            obs::EventKind::PolicyDecision {
                weighted, to_mv, ..
            } => {
                assert_eq!(*weighted, 0.4);
                assert_eq!(*to_mv, Some(1500));
            }
            other => panic!("expected policy decision, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "band inverted")]
    fn inverted_band_rejected() {
        let _ = IntervalScheduler::new(
            Box::new(Past::new()),
            Hysteresis { up: 0.5, down: 0.7 },
            SpeedChange::One,
            SpeedChange::One,
            ClockTable::sa1100(),
        );
    }
}
