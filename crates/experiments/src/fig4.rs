//! Figure 4: the Figure 3 traces under a 100 ms moving average.
//!
//! "For most applications, patterns in the utilization are easier to see
//! if you plot the utilization using a 100ms moving average ... The MPEG
//! application is still very sporadic because of inter-frame variation;
//! for MPEG, there is even significant variance in CPU utilization
//! (60-80%) when considering a 1 second moving average."

use core::fmt;

use analysis::moving_average_series;
use sim_core::TimeSeries;
use workloads::Benchmark;

use crate::report;

/// Smoothed traces at the two window lengths the paper discusses.
pub struct Fig4 {
    /// `(benchmark, 100 ms moving average)` series.
    pub ma100: Vec<(Benchmark, TimeSeries)>,
    /// `(benchmark, 1 s moving average)` series (discussed for MPEG).
    pub ma1000: Vec<(Benchmark, TimeSeries)>,
}

/// Smooths the Figure 3 output.
pub fn run(seed: u64) -> Fig4 {
    let fig3 = crate::fig3::run(seed);
    let ma100 = fig3
        .series
        .iter()
        .map(|(b, s)| (*b, moving_average_series(s, 10)))
        .collect();
    let ma1000 = fig3
        .series
        .iter()
        .map(|(b, s)| (*b, moving_average_series(s, 100)))
        .collect();
    Fig4 { ma100, ma1000 }
}

impl Fig4 {
    /// Steady-state swing (max − min, after a 2 s transient) of a
    /// benchmark's 100 ms-averaged utilization.
    pub fn swing_100ms(&self, b: Benchmark) -> f64 {
        let s = &self
            .ma100
            .iter()
            .find(|(x, _)| *x == b)
            .expect("benchmark present")
            .1;
        let vals = s.values();
        let steady = &vals[200.min(vals.len())..];
        let max = steady.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = steady.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// The same swing at a 1 s window.
    pub fn swing_1s(&self, b: Benchmark) -> f64 {
        let s = &self
            .ma1000
            .iter()
            .find(|(x, _)| *x == b)
            .expect("benchmark present")
            .1;
        let vals = s.values();
        let steady = &vals[200.min(vals.len())..];
        let max = steady.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = steady.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Writes the smoothed series as CSVs.
    pub fn save(&self) -> std::io::Result<()> {
        let refs: Vec<&TimeSeries> = self
            .ma100
            .iter()
            .chain(self.ma1000.iter())
            .map(|(_, s)| s)
            .collect();
        report::save_series("fig4", &refs).map(|_| ())
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: utilization under moving averages @ 206.4 MHz")?;
        let rows: Vec<Vec<String>> = self
            .ma100
            .iter()
            .map(|(b, s)| {
                vec![
                    b.name().to_string(),
                    format!("{:.3}", s.mean().unwrap_or(0.0)),
                    format!("{:.2}", self.swing_100ms(*b)),
                    format!("{:.2}", self.swing_1s(*b)),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &["workload", "mean util", "swing @100ms", "swing @1s"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_reduces_but_does_not_remove_mpeg_variance() {
        let fig = run(7);
        let swing100 = fig.swing_100ms(Benchmark::Mpeg);
        let swing1s = fig.swing_1s(Benchmark::Mpeg);
        // Still sporadic at 100 ms...
        assert!(swing100 > 0.2, "swing@100ms = {swing100}");
        // ...and the paper notes ~20 points of swing even at 1 s.
        assert!(swing1s > 0.05, "swing@1s = {swing1s}");
        // But smoothing does monotonically reduce swing.
        assert!(swing1s < swing100);
    }

    #[test]
    fn chess_patterns_are_visible_at_100ms() {
        // Figure 4(c): planning bursts reach ~1.0, thinking dips to ~0.
        let fig = run(7);
        let s = &fig
            .ma100
            .iter()
            .find(|(b, _)| *b == Benchmark::Chess)
            .unwrap()
            .1;
        assert!(s.max().unwrap() > 0.9);
        assert!(s.min().unwrap() < 0.1);
    }

    #[test]
    fn series_lengths_match_fig3() {
        let fig = run(7);
        for (b, s) in &fig.ma100 {
            assert!(!s.is_empty(), "{} empty", b.name());
        }
        assert_eq!(fig.ma100.len(), 4);
        assert_eq!(fig.ma1000.len(), 4);
    }
}
