//! Offline stub of `crossbeam`.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides the two crossbeam facilities the workspace uses, built on
//! the standard library:
//!
//! - [`thread::scope`] — API-compatible scoped threads, implemented
//!   over [`std::thread::scope`] (which landed in Rust 1.63, after
//!   crossbeam's version became idiomatic);
//! - [`deque::Injector`] — a FIFO job queue shared by the engine's
//!   worker pool. The real crossbeam injector is lock-free; this one
//!   guards a `VecDeque` with a mutex, which is indistinguishable for
//!   the coarse-grained (multi-second) simulation jobs pushed through
//!   it.
//! - [`channel::bounded`] — a blocking, bounded multi-producer /
//!   multi-consumer channel (crossbeam's `channel` surface), built on a
//!   mutex + condvars. The engine uses it for backpressure: a producer
//!   feeding a full channel blocks until a worker drains a slot, which
//!   is what keeps streaming batches at constant memory.

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    use std::any::Any;

    /// Handle passed to spawned closures (crossbeam passes the scope so
    /// workers can spawn nested threads; nothing in this workspace
    /// does, so the stub passes an inert token).
    pub struct ScopeHandle {
        _private: (),
    }

    /// A scope in which threads borrowing local data may be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a dummy scope
        /// handle to match crossbeam's `|scope| ...` signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&ScopeHandle) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&ScopeHandle { _private: () }))
        }
    }

    /// Creates a scope for spawning threads that borrow from the
    /// enclosing stack frame. Unlike crossbeam, panics in unjoined
    /// threads propagate when the scope exits (std semantics), so the
    /// `Err` arm is only reachable through joined handles — callers
    /// treating `Ok` as success behave identically.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! A shared FIFO work queue (crossbeam's `Injector` surface).

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Result of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A job was stolen.
        Success(T),
        /// Contention; try again (never produced by this stub, kept so
        /// caller loops match crossbeam's contract).
        Retry,
    }

    impl<T> Steal<T> {
        /// Extracts the job, if one was stolen.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A FIFO queue that producers push into and workers steal from.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a job onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals a job from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued jobs.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }
}

pub mod channel {
    //! A blocking bounded MPMC channel (crossbeam's `channel` surface).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value back like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Space freed (senders wait on this).
        not_full: Condvar,
        /// Data arrived (receivers wait on this).
        not_empty: Condvar,
        capacity: usize,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; clone for more producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone for more consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel with room for `capacity` in-flight
    /// values (at least one slot — a rendezvous channel is not needed
    /// by this workspace and complicates the stub).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until a slot frees up, then enqueues `value`. Fails
        /// only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.buf.len() < self.shared.capacity {
                    state.buf.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).expect("channel poisoned");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails once the channel is
        /// drained and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.buf.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel poisoned");
            }
        }

        /// A blocking iterator over received values, ending when every
        /// sender is gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe disconnection.
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().expect("worker ok")
        })
        .expect("scope ok");
        assert_eq!(sum, 6);
    }

    #[test]
    fn bounded_channel_round_trips_fifo() {
        let (tx, rx) = super::channel::bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        // Capacity 1: the producer cannot run ahead of the consumer by
        // more than one element.
        let (tx, rx) = super::channel::bounded(1);
        let peak = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            let producer_peak = std::sync::Arc::clone(&peak);
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                    producer_peak.fetch_max(i, std::sync::atomic::Ordering::Relaxed);
                }
            });
            let mut got = 0;
            for (want, v) in rx.iter().enumerate() {
                assert_eq!(want, v);
                // The producer can be at most 2 ahead (one in flight,
                // one being sent) of what we've consumed.
                let sent = peak.load(std::sync::atomic::Ordering::Relaxed);
                assert!(sent <= want + 2, "producer ran ahead: {sent} > {want} + 2");
                got += 1;
            }
            assert_eq!(got, 100);
        });
    }

    #[test]
    fn channel_send_fails_when_receivers_gone() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(7), Err(super::channel::SendError(7)));
    }

    #[test]
    fn injector_is_fifo() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.steal(), Steal::Success(1));
        assert_eq!(q.steal(), Steal::Success(2));
        assert_eq!(q.steal(), Steal::Empty);
        assert!(q.is_empty());
    }
}
