//! The output of a simulated run.

use sim_core::{Energy, SimDuration, SimFidelity, TimeSeries};

use itsy_hw::StepIndex;

use crate::log::{DeadlineLog, SchedLog};

/// One sim-time window of a run's trajectory: where the energy went
/// and how busy the CPU was between `start_us` and `end_us`. Produced
/// when [`KernelConfig::timeline_windows`] is nonzero; windows
/// partition `[0, duration]` and are derived from the same segment
/// arithmetic in both fidelities, so a device's timeline is
/// deterministic for a given spec.
///
/// [`KernelConfig::timeline_windows`]: crate::KernelConfig
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowSample {
    /// Window start, µs of sim time.
    pub start_us: u64,
    /// Window end (exclusive; the last window ends at the run
    /// duration), µs.
    pub end_us: u64,
    /// Energy drawn inside the window, joules.
    pub energy_j: f64,
    /// Non-idle time inside the window, µs.
    pub busy_us: u64,
    /// Deadline misses completed inside the window. The kernel leaves
    /// this 0 — deadline records carry tolerances only the caller
    /// knows — and the engine fills it per spec.
    pub misses: u64,
}

/// Everything a run produces: traces, logs, totals.
#[derive(Debug)]
pub struct KernelReport {
    /// Per-quantum CPU utilization (non-idle time / quantum), sampled at
    /// each timer tick — the policy's own input, and the data behind
    /// Figures 3 and 4.
    pub utilization: TimeSeries,
    /// Clock frequency in MHz at each timer tick — Figure 8's series.
    pub freq_mhz: TimeSeries,
    /// Per-quantum executed work as a fraction of a *full-speed*
    /// quantum — the Weiser-style work trace the oracle baselines
    /// consume.
    pub work_fraction: TimeSeries,
    /// Instantaneous system power (watts) as a step function: a sample
    /// at the start of every homogeneous segment plus a final sample at
    /// the end of the run. The DAQ resamples this at 5 kHz.
    pub power_w: TimeSeries,
    /// Total non-idle time (includes clock-change stalls).
    pub busy: SimDuration,
    /// Total idle (nap) time.
    pub idle: SimDuration,
    /// Portion of `busy` spent stalled in clock changes.
    pub stalled: SimDuration,
    /// Portion of `busy` spent in application spin loops (busy-waiting
    /// on wall-clock time rather than doing clock-dependent work).
    pub spun: SimDuration,
    /// Total energy drawn.
    pub energy: Energy,
    /// Portion of `energy` drawn by the processor core — the only part
    /// voltage scaling reduces ("voltage scaling only reduces the power
    /// used by the processor").
    pub core_energy: Energy,
    /// Scheduler activity log.
    pub sched_log: SchedLog,
    /// Deadline outcomes reported by tasks.
    pub deadlines: DeadlineLog,
    /// Structured event trace (empty unless [`KernelConfig::trace`]
    /// was set).
    ///
    /// [`KernelConfig::trace`]: crate::KernelConfig
    pub trace: obs::Trace,
    /// Number of clock-step changes the policy caused.
    pub clock_switches: u64,
    /// Number of voltage changes the policy caused.
    pub voltage_switches: u64,
    /// Clock step at the end of the run.
    pub final_step: StepIndex,
    /// Per-task CPU time: `(pid, label, busy time)` — the Unix-style
    /// process accounting the paper's logging module enabled.
    pub per_task_cpu: Vec<(crate::task::Pid, String, SimDuration)>,
    /// Battery charge remaining at the end (fraction), if a battery was
    /// attached.
    pub battery_remaining: Option<f64>,
    /// Simulated wall-clock length of the run.
    pub elapsed: SimDuration,
    /// Fidelity the run was executed at. Under [`SimFidelity::Summary`]
    /// the four series above are empty and the closed-form accumulators
    /// below carry the run's means instead.
    pub fidelity: SimFidelity,
    /// The scheduling quantum (denominator of the summary means).
    pub quantum: SimDuration,
    /// Completed quanta — how many utilization samples a Full-fidelity
    /// run would have recorded.
    pub ticks: u64,
    /// Summary accumulator: busy µs inside completed quanta, each
    /// clamped to the quantum. `util_sum_us / (ticks · quantum)` is the
    /// exact mean utilization.
    pub util_sum_us: u64,
    /// Summary accumulator: sum of the per-tick clock samples in kHz,
    /// including the t = 0 sample (`ticks + 1` terms in total).
    pub freq_khz_sum: u64,
    /// Windowed trajectory of the run; empty unless
    /// [`KernelConfig::timeline_windows`] was nonzero.
    ///
    /// [`KernelConfig::timeline_windows`]: crate::KernelConfig
    pub timeline: Vec<WindowSample>,
}

impl KernelReport {
    /// Mean utilization over the whole run.
    ///
    /// Full fidelity averages the recorded series (bit-identical to the
    /// historical value); Summary computes the same quantity as an
    /// exact integer ratio, so the two can differ in the last few ULPs
    /// of the series' accumulation error.
    pub fn mean_utilization(&self) -> f64 {
        if self.fidelity.is_summary() {
            if self.ticks == 0 {
                return 0.0;
            }
            self.util_sum_us as f64 / (self.ticks * self.quantum.as_micros()) as f64
        } else {
            self.utilization.mean().unwrap_or(0.0)
        }
    }

    /// Mean clock frequency over the run's tick samples, MHz.
    ///
    /// Full fidelity averages the `freq_mhz` series (one sample at
    /// t = 0 plus one per tick); Summary divides the exact integer kHz
    /// sum by the same sample count.
    pub fn mean_freq_mhz(&self) -> f64 {
        if self.fidelity.is_summary() {
            (self.freq_khz_sum as f64 / (self.ticks + 1) as f64) / 1000.0
        } else {
            self.freq_mhz.mean().unwrap_or(0.0)
        }
    }

    /// Average power over the run.
    pub fn mean_power_w(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.energy.as_joules() / self.elapsed.as_secs_f64()
        }
    }

    /// Busy + idle must equal elapsed time; exposed for invariant tests.
    pub fn time_accounted(&self) -> SimDuration {
        self.busy + self.idle
    }

    /// Peripheral (non-core) energy.
    pub fn peripheral_energy(&self) -> Energy {
        self.energy - self.core_energy
    }

    /// CPU time of the task with the given label, if it exists.
    pub fn cpu_time_of(&self, label: &str) -> Option<SimDuration> {
        self.per_task_cpu
            .iter()
            .find(|(_, l, _)| l == label)
            .map(|&(_, _, t)| t)
    }

    /// Sum of per-task CPU time; equals `busy` minus clock-change
    /// stalls (stalls are non-idle but belong to no task).
    pub fn per_task_total(&self) -> SimDuration {
        self.per_task_cpu
            .iter()
            .fold(SimDuration::ZERO, |acc, &(_, _, t)| acc + t)
    }
}
