//! Offline stub of `proptest`.
//!
//! The build container has no crates.io access, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the `proptest!` macro over functions with `arg in strategy`
//! bindings, range / tuple / `any::<T>()` / `collection::vec`
//! strategies, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **no shrinking** — a failing case reports the panic message from
//!   the first counterexample found rather than a minimized one;
//! - **deterministic seeding** — cases derive from a fixed seed mixed
//!   with the test's module path and name, so failures reproduce
//!   run-to-run without a regression file;
//! - **case count** — 48 cases per test by default (`PROPTEST_CASES`
//!   overrides), traded down from 256 because several property tests
//!   here run whole kernel simulations per case.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `elem` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each function body runs for many generated
/// inputs; `prop_assert*` failures panic with the counterexample.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let cases = $crate::test_runner::cases();
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= cases.saturating_mul(20),
                        "prop_assume! rejected too many inputs ({} attempts for {} cases)",
                        attempts,
                        cases,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}\n(no shrinking in the offline stub; \
                                 inputs: {})",
                                accepted + 1,
                                cases,
                                msg,
                                [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+].join(", "),
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Discards the current case (without counting it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
