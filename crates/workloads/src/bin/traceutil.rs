//! `traceutil` — generate, inspect and validate input-event traces.
//!
//! The paper's methodology (§4.2) records timestamped input events and
//! replays them "with millisecond accuracy" so runs are repeatable.
//! This tool manages those traces on disk in the crate's text format:
//!
//! ```text
//! traceutil generate <web|editor|interactive> [--seed N] [-o FILE]
//! traceutil info FILE
//! traceutil validate FILE
//! ```

use std::process::ExitCode;

use sim_core::{Rng, SimDuration};
use workloads::trace::generate_interactive_trace;
use workloads::{InputTrace, TalkingEditorWorkload, WebWorkload};

fn usage() -> ExitCode {
    eprintln!("usage: traceutil generate <web|editor|interactive> [--seed N] [-o FILE]");
    eprintln!("       traceutil info FILE");
    eprintln!("       traceutil validate FILE");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("validate") => validate(&args[1..]),
        _ => usage(),
    }
}

fn generate(args: &[String]) -> ExitCode {
    let Some(kind) = args.first() else {
        return usage();
    };
    let mut seed = 1u64;
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = match args[i + 1].parse() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("bad seed: {e}");
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            "-o" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                return usage();
            }
        }
    }
    let trace = match kind.as_str() {
        "web" => WebWorkload::browse_trace(seed),
        "editor" => TalkingEditorWorkload::ui_trace(seed),
        "interactive" => {
            let mut rng = Rng::new(seed);
            generate_interactive_trace(
                &mut rng,
                SimDuration::from_secs(60),
                (500, 4_000),
                (20.0, 250.0),
                0.4,
                SimDuration::from_millis(300),
            )
        }
        other => {
            eprintln!("unknown trace kind: {other}");
            return usage();
        }
    };
    let text = format!(
        "# {} trace, seed {}, {} events over {:.1}s\n{}",
        kind,
        seed,
        trace.len(),
        trace.span().as_secs_f64(),
        trace.to_text()
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} events to {path}", trace.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn load(args: &[String]) -> Result<InputTrace, ExitCode> {
    let Some(path) = args.first() else {
        return Err(usage());
    };
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::FAILURE
    })?;
    InputTrace::from_text(&text).map_err(|e| {
        eprintln!("{path}: {e}");
        ExitCode::FAILURE
    })
}

fn info(args: &[String]) -> ExitCode {
    let trace = match load(args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    println!("events        : {}", trace.len());
    println!("span          : {:.3}s", trace.span().as_secs_f64());
    let total_cycles: f64 = trace
        .events()
        .iter()
        .map(|e| e.work.cpu_cycles + e.work.mem_refs + e.work.cache_lines)
        .sum();
    println!("work (raw)    : {total_cycles:.3e} cycle-units");
    let with_deadline = trace.events().iter().filter(|e| e.response_us > 0).count();
    println!("with deadlines: {with_deadline}");
    if let (Some(first), Some(last)) = (trace.events().first(), trace.events().last()) {
        println!("first event   : {:.3}s", first.at().as_secs_f64());
        println!("last event    : {:.3}s", last.at().as_secs_f64());
    }
    ExitCode::SUCCESS
}

fn validate(args: &[String]) -> ExitCode {
    match load(args) {
        Ok(trace) => {
            println!("ok: {} events", trace.len());
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}
