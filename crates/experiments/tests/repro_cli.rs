//! CLI smoke tests for the `repro` binary.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn results_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("itsy-dvs-repro-test-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fast_experiments_run_and_write_csv() {
    let dir = results_dir("fast");
    let out = repro()
        .env("REPRO_RESULTS_DIR", &dir)
        .args(["table3", "sa2", "fig5", "table1", "fig6"])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 3"));
    assert!(text.contains("Scheduling Actions for the AVG_9 Policy"));
    // CSVs landed where REPRO_RESULTS_DIR pointed.
    assert!(dir.join("table3").join("memory_cycles.csv").exists());
    assert!(dir.join("fig5").join("going_idle.csv").exists());
}

#[test]
fn seed_flag_changes_stochastic_outputs() {
    let run = |seed: &str, tag: &str| {
        let dir = results_dir(tag);
        let out = repro()
            .env("REPRO_RESULTS_DIR", &dir)
            .args(["--seed", seed, "fig8"])
            .output()
            .unwrap();
        assert!(out.status.success());
        std::fs::read_to_string(dir.join("fig8").join("freq_mhz.csv")).unwrap()
    };
    let a = run("1", "seed1");
    let b = run("1", "seed1b");
    let c = run("2", "seed2");
    assert_eq!(a, b, "same seed must reproduce bit-identically");
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn unknown_experiment_exits_nonzero() {
    let out = repro().arg("nosuchexperiment").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

/// Reads the first top-level occurrence of `"key": value` from a
/// metrics.json document (per-policy entries come last by design).
fn json_u64(doc: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = doc
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {doc}"));
    doc[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("{key} not numeric: {e}"))
}

#[test]
fn metrics_json_tracks_cold_and_warm_cache_runs() {
    let dir = results_dir("metrics");
    let _ = std::fs::remove_dir_all(&dir);
    let run = || {
        let out = repro()
            .env("REPRO_RESULTS_DIR", &dir)
            .args(["--seed", "1", "--sweep-secs", "1", "sweep"])
            .output()
            .expect("repro runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    let cold_stdout = run();
    assert!(
        cold_stdout.contains("metrics:"),
        "summary line missing:\n{cold_stdout}"
    );
    let cold = std::fs::read_to_string(dir.join("sweep").join("metrics.json")).unwrap();
    let total = json_u64(&cold, "total");
    assert!(total > 0);
    assert_eq!(json_u64(&cold, "executed"), total, "cold run simulates all");
    assert_eq!(json_u64(&cold, "cache_hits"), 0);

    let _ = run();
    let warm = std::fs::read_to_string(dir.join("sweep").join("metrics.json")).unwrap();
    assert_eq!(json_u64(&warm, "executed"), 0, "warm run simulates nothing");
    assert_eq!(
        json_u64(&warm, "cache_hits"),
        total,
        "every cell served from cache:\n{warm}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_export_is_identical_across_jobs_and_cache_state() {
    let dir = results_dir("trace");
    let _ = std::fs::remove_dir_all(&dir);
    let run = |jobs: &str| {
        let out = repro()
            .env("REPRO_RESULTS_DIR", &dir)
            .args(["--seed", "1", "--jobs", jobs, "--trace-secs", "1", "trace"])
            .output()
            .expect("repro runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let trace_dir = dir.join("trace");
        (
            std::fs::read(trace_dir.join("fig3.csv")).unwrap(),
            std::fs::read(trace_dir.join("fig3.trace.json")).unwrap(),
        )
    };
    // First run lands on an empty results dir, second and third run
    // against whatever state the previous ones left behind, with a
    // different worker count: all three must produce identical bytes.
    let cold = run("1");
    let warm = run("4");
    assert_eq!(cold, warm, "trace must not depend on cache state or jobs");
    let again = run("2");
    assert_eq!(cold, again);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quiet_flag_silences_engine_chatter() {
    let dir = results_dir("quiet");
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro()
        .env("REPRO_RESULTS_DIR", &dir)
        .args(["--seed", "1", "--sweep-secs", "1", "--quiet", "sweep"])
        .output()
        .expect("repro runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("[sweep]"),
        "--quiet must silence progress lines, got:\n{stderr}"
    );
    // stdout tables and stats are unaffected by verbosity.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("engine:"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
