//! Table 2: summary of performance of the best clock scaling
//! algorithms — MPEG energy under five configurations, with 95 %
//! confidence intervals.
//!
//! The paper's rows (Joules, 60 s of playback):
//!
//! | configuration | paper 95 % CI |
//! |---|---|
//! | Constant 206.4 MHz, 1.5 V | 85.59 – 86.49 |
//! | Constant 132.7 MHz, 1.5 V | 79.59 – 80.94 |
//! | Constant 132.7 MHz, 1.23 V | 73.76 – 74.41 |
//! | PAST, peg-peg, >98 %/<93 %, 1.5 V | 85.03 – 85.47 |
//! | PAST, peg-peg + voltage scaling @162.2 MHz | 84.60 – 85.45 |
//!
//! Shape targets: the orderings (132.7/1.23 < 132.7/1.5 < both PAST
//! configurations < 206.4/1.5), a small-but-significant saving for the
//! PAST policy over the constant top speed, *no* significant additional
//! saving from voltage scaling under the policy, and zero deadline
//! misses everywhere.

use core::fmt;

use itsy_hw::clock::{V_HIGH, V_LOW};
use itsy_hw::ClockTable;
use policies::{IntervalScheduler, VoltageRule};
use sim_core::ConfidenceInterval;
use workloads::Benchmark;

use crate::report;
use crate::runner::{measure_energy, RunSpec, TOLERANCE};

/// One table row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Configuration label (paper style).
    pub label: String,
    /// Energy 95 % CI over the runs, joules.
    pub energy: ConfidenceInterval,
    /// Total deadline misses across runs (must be 0 for a "best"
    /// policy).
    pub misses: usize,
    /// Clock switches in the last run.
    pub clock_switches: u64,
}

/// The reproduced table.
pub struct Table2 {
    /// The five rows, in the paper's order.
    pub rows: Vec<Table2Row>,
    /// The paper's CIs for side-by-side comparison.
    pub paper: [(f64, f64); 5],
}

/// Seconds of MPEG playback per run.
pub const RUN_SECS: u64 = 60;

/// Runs per configuration (the paper measured "multiple runs").
pub const RUNS: u32 = 5;

/// Runs all five configurations.
pub fn run(seed: u64) -> Table2 {
    let table = ClockTable::sa1100();
    let mut rows = Vec::new();

    let mut push =
        |label: String,
         spec: RunSpec,
         policy: Box<dyn Fn() -> Option<Box<dyn policies::ClockPolicy>>>| {
            let (stats, misses, last) = measure_energy(spec, &*policy, RUNS, TOLERANCE);
            rows.push(Table2Row {
                label,
                energy: stats.ci95().expect("multiple runs"),
                misses,
                clock_switches: last.clock_switches,
            });
        };

    push(
        "Constant Speed @ 206.4 MHz, 1.5 Volts".into(),
        RunSpec::new(Benchmark::Mpeg, 10)
            .for_secs(RUN_SECS)
            .with_seed(seed),
        Box::new(|| None),
    );
    push(
        "Constant Speed @ 132.7 MHz, 1.5 Volts".into(),
        RunSpec::new(Benchmark::Mpeg, 5)
            .for_secs(RUN_SECS)
            .with_seed(seed),
        Box::new(|| None),
    );
    push(
        "Constant Speed @ 132.7 MHz, 1.23 Volts".into(),
        RunSpec::new(Benchmark::Mpeg, 5)
            .for_secs(RUN_SECS)
            .with_seed(seed)
            .at_low_voltage(),
        Box::new(|| None),
    );
    let t1 = table.clone();
    push(
        "PAST, Peg - Peg, >98% up / <93% down, 1.5 Volts".into(),
        RunSpec::new(Benchmark::Mpeg, 10)
            .for_secs(RUN_SECS)
            .with_seed(seed),
        Box::new(move || Some(Box::new(IntervalScheduler::best_from_paper(t1.clone())))),
    );
    let t2 = table.clone();
    push(
        "PAST, Peg - Peg, Voltage Scaling @ 162.2 MHz".into(),
        RunSpec::new(Benchmark::Mpeg, 10)
            .for_secs(RUN_SECS)
            .with_seed(seed),
        Box::new(move || {
            Some(Box::new(
                IntervalScheduler::best_from_paper(t2.clone())
                    .with_voltage_rule(VoltageRule::default()),
            ))
        }),
    );

    // Silence unused-import warnings for the voltage constants used in
    // documentation and assertions.
    let _ = (V_HIGH, V_LOW);

    Table2 {
        rows,
        paper: [
            (85.59, 86.49),
            (79.59, 80.94),
            (73.76, 74.41),
            (85.03, 85.47),
            (84.60, 85.45),
        ],
    }
}

impl Table2 {
    /// Energy mean of a row.
    pub fn mean(&self, row: usize) -> f64 {
        self.rows[row].energy.mean
    }

    /// Writes the table as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &[
                "config",
                "energy_lo_j",
                "energy_hi_j",
                "paper_lo_j",
                "paper_hi_j",
                "misses",
                "clock_switches",
            ],
            &self
                .rows
                .iter()
                .zip(self.paper.iter())
                .map(|(r, p)| {
                    vec![
                        r.label.replace(',', ";"),
                        format!("{:.2}", r.energy.lo),
                        format!("{:.2}", r.energy.hi),
                        format!("{}", p.0),
                        format!("{}", p.1),
                        r.misses.to_string(),
                        r.clock_switches.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("table2", "energy", &doc).map(|_| ())
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: MPEG energy over {RUN_SECS}s, {RUNS} runs each (95% CI)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .zip(self.paper.iter())
            .map(|(r, p)| {
                vec![
                    r.label.clone(),
                    format!("{}", r.energy),
                    format!("{:.2} - {:.2}", p.0, p.1),
                    r.misses.to_string(),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &["Algorithm", "Energy (model)", "Energy (paper)", "misses"],
            &rows,
        ))
    }
}

/// The §5.4 voltage-scaling decomposition: running MPEG at 132.7 MHz,
/// how much does the 1.23 V rail cut core energy vs system energy?
///
/// The paper: "A[n] 8% energy reduction occurs when we drop the
/// processor voltage to 1.23V — this is less than the 15% maximum
/// reduction we measured because the application uses resources (e.g.
/// audio) that are not affected by voltage scaling."
pub fn voltage_decomposition(seed: u64) -> (f64, f64) {
    let hi = crate::runner::run_benchmark(
        &RunSpec::new(Benchmark::Mpeg, 5)
            .for_secs(30)
            .with_seed(seed),
        None,
    );
    let lo = crate::runner::run_benchmark(
        &RunSpec::new(Benchmark::Mpeg, 5)
            .for_secs(30)
            .with_seed(seed)
            .at_low_voltage(),
        None,
    );
    let core_cut = 1.0 - lo.core_energy.as_joules() / hi.core_energy.as_joules();
    let system_cut = 1.0 - lo.energy.as_joules() / hi.energy.as_joules();
    (core_cut, system_cut)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> &'static Table2 {
        use std::sync::OnceLock;
        static CELL: OnceLock<Table2> = OnceLock::new();
        CELL.get_or_init(|| run(1))
    }

    #[test]
    fn ordering_matches_the_paper() {
        let t = table();
        let e: Vec<f64> = (0..5).map(|i| t.mean(i)).collect();
        // 132.7/1.23 < 132.7/1.5 < PAST variants < 206.4/1.5.
        assert!(e[2] < e[1], "voltage drop must save energy: {e:?}");
        assert!(e[1] < e[4] && e[1] < e[3], "132.7 beats the policy: {e:?}");
        assert!(
            e[3] < e[0],
            "the policy must beat constant top speed: {e:?}"
        );
        assert!(
            e[4] <= e[3] + 0.5,
            "voltage scaling must not cost energy: {e:?}"
        );
    }

    #[test]
    fn past_policy_saving_is_statistically_significant() {
        let t = table();
        assert!(
            t.rows[3]
                .energy
                .significantly_different_from(&t.rows[0].energy),
            "PAST {} vs constant {}",
            t.rows[3].energy,
            t.rows[0].energy
        );
    }

    #[test]
    fn voltage_scaling_adds_no_significant_saving() {
        // The paper: "Allowing the processor to scale the voltage when
        // the clock speed drops below 162.2MHz results in no
        // statistical decrease."
        let t = table();
        let gap = t.mean(3) - t.mean(4);
        let significant = t.rows[4]
            .energy
            .significantly_different_from(&t.rows[3].energy);
        assert!(
            !significant || gap < 1.5,
            "voltage scaling saved {gap:.2}J significantly — too strong"
        );
    }

    #[test]
    fn no_configuration_misses_deadlines() {
        let t = table();
        for r in &t.rows {
            assert_eq!(r.misses, 0, "{} missed deadlines", r.label);
        }
    }

    #[test]
    fn magnitudes_are_in_the_papers_range() {
        // Absolute numbers need not match, but the model is calibrated
        // to land in the same tens-of-joules regime.
        let t = table();
        for (r, p) in t.rows.iter().zip(t.paper.iter()) {
            let rel = (r.energy.mean - (p.0 + p.1) / 2.0).abs() / ((p.0 + p.1) / 2.0);
            assert!(rel < 0.25, "{}: {} vs paper {:?}", r.label, r.energy, p);
        }
    }

    #[test]
    fn repeatability_matches_papers_criterion() {
        // 95% CI well under 0.7% of the mean.
        let t = table();
        for r in &t.rows {
            assert!(
                r.energy.relative_half_width() < 0.007,
                "{}: CI {:.3}%",
                r.label,
                r.energy.relative_half_width() * 100.0
            );
        }
    }

    #[test]
    fn voltage_cut_is_large_on_the_core_small_on_the_system() {
        // Core power drops ~15-18%; the system sees roughly half that,
        // "because the application uses resources that are not affected
        // by voltage scaling".
        let (core_cut, system_cut) = voltage_decomposition(1);
        assert!(
            (0.12..=0.22).contains(&core_cut),
            "core reduction = {:.1}%",
            core_cut * 100.0
        );
        assert!(
            system_cut < core_cut / 1.5,
            "system {:.1}% vs core {:.1}%",
            system_cut * 100.0,
            core_cut * 100.0
        );
        assert!(system_cut > 0.02);
    }

    #[test]
    fn policy_switches_frequently_constants_never() {
        let t = table();
        assert_eq!(t.rows[0].clock_switches, 0);
        assert_eq!(t.rows[1].clock_switches, 0);
        assert!(t.rows[3].clock_switches > 50);
    }
}
