//! CLI smoke tests for the `repro` binary.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn results_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("itsy-dvs-repro-test-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fast_experiments_run_and_write_csv() {
    let dir = results_dir("fast");
    let out = repro()
        .env("REPRO_RESULTS_DIR", &dir)
        .args(["table3", "sa2", "fig5", "table1", "fig6"])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 3"));
    assert!(text.contains("Scheduling Actions for the AVG_9 Policy"));
    // CSVs landed where REPRO_RESULTS_DIR pointed.
    assert!(dir.join("table3").join("memory_cycles.csv").exists());
    assert!(dir.join("fig5").join("going_idle.csv").exists());
}

#[test]
fn seed_flag_changes_stochastic_outputs() {
    let run = |seed: &str, tag: &str| {
        let dir = results_dir(tag);
        let out = repro()
            .env("REPRO_RESULTS_DIR", &dir)
            .args(["--seed", seed, "fig8"])
            .output()
            .unwrap();
        assert!(out.status.success());
        std::fs::read_to_string(dir.join("fig8").join("freq_mhz.csv")).unwrap()
    };
    let a = run("1", "seed1");
    let b = run("1", "seed1b");
    let c = run("2", "seed2");
    assert_eq!(a, b, "same seed must reproduce bit-identically");
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn unknown_experiment_exits_nonzero() {
    let out = repro().arg("nosuchexperiment").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}
