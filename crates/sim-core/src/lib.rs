//! Discrete-event simulation engine and base quantity types.
//!
//! This crate provides the foundation every other `itsy-dvs` crate builds
//! on: a microsecond-resolution virtual clock ([`SimTime`]), physical
//! quantity newtypes ([`Frequency`], [`Voltage`], [`Energy`], [`Power`]),
//! a deterministic pending-event queue ([`EventQueue`]), a seedable
//! pseudo-random number generator ([`Rng`]) and simple time-series
//! containers ([`TimeSeries`]).
//!
//! Nothing in this crate knows about CPUs, kernels or scheduling policies;
//! it is a generic substrate comparable to the core of any event-driven
//! systems simulator.
//!
//! # Determinism
//!
//! All randomness flows through [`Rng`], which is seeded explicitly. Two
//! simulations constructed with the same configuration and seed produce
//! bit-identical results; wall-clock time never enters the simulation.

pub mod event;
pub mod fidelity;
pub mod histogram;
pub mod log_histogram;
pub mod quantity;
pub mod rng;
pub mod series;
pub mod sketch;
pub mod stats;
pub mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use fidelity::SimFidelity;
pub use histogram::Histogram;
pub use log_histogram::LogHistogram;
pub use quantity::{Energy, Frequency, Power, Voltage};
pub use rng::Rng;
pub use series::TimeSeries;
pub use sketch::FleetSummary;
pub use stats::{mean, rate_per_sec, student_t_975, ConfidenceInterval, KahanSum, RunStats};
pub use time::{SimDuration, SimTime};
