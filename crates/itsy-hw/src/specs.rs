//! The Itsy v1.5 data sheet (§2.3), as constants.
//!
//! Descriptive facts from the paper's hardware overview, kept here so
//! reports and examples can cite the platform without magic numbers:
//! "a small, high-resolution display, which offers pixels on a 0.18mm
//! pixel pitch, and 15 levels of greyscale", "up to 128 Mbytes both of
//! DRAM and flash memory", "the Itsy version 1.5 units used as the
//! basis for this work have 64 Mbytes of DRAM and 32 Mbytes of flash
//! memory", "can be powered either by an external supply or by two
//! size AAA batteries", with the processor core on a 1.5 V supply and
//! peripherals on 3.3 V.

/// Display width in pixels.
pub const DISPLAY_WIDTH: u32 = 200;

/// Display height in pixels.
pub const DISPLAY_HEIGHT: u32 = 320;

/// Display pixel pitch in millimetres.
pub const PIXEL_PITCH_MM: f64 = 0.18;

/// Greyscale levels the panel renders.
pub const GREYSCALE_LEVELS: u32 = 15;

/// DRAM fitted to the v1.5 units used in the study, bytes.
pub const DRAM_BYTES: u64 = 64 * 1024 * 1024;

/// Flash fitted to the v1.5 units, bytes.
pub const FLASH_BYTES: u64 = 32 * 1024 * 1024;

/// Architectural maximum for either memory type, bytes.
pub const MAX_MEMORY_BYTES: u64 = 128 * 1024 * 1024;

/// Peripheral supply rail, millivolts.
pub const PERIPHERAL_RAIL_MV: u32 = 3_300;

/// Bench-supply voltage feeding both rails in the instrumented setup,
/// millivolts ("a single supply connected to the electrical mains",
/// 3.1 V).
pub const BENCH_SUPPLY_MV: u32 = 3_100;

/// The timer the paper's `gettimeofday` measurements used, Hz
/// ("the 3.6 MHz clock available on the processor" — the SA-1100's
/// 3.6864 MHz OS timer).
pub const OS_TIMER_HZ: u32 = 3_686_400;

/// Sense resistor on the instrumented units, milliohms.
pub const SENSE_RESISTOR_MOHM: u32 = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_paper() {
        assert_eq!((DISPLAY_WIDTH, DISPLAY_HEIGHT), (200, 320));
        assert_eq!(GREYSCALE_LEVELS, 15);
        // Physical size ~36 x 58 mm at the stated pitch.
        let w_mm = DISPLAY_WIDTH as f64 * PIXEL_PITCH_MM;
        assert!((35.0..37.0).contains(&w_mm));
    }

    #[test]
    fn memory_fits_the_architecture() {
        // Computed at runtime so the assertions exercise real values
        // rather than constant folds.
        let (dram, flash, max) = (DRAM_BYTES, FLASH_BYTES, MAX_MEMORY_BYTES);
        let fits = |x: u64| x <= max;
        assert!(fits(dram) && fits(flash));
        assert_eq!(dram, 2 * flash);
    }

    #[test]
    fn rails_are_consistent_with_the_models() {
        use crate::clock::V_HIGH;
        assert!(V_HIGH.as_mv() < PERIPHERAL_RAIL_MV);
        assert_eq!(BENCH_SUPPLY_MV, 3_100);
    }

    #[test]
    fn os_timer_resolves_microseconds() {
        // 3.6864 MHz -> 0.27 us per tick: fine enough for the paper's
        // microsecond-resolution scheduler log.
        let tick_us = 1e6 / OS_TIMER_HZ as f64;
        assert!(tick_us < 1.0);
    }

    #[test]
    fn sense_resistor_matches_the_daq_default() {
        let ohms = SENSE_RESISTOR_MOHM as f64 / 1000.0;
        assert!((ohms - daq_default_sense()).abs() < 1e-12);
    }

    fn daq_default_sense() -> f64 {
        // Mirror of daq::TwoChannelDaq::default().sense_ohms, kept
        // in sync by this test (itsy-hw cannot depend on daq).
        0.02
    }
}
