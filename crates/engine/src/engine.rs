//! The batch executor: worker pool + cache + journal + progress.
//!
//! [`Engine::run_batch`] takes a named list of [`JobSpec`]s and returns
//! one [`JobResult`] per spec, in spec order. Three layers may satisfy
//! a cell before a simulator runs:
//!
//! 1. the batch journal (when resuming an interrupted run),
//! 2. the content-addressed cache (unless disabled),
//! 3. the worker pool, which simulates whatever is left.
//!
//! Results land in a slot vector indexed by submission order, so output
//! is a pure function of the specs — never of worker count or of which
//! worker finished first. Cache and journal writes happen only on the
//! collector (calling) thread; workers just simulate and send.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal};

use crate::cache::ResultCache;
use crate::job::{JobResult, JobSpec};
use crate::journal::Journal;

/// How a batch should be executed.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Consult and populate the on-disk result cache.
    pub use_cache: bool,
    /// Replay this batch's journal before running anything.
    pub resume: bool,
    /// Root for engine state (`<root>/cache`, `<root>/state`).
    /// Defaults to the repro results directory.
    pub state_root: Option<PathBuf>,
    /// Emit progress / throughput lines on stderr.
    pub progress: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            use_cache: true,
            resume: false,
            state_root: None,
            progress: false,
        }
    }
}

impl EngineConfig {
    /// Config for unit tests and benches: sequential, no disk state,
    /// no output.
    pub fn hermetic() -> Self {
        EngineConfig {
            jobs: 1,
            use_cache: false,
            resume: false,
            state_root: None,
            progress: false,
        }
    }

    /// Config for library callers: all cores, no disk state, no
    /// output. This is what `experiments::*::run()` uses so that test
    /// suites stay hermetic; the `repro` binary opts into cache,
    /// resume and progress explicitly.
    pub fn in_memory() -> Self {
        EngineConfig {
            jobs: 0,
            ..Self::hermetic()
        }
    }
}

/// What a batch cost and where its results came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Cells requested.
    pub total: usize,
    /// Cells served from the result cache.
    pub cache_hits: usize,
    /// Cells served from an interrupted run's journal.
    pub journal_hits: usize,
    /// Cells actually simulated.
    pub executed: usize,
    /// Worker threads used (0 when nothing needed executing).
    pub workers: usize,
    /// Wall-clock time for the whole batch, µs.
    pub elapsed_us: u64,
}

impl BatchStats {
    /// Simulated cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.executed as f64 / (self.elapsed_us as f64 / 1e6)
    }
}

/// Results plus accounting for one batch.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One result per input spec, in input order.
    pub results: Vec<JobResult>,
    /// Where they came from and what they cost.
    pub stats: BatchStats,
}

/// The parallel, cache-aware experiment executor.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Worker count after resolving `jobs = 0` to the machine's
    /// available parallelism.
    pub fn worker_count(&self) -> usize {
        if self.config.jobs > 0 {
            self.config.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Root directory for cache and journal state.
    fn state_root(&self) -> PathBuf {
        self.config.state_root.clone().unwrap_or_else(|| {
            std::env::var_os("REPRO_RESULTS_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("results"))
        })
    }

    /// Runs every spec, returning results in spec order.
    ///
    /// `batch` names the journal, so interrupting this call and
    /// re-running with `resume` set picks up where it stopped. The
    /// journal is always *written* (recovery must not require having
    /// predicted the crash); `resume` only controls whether an existing
    /// one is replayed. A batch that completes deletes its journal.
    pub fn run_batch(&self, batch: &str, specs: &[JobSpec]) -> BatchOutcome {
        let started = Instant::now();
        let root = self.state_root();
        let cache = self
            .config
            .use_cache
            .then(|| ResultCache::new(root.join("cache")));
        let state_dir = root.join("state");

        // Layer 1 + 2: satisfy cells from journal and cache up front.
        let journaled = if self.config.resume {
            Journal::replay(&state_dir, batch)
        } else {
            Default::default()
        };
        let mut slots: Vec<Option<JobResult>> = Vec::with_capacity(specs.len());
        let (mut journal_hits, mut cache_hits) = (0usize, 0usize);
        for spec in specs {
            let hit = journaled.get(&spec.key()).copied().inspect(|r| {
                journal_hits += 1;
                // Backfill the cache so the next batch doesn't depend
                // on the journal surviving.
                if let Some(cache) = &cache {
                    let _ = cache.store(spec, r);
                }
            });
            let hit = hit.or_else(|| {
                cache
                    .as_ref()
                    .and_then(|c| c.load(spec))
                    .inspect(|_| cache_hits += 1)
            });
            slots.push(hit);
        }

        let pending: Vec<(usize, JobSpec)> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| (i, specs[i].clone()))
            .collect();

        let mut journal = match Journal::open(&state_dir, batch) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("engine: journal disabled for `{batch}`: {e}");
                None
            }
        };

        // Layer 3: simulate the rest on the worker pool.
        let workers = self.worker_count().min(pending.len());
        if !pending.is_empty() {
            let injector = Injector::new();
            let to_run = pending.len();
            for job in pending {
                injector.push(job);
            }
            let (tx, rx) = mpsc::channel::<(usize, JobResult)>();
            crossbeam::thread::scope(|s| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let injector = &injector;
                    s.spawn(move |_| loop {
                        match injector.steal() {
                            Steal::Success((i, spec)) => {
                                if tx.send((i, spec.execute())).is_err() {
                                    break;
                                }
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    });
                }
                drop(tx);

                // Collector: the only thread touching disk or slots.
                let mut done = 0usize;
                let mut last_report = Instant::now();
                for (i, result) in rx {
                    let spec = &specs[i];
                    if let Some(cache) = &cache {
                        if let Err(e) = cache.store(spec, &result) {
                            eprintln!("engine: cache write failed for {}: {e}", spec.key());
                        }
                    }
                    if let Some(j) = &mut journal {
                        if let Err(e) = j.record(spec.key(), &result) {
                            eprintln!("engine: journal write failed: {e}");
                        }
                    }
                    slots[i] = Some(result);
                    done += 1;
                    if self.config.progress
                        && (done == to_run || last_report.elapsed() >= Duration::from_millis(500))
                    {
                        last_report = Instant::now();
                        let rate = done as f64 / started.elapsed().as_secs_f64().max(1e-9);
                        let eta = (to_run - done) as f64 / rate.max(1e-9);
                        eprintln!(
                            "[{batch}] {done}/{to_run} simulated \
                             ({skipped} reused) — {rate:.1} cells/s, ETA {eta:.0}s",
                            skipped = journal_hits + cache_hits,
                        );
                    }
                }
            })
            .expect("engine worker panicked");
        }

        if let Some(j) = journal.take() {
            if let Err(e) = j.finish() {
                eprintln!("engine: could not clear journal for `{batch}`: {e}");
            }
        }

        let stats = BatchStats {
            total: specs.len(),
            cache_hits,
            journal_hits,
            executed: specs.len() - cache_hits - journal_hits,
            workers,
            elapsed_us: started.elapsed().as_micros() as u64,
        };
        if self.config.progress {
            eprintln!(
                "[{batch}] {} cells in {:.1}s: {} simulated on {} worker(s), \
                 {} cache hit(s), {} journal hit(s)",
                stats.total,
                stats.elapsed_us as f64 / 1e6,
                stats.executed,
                stats.workers,
                stats.cache_hits,
                stats.journal_hits,
            );
        }
        BatchOutcome {
            results: slots
                .into_iter()
                .map(|s| s.expect("every slot filled"))
                .collect(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkloadSpec;
    use policies::{Hysteresis, PolicyDesc, PredictorDesc, SpeedChange};
    use workloads::Benchmark;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("engine-pool-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A small grid of genuinely distinct 2-second jobs.
    fn grid() -> Vec<JobSpec> {
        let mut specs = Vec::new();
        for bench in [Benchmark::Mpeg, Benchmark::Web] {
            for up in [SpeedChange::One, SpeedChange::Peg] {
                specs.push(JobSpec::new(
                    WorkloadSpec::Benchmark(bench),
                    PolicyDesc::interval(
                        PredictorDesc::Past,
                        Hysteresis::BEST,
                        up,
                        SpeedChange::Peg,
                    ),
                    2,
                    42,
                ));
            }
        }
        specs
    }

    #[test]
    fn one_worker_and_many_workers_agree_bit_for_bit() {
        let specs = grid();
        let serial = Engine::new(EngineConfig::hermetic()).run_batch("t", &specs);
        let parallel = Engine::new(EngineConfig {
            jobs: 8,
            ..EngineConfig::hermetic()
        })
        .run_batch("t", &specs);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.stats.executed, specs.len());
        assert_eq!(parallel.stats.workers, specs.len().min(8));
    }

    #[test]
    fn warm_cache_skips_every_cell_and_matches_cold() {
        let root = temp_root("warm");
        let config = EngineConfig {
            jobs: 2,
            use_cache: true,
            state_root: Some(root.clone()),
            ..EngineConfig::hermetic()
        };
        let specs = grid();
        let cold = Engine::new(config.clone()).run_batch("t", &specs);
        assert_eq!(cold.stats.executed, specs.len());
        assert_eq!(cold.stats.cache_hits, 0);

        let warm = Engine::new(config).run_batch("t", &specs);
        assert_eq!(warm.stats.executed, 0, "warm run must simulate nothing");
        assert_eq!(warm.stats.cache_hits, specs.len());
        assert_eq!(warm.results, cold.results, "cache round trip is bit-exact");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn resume_replays_journal_even_without_cache() {
        let root = temp_root("resume");
        let specs = grid();
        // Fake an interrupted run: journal holds the first two cells.
        let reference = Engine::new(EngineConfig::hermetic()).run_batch("t", &specs);
        let state_dir = root.join("state");
        let mut j = Journal::open(&state_dir, "t").expect("open");
        for (spec, r) in specs.iter().zip(&reference.results).take(2) {
            j.record(spec.key(), r).expect("record");
        }
        drop(j);

        let resumed = Engine::new(EngineConfig {
            resume: true,
            state_root: Some(root.clone()),
            ..EngineConfig::hermetic()
        })
        .run_batch("t", &specs);
        assert_eq!(resumed.stats.journal_hits, 2);
        assert_eq!(resumed.stats.executed, specs.len() - 2);
        assert_eq!(resumed.results, reference.results);
        // Completion cleared the journal.
        assert!(Journal::replay(&state_dir, "t").is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = Engine::new(EngineConfig::hermetic()).run_batch("t", &[]);
        assert!(out.results.is_empty());
        assert_eq!(out.stats.total, 0);
        assert_eq!(out.stats.executed, 0);
    }
}
