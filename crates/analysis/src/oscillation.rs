//! Oscillation metrics: does a filtered utilization signal settle?
//!
//! Figure 7 of the paper shows the result of AVG_3 filtering a 9-busy /
//! 1-idle rectangle wave: instead of settling at the 0.9 mean, the
//! weighted utilization oscillates "over a surprisingly wide range".
//! [`steady_state_band`] quantifies that: the min/max band of the
//! filter output after transients die out. A policy whose hysteresis
//! band lies inside the oscillation band will flap between clock steps
//! forever.

/// The post-transient excursion band of a signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillationBand {
    /// Smallest steady-state value.
    pub min: f64,
    /// Largest steady-state value.
    pub max: f64,
    /// Mean steady-state value.
    pub mean: f64,
}

impl OscillationBand {
    /// Peak-to-peak swing.
    pub fn swing(&self) -> f64 {
        self.max - self.min
    }

    /// True if the band straddles either hysteresis bound — the filter
    /// output will repeatedly cross it and the governor will keep
    /// changing speed.
    pub fn destabilizes(&self, up: f64, down: f64) -> bool {
        (self.min < up && up < self.max) || (self.min < down && down < self.max)
    }
}

/// Computes the oscillation band of `signal`, ignoring the first
/// `skip_transient` samples.
///
/// # Panics
///
/// Panics if nothing remains after the transient skip.
pub fn steady_state_band(signal: &[f64], skip_transient: usize) -> OscillationBand {
    let steady = &signal[skip_transient.min(signal.len())..];
    assert!(
        !steady.is_empty(),
        "no steady-state samples left after skipping {skip_transient}"
    );
    let min = steady.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = steady.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = steady.iter().sum::<f64>() / steady.len() as f64;
    OscillationBand { min, max, mean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::avg_n_response;
    use crate::window::square_wave;

    #[test]
    fn constant_signal_has_zero_swing() {
        let band = steady_state_band(&[0.5; 100], 10);
        assert_eq!(band.swing(), 0.0);
        assert_eq!(band.mean, 0.5);
    }

    #[test]
    fn figure7_avg3_oscillates_over_a_wide_band() {
        // AVG_3 filtering the 9-busy/1-idle wave: the paper's Figure 7
        // shows sustained oscillation roughly between 0.7 and 1.0.
        let wave = square_wave(9, 1, 800);
        let out = avg_n_response(3, &wave);
        let band = steady_state_band(&out, 100);
        assert!(band.swing() > 0.15, "swing = {}", band.swing());
        assert!(band.max > 0.95, "max = {}", band.max);
        assert!(band.min < 0.80, "min = {}", band.min);
        // The oscillation persists to the end: the last period still
        // swings.
        let last_period = steady_state_band(&out, out.len() - 10);
        assert!(last_period.swing() > 0.15);
    }

    #[test]
    fn oscillation_never_converges_even_started_at_ideal_speed() {
        // The paper: "even if the system is started out at the ideal
        // clock speed, AVG_N smoothing will still result in undesirable
        // oscillation". Start the filter at the wave's mean.
        let wave = square_wave(9, 1, 1000);
        let nf = 3.0;
        let mut w = 0.9; // ideal steady value
        let out: Vec<f64> = wave
            .iter()
            .map(|&u| {
                w = (nf * w + u) / (nf + 1.0);
                w
            })
            .collect();
        let band = steady_state_band(&out, 900);
        assert!(band.swing() > 0.15, "swing = {}", band.swing());
    }

    #[test]
    fn larger_n_narrows_but_does_not_eliminate_the_band() {
        let wave = square_wave(9, 1, 2000);
        let band3 = steady_state_band(&avg_n_response(3, &wave), 500);
        let band9 = steady_state_band(&avg_n_response(9, &wave), 500);
        assert!(band9.swing() < band3.swing());
        assert!(band9.swing() > 0.02, "N=9 swing = {}", band9.swing());
    }

    #[test]
    fn destabilization_test_matches_band_position() {
        let band = OscillationBand {
            min: 0.7,
            max: 1.0,
            mean: 0.9,
        };
        // Pering's 70%/50% bounds: the upper bound sits below the band,
        // the lower below it too -> with this load the governor pegs
        // high and stays (a different pathology).
        assert!(!band.destabilizes(0.70, 0.50));
        // The paper's 98%/93% bounds sit inside the band -> flapping.
        assert!(band.destabilizes(0.98, 0.93));
    }

    #[test]
    #[should_panic(expected = "no steady-state samples")]
    fn overlong_transient_skip_panics() {
        let _ = steady_state_band(&[1.0; 5], 5);
    }
}
