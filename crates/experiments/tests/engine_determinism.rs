//! The engine's two headline guarantees, exercised through the real
//! sweep harness (not synthetic jobs):
//!
//! 1. worker count never changes results — `--jobs 1` and `--jobs 8`
//!    produce bit-identical sweeps;
//! 2. the cache round trip is exact — a warm re-run simulates nothing
//!    and returns byte-for-byte the cold run's numbers.

use engine::{Engine, EngineConfig};
use experiments::sweep::{self, SweepConfig};
use policies::{Hysteresis, SpeedChange};
use workloads::Benchmark;

/// A sweep grid small enough for CI but still crossing workloads,
/// predictors and rules: 2 baselines + 2x2x2x2x1 = 18 cells.
fn tiny_grid() -> SweepConfig {
    SweepConfig {
        benchmarks: vec![Benchmark::Mpeg, Benchmark::Web],
        ns: vec![0, 3],
        rules: vec![SpeedChange::One, SpeedChange::Peg],
        thresholds: vec![Hysteresis::BEST],
        secs: 3,
    }
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "experiments-engine-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Byte-level fingerprint of a sweep: every cell's identity plus the
/// exact bits of every float.
fn fingerprint(s: &sweep::Sweep) -> String {
    let mut out = String::new();
    for (b, e) in &s.baselines {
        out.push_str(&format!("base {} {:016x}\n", b.name(), e.to_bits()));
    }
    for c in &s.cells {
        out.push_str(&format!(
            "{} n={} {}-{} {} {:016x} {} {}\n",
            c.benchmark.name(),
            c.n,
            c.up.label(),
            c.down.label(),
            c.thresholds,
            c.energy_j.to_bits(),
            c.misses,
            c.switches
        ));
    }
    out
}

#[test]
fn sweep_is_bit_identical_across_worker_counts() {
    let config = tiny_grid();
    let one = Engine::new(EngineConfig::hermetic());
    let eight = Engine::new(EngineConfig {
        jobs: 8,
        ..EngineConfig::hermetic()
    });
    let (s1, st1, _) = sweep::run_with(&one, &config, 7);
    let (s8, st8, _) = sweep::run_with(&eight, &config, 7);
    assert_eq!(st1.executed, st8.executed, "both runs simulate every cell");
    assert_eq!(
        fingerprint(&s1),
        fingerprint(&s8),
        "jobs=1 and jobs=8 must agree bit for bit"
    );
}

#[test]
fn warm_cache_run_simulates_nothing_and_matches_cold() {
    let root = temp_root("warm");
    let config = tiny_grid();
    let engine = Engine::new(EngineConfig {
        jobs: 4,
        use_cache: true,
        state_root: Some(root.clone()),
        ..EngineConfig::hermetic()
    });

    let (cold, cold_stats, _) = sweep::run_with(&engine, &config, 7);
    assert_eq!(cold_stats.cache_hits, 0, "cold cache has nothing to hit");
    assert_eq!(cold_stats.executed, cold_stats.total);

    let (warm, warm_stats, _) = sweep::run_with(&engine, &config, 7);
    assert_eq!(
        warm_stats.executed, 0,
        "warm run must re-simulate zero cells"
    );
    assert_eq!(warm_stats.cache_hits, warm_stats.total, "100% hit rate");
    assert_eq!(
        fingerprint(&cold),
        fingerprint(&warm),
        "cache round trip must be byte-identical"
    );

    // A different seed is a different grid: full miss, no stale reuse.
    let (_, other_stats, _) = sweep::run_with(&engine, &config, 8);
    assert_eq!(other_stats.cache_hits, 0, "other seeds must not hit");

    let _ = std::fs::remove_dir_all(&root);
}
