//! Property-based tests for [`sim_core::LogHistogram`]: percentile
//! queries against a naive sorted-vec oracle, monotonicity of the
//! quantile chain p50 ≤ p90 ≤ p99 ≤ max, and the mergeable-sketch
//! algebra fleet aggregation depends on — merge is associative and
//! commutative bit-for-bit, and sharding a stream across workers then
//! merging equals single-pass recording byte-for-byte.

use proptest::prelude::*;

use sim_core::LogHistogram;

/// Nearest-rank percentile over the raw samples — the oracle the
/// histogram's bucketed estimate must track.
fn oracle_percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// One bucket spans the ratio 2^(1/16), so a bucket's geometric
/// midpoint is within 2^(1/32) ≈ 1.022 of every sample in it.
const BUCKET_TOL: f64 = 0.03;

proptest! {
    /// Every percentile estimate lands within one bucket's relative
    /// error of the nearest-rank oracle on the raw samples.
    #[test]
    fn percentiles_track_sorted_vec_oracle(
        samples in proptest::collection::vec(1e-6f64..1e12, 1..400),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for &q in &qs {
            let got = h.percentile(q).expect("non-empty");
            let want = oracle_percentile(&sorted, q);
            let rel = (got / want - 1.0).abs();
            prop_assert!(
                rel <= BUCKET_TOL,
                "q={q}: histogram {got} vs oracle {want} (rel err {rel:.4})"
            );
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), Some(sorted[0]));
        prop_assert_eq!(h.max(), Some(*sorted.last().unwrap()));
    }

    /// p50 ≤ p90 ≤ p99 ≤ max for arbitrary sample sets, including
    /// zeros and negatives (which share the zero bucket).
    #[test]
    fn quantile_chain_is_monotone(
        samples in proptest::collection::vec(-10.0f64..1e9, 1..400),
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let p50 = h.percentile(0.50).expect("non-empty");
        let p90 = h.percentile(0.90).expect("non-empty");
        let p99 = h.percentile(0.99).expect("non-empty");
        let max = h.max().expect("non-empty");
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        prop_assert!(p99 <= max, "p99 {p99} > max {max}");
    }

    /// Splitting a sample set across workers and merging gives the
    /// same histogram as recording everything in one, wherever the
    /// split falls.
    #[test]
    fn merge_is_split_invariant(
        samples in proptest::collection::vec(1e-3f64..1e9, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((samples.len() as f64 * split_frac) as usize).min(samples.len());
        let mut a = LogHistogram::new();
        for &s in &samples[..split] {
            a.record(s);
        }
        let mut b = LogHistogram::new();
        for &s in &samples[split..] {
            b.record(s);
        }
        a.merge(&b);
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        // The sum is fixed-point, so even it is exact: the merged
        // histogram is byte-identical to single-pass recording.
        prop_assert_eq!(&a, &whole);
        prop_assert_eq!(a.encode(), whole.encode());
    }

    /// Merge is associative and commutative *bit-for-bit*: any
    /// parenthesization and any operand order of three histograms
    /// encodes to the same bytes. This is what makes per-worker shard
    /// folding deterministic at any `--jobs`.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in proptest::collection::vec(-1.0f64..1e9, 0..60),
        ys in proptest::collection::vec(1e-9f64..1e12, 0..60),
        zs in proptest::collection::vec(0.0f64..1e3, 0..60),
    ) {
        let hist = |vals: &[f64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (hist(&xs), hist(&ys), hist(&zs));

        // ((a ⊕ b) ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // (a ⊕ (b ⊕ c))
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.encode(), right.encode(), "associativity");

        // (c ⊕ b) ⊕ a — a fully reversed order.
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        prop_assert_eq!(left.encode(), rev.encode(), "commutativity");
    }

    /// Round-robin sharding across k workers, each folding locally,
    /// then merging the shards equals single-pass aggregation
    /// byte-for-byte — the fleet invariant behind identical population
    /// summaries across `--jobs 1/4/8`.
    #[test]
    fn sharded_merge_equals_single_pass(
        samples in proptest::collection::vec(-10.0f64..1e10, 0..300),
        shards in 1usize..9,
    ) {
        let mut parts = vec![LogHistogram::new(); shards];
        let mut whole = LogHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            parts[i % shards].record(s);
            whole.record(s);
        }
        let mut merged = LogHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.encode(), whole.encode());
    }

    /// encode → decode is the identity on reachable states.
    #[test]
    fn codec_round_trips(
        samples in proptest::collection::vec(-100.0f64..1e12, 0..200),
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let decoded = LogHistogram::decode(&h.encode());
        prop_assert_eq!(decoded, Some(h));
    }
}
