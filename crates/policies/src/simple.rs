//! The Figure 5 "simple averaging" strawman policy.
//!
//! §5.2 of the paper: "One simple policy would determine the number of
//! 'busy' instructions during the previous N 10ms scheduling quanta and
//! predict that activity in the next quanta would have the same
//! percentage of busy cycles. The clock speed would then be set to
//! insure enough busy cycles. This policy sounds simple, but it results
//! in exceptionally poor responsiveness."
//!
//! The asymmetry Figure 5 illustrates: when the load disappears the
//! average (of non-idle cycle counts) collapses quickly because idle
//! quanta contribute zero; but when load arrives while the clock is slow,
//! each busy quantum only contributes `59 MHz`-worth of cycles, so the
//! estimated requirement — and hence the speed — creeps up very slowly.

use std::collections::VecDeque;

use sim_core::{Frequency, SimTime};

use itsy_hw::{ClockTable, StepIndex};

use crate::governor::{ClockPolicy, PolicyRequest};

/// Averages non-idle cycles (expressed as effective MHz) over the last
/// `N` quanta and selects the smallest step that covers the average.
#[derive(Debug, Clone)]
pub struct NonIdleCycleAvg {
    window: VecDeque<f64>,
    n: usize,
    table: ClockTable,
}

impl NonIdleCycleAvg {
    /// Creates the policy with a window of `n` quanta (the paper's
    /// example uses 4).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, table: ClockTable) -> Self {
        assert!(n > 0, "window must hold at least one quantum");
        NonIdleCycleAvg {
            window: VecDeque::with_capacity(n),
            n,
            table,
        }
    }

    /// The current average requirement in MHz (reporting).
    pub fn average_mhz(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }

    fn record(&mut self, utilization: f64, freq: Frequency) {
        if self.window.len() == self.n {
            self.window.pop_front();
        }
        self.window.push_back(freq.as_mhz_f64() * utilization);
    }
}

impl ClockPolicy for NonIdleCycleAvg {
    fn on_interval(
        &mut self,
        _now: SimTime,
        utilization: f64,
        current_step: StepIndex,
    ) -> PolicyRequest {
        self.record(utilization.clamp(0.0, 1.0), self.table.freq(current_step));
        let need = Frequency::from_khz((self.average_mhz() * 1_000.0).ceil() as u32);
        let target = if need.as_khz() == 0 {
            self.table.slowest()
        } else {
            self.table.step_at_least(need)
        };
        PolicyRequest {
            step: (target != current_step).then_some(target),
            voltage: None,
        }
    }

    fn name(&self) -> String {
        format!("NonIdleCycleAvg_{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> NonIdleCycleAvg {
        NonIdleCycleAvg::new(4, ClockTable::sa1100())
    }

    /// Figure 5(a): going to idle. Window starts as four busy quanta at
    /// 206.4; successive idle quanta drag the average down fast.
    #[test]
    fn going_to_idle_drops_quickly() {
        let mut p = policy();
        let mut step = 10;
        let mut t = 0u64;
        let mut next = |p: &mut NonIdleCycleAvg, u: f64, s: StepIndex| {
            t += 10;
            p.on_interval(SimTime::from_millis(t), u, s)
        };
        // Prime: four fully-busy quanta at 206.4 MHz.
        for _ in 0..4 {
            let req = next(&mut p, 1.0, step);
            assert_eq!(req.step, None, "fully busy at the top: stay");
        }
        assert!((p.average_mhz() - 206.4).abs() < 1e-9);
        // First idle quantum: avg (3x206.4)/4 = 154.8 -> 162.2 MHz.
        let req = next(&mut p, 0.0, step);
        assert_eq!(req.step, Some(7));
        step = 7;
        // Second idle quantum: avg (2x206.4)/4 = 103.2 -> 103.2 MHz.
        let req = next(&mut p, 0.0, step);
        assert_eq!(req.step, Some(3));
        step = 3;
        // Third idle quantum: avg 206.4/4 = 51.6 -> 59 MHz.
        let req = next(&mut p, 0.0, step);
        assert_eq!(req.step, Some(0));
        step = 0;
        // Fourth: avg 0 -> stay at 59.
        let req = next(&mut p, 0.0, step);
        assert_eq!(req.step, None);
    }

    /// Figure 5(b): speeding up. Busy quanta at 59 MHz only contribute
    /// 59 MHz worth of cycles, so the estimate grows very slowly.
    #[test]
    fn speeding_up_is_sluggish() {
        let mut p = policy();
        let step = 0;
        // Prime with idle quanta at 59 MHz.
        for i in 0..4 {
            p.on_interval(SimTime::from_millis(10 * i), 0.0, step);
        }
        // Now the load arrives: fully busy quanta at 59 MHz.
        // avg after 1: 14.75, after 2: 29.5, after 3: 44.25 -> all <= 59.
        for i in 0..3 {
            let req = p.on_interval(SimTime::from_millis(40 + 10 * i), 1.0, step);
            assert_eq!(
                req.step,
                None,
                "policy stuck at 59 MHz after {} busy quanta",
                i + 1
            );
        }
        assert!((p.average_mhz() - 44.25).abs() < 1e-9);
        // Even with the window saturated it only asks for 59 MHz.
        let req = p.on_interval(SimTime::from_millis(70), 1.0, step);
        assert_eq!(req.step, None);
        assert!((p.average_mhz() - 59.0).abs() < 1e-9);
    }

    #[test]
    fn average_mhz_empty_is_zero() {
        let p = policy();
        assert_eq!(p.average_mhz(), 0.0);
    }

    #[test]
    fn partial_utilization_counts_fractionally() {
        let mut p = policy();
        p.on_interval(SimTime::ZERO, 0.5, 10); // 103.2 MHz effective
        assert!((p.average_mhz() - 103.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one quantum")]
    fn zero_window_rejected() {
        let _ = NonIdleCycleAvg::new(0, ClockTable::sa1100());
    }
}
