//! Seed robustness: the reproduction's headline shapes must hold for
//! seeds the models were never tuned against.

use itsy_dvs::repro;

#[test]
fn table2_ordering_holds_across_seeds() {
    for seed in [1, 5, 23] {
        let t = repro::table2::run(seed);
        let e: Vec<f64> = (0..5).map(|i| t.mean(i)).collect();
        assert!(e[2] < e[1], "seed {seed}: voltage drop must save ({e:?})");
        assert!(
            e[1] < e[3] && e[1] < e[4],
            "seed {seed}: 132.7 beats the policy ({e:?})"
        );
        assert!(
            e[3] < e[0],
            "seed {seed}: the policy beats constant top ({e:?})"
        );
        for r in &t.rows {
            assert_eq!(r.misses, 0, "seed {seed}: {} missed", r.label);
        }
    }
}

#[test]
fn fig9_plateau_holds_across_seeds() {
    for seed in [2, 11] {
        let f = repro::fig9::run(seed);
        assert!(
            f.plateau_drop().abs() < 0.025,
            "seed {seed}: plateau drop {:.3}",
            f.plateau_drop()
        );
        let total = f.decode_at(5) - f.decode_at(10);
        assert!(total > 0.1, "seed {seed}: total drop {total:.3}");
    }
}

#[test]
fn fig8_behaviour_holds_across_seeds() {
    for seed in [3, 17] {
        let f = repro::fig8::run(seed);
        assert!(
            f.fraction_at_59 + f.fraction_at_206 > 0.95,
            "seed {seed}: extremes {:.2}",
            f.fraction_at_59 + f.fraction_at_206
        );
        assert_eq!(f.misses, 0, "seed {seed}");
        assert!(f.clock_switches > 30, "seed {seed}");
    }
}

#[test]
fn battery_and_switch_costs_are_seed_free() {
    // These artifacts are deterministic closed forms; run them twice to
    // confirm they carry no hidden global state.
    let a = repro::battery_exp::run();
    let b = repro::battery_exp::run();
    assert_eq!(a.slow.lifetime_h.to_bits(), b.slow.lifetime_h.to_bits());
    let c1 = repro::switch_cost::run();
    let c2 = repro::switch_cost::run();
    assert_eq!(c1.clock_samples.len(), c2.clock_samples.len());
}
