//! Task model: the interface between workloads and the kernel.
//!
//! A task is a state machine driven by the kernel: whenever the task is
//! scheduled and has nothing pending, the kernel asks its
//! [`TaskBehavior`] for the next action. Actions mirror what the
//! paper's applications actually do: compute a burst of work, busy-wait
//! on the processor (the MPEG player's `< 12 ms` spin loop), sleep until
//! a future time (relinquishing the processor), or exit.

use sim_core::{Frequency, SimTime};

use itsy_hw::Work;

use crate::log::DeadlineLog;

/// Process identifier. Pid 0 is reserved for the idle task, as in
/// Linux.
pub type Pid = u32;

/// The idle task's pid.
pub const IDLE_PID: Pid = 0;

/// What a task wants to do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskAction {
    /// Execute a burst of work (CPU cycles + memory traffic); the
    /// behavior is asked again when it completes.
    Compute(Work),
    /// Busy-wait until the given instant: the CPU is non-idle but makes
    /// no progress that depends on the clock speed. This is how the
    /// Itsy MPEG player waits when a frame is due in less than 12 ms.
    SpinUntil(SimTime),
    /// Relinquish the processor until the given instant. The kernel
    /// wakes the task at the first 10 ms timer tick at or after the
    /// requested time (Linux 2.0 jiffy granularity).
    SleepUntil(SimTime),
    /// Terminate the task.
    Exit,
}

/// Kernel-provided context for a behavior decision.
pub struct TaskCtx<'a> {
    /// Current simulation time (when the previous action completed).
    pub now: SimTime,
    /// The clock frequency currently in force (tasks may not use this to
    /// cheat — real applications cannot read it cheaply — but adaptive
    /// players the paper mentions do exist).
    pub freq: Frequency,
    deadlines: &'a mut DeadlineLog,
}

impl<'a> TaskCtx<'a> {
    pub(crate) fn new(now: SimTime, freq: Frequency, deadlines: &'a mut DeadlineLog) -> Self {
        TaskCtx {
            now,
            freq,
            deadlines,
        }
    }

    /// Reports that a piece of work with deadline `due` has just
    /// completed (at `self.now`). The kernel records it; the experiment
    /// harness later counts misses against a tolerance.
    pub fn report_deadline(&mut self, label: &'static str, due: SimTime) {
        self.deadlines.record(label, due, self.now);
    }
}

/// A workload: produces the next action whenever the kernel asks.
pub trait TaskBehavior: Send {
    /// Decides what to do next. Called when the task is first scheduled
    /// and after each completed action.
    fn next_action(&mut self, ctx: &mut TaskCtx<'_>) -> TaskAction;

    /// Display label (e.g. `mpeg_play`).
    fn label(&self) -> String;
}

/// A behavior built from a closure — convenient for tests.
pub struct FnBehavior<F: FnMut(&mut TaskCtx<'_>) -> TaskAction + Send> {
    label: String,
    f: F,
}

impl<F: FnMut(&mut TaskCtx<'_>) -> TaskAction + Send> FnBehavior<F> {
    /// Wraps a closure as a behavior.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnBehavior {
            label: label.into(),
            f,
        }
    }
}

impl<F: FnMut(&mut TaskCtx<'_>) -> TaskAction + Send> TaskBehavior for FnBehavior<F> {
    fn next_action(&mut self, ctx: &mut TaskCtx<'_>) -> TaskAction {
        (self.f)(ctx)
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_behavior_delegates() {
        let mut b = FnBehavior::new("t", move |_ctx| TaskAction::Exit);
        assert_eq!(b.label(), "t");
        let mut log = DeadlineLog::default();
        let mut ctx = TaskCtx::new(SimTime::ZERO, Frequency::from_mhz(59), &mut log);
        assert_eq!(b.next_action(&mut ctx), TaskAction::Exit);
    }

    #[test]
    fn ctx_reports_deadlines() {
        let mut log = DeadlineLog::default();
        {
            let mut ctx = TaskCtx::new(SimTime::from_millis(70), Frequency::from_mhz(59), &mut log);
            ctx.report_deadline("frame", SimTime::from_millis(66));
        }
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].label, "frame");
        assert!(log.records()[0].lateness() > sim_core::SimDuration::ZERO);
    }
}
