//! Typed events and the per-run trace that collects them.
//!
//! Two domains share one vocabulary:
//!
//! - **Simulation-domain** events happen at a simulated instant and are
//!   deterministic functions of a job spec: quantum boundaries, policy
//!   decisions, clock/voltage transitions, scheduling picks. They are
//!   collected in a [`Trace`] and exported by `repro trace`.
//! - **Engine-domain** events happen at wall clock — cache probes, job
//!   lifecycle. They carry no meaningful sim time, so they are *logged*
//!   (see [`crate::logger`]) and counted in metrics, never exported;
//!   that split is what keeps exports byte-identical across cold/warm
//!   cache and any `--jobs` count.

use std::fmt;

/// One typed field of an event, for uniform CSV/JSON rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// An unsigned count or id.
    U64(u64),
    /// A measurement; rendered with fixed precision so output is
    /// byte-stable.
    F64(f64),
    /// A short token (never free text).
    Text(String),
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::U64(v) => write!(f, "{v}"),
            Field::F64(v) => write!(f, "{v:.6}"),
            Field::Text(s) => f.write_str(s),
        }
    }
}

fn opt_step(step: Option<u64>) -> Field {
    match step {
        Some(s) => Field::U64(s),
        None => Field::Text("hold".to_string()),
    }
}

/// What happened. See the module docs for the domain split.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A scheduling quantum ended with this measured utilization.
    QuantumBoundary {
        /// Busy fraction of the quantum that just ended.
        utilization: f64,
    },
    /// The policy module ran from the timer interrupt.
    PolicyDecision {
        /// Raw utilization the policy observed.
        utilization: f64,
        /// The predictor's weighted utilization after observing it.
        weighted: f64,
        /// Clock step in force when the policy ran.
        from_step: u64,
        /// Step the policy requested; `None` means hold.
        to_step: Option<u64>,
        /// Core voltage requested, mV; `None` means hold.
        to_mv: Option<u64>,
    },
    /// The core changed clock step.
    ClockTransition {
        /// Previous frequency, kHz.
        from_khz: u64,
        /// New frequency, kHz.
        to_khz: u64,
        /// Re-lock stall charged, µs.
        stall_us: u64,
    },
    /// The core changed supply voltage.
    VoltageTransition {
        /// Previous voltage, mV.
        from_mv: u64,
        /// New voltage, mV.
        to_mv: u64,
        /// Settle time charged (lowering only), µs.
        settle_us: u64,
    },
    /// The scheduler picked a process (0 = idle).
    Schedule {
        /// Process scheduled.
        pid: u64,
        /// Clock rate in force, kHz.
        clock_khz: u64,
    },
    /// Engine: a cache probe was served from disk.
    CacheHit {
        /// Content key, hex.
        key: String,
    },
    /// Engine: a cache probe found nothing.
    CacheMiss {
        /// Content key, hex.
        key: String,
    },
    /// Engine: a damaged cache entry was quarantined.
    CacheQuarantine {
        /// Content key, hex.
        key: String,
    },
    /// Engine: a worker started (an attempt of) a job.
    JobStart {
        /// Content key, hex.
        key: String,
        /// 1-based attempt number.
        attempt: u64,
    },
    /// Engine: a job panicked and will be retried.
    JobRetry {
        /// Content key, hex.
        key: String,
        /// The attempt that failed.
        attempt: u64,
    },
    /// Engine: a job completed.
    JobDone {
        /// Content key, hex.
        key: String,
        /// Attempts it took.
        attempts: u64,
    },
    /// Engine: a job exhausted its retry budget.
    JobFail {
        /// Content key, hex.
        key: String,
        /// Attempts made.
        attempts: u64,
    },
}

impl EventKind {
    /// Stable snake_case event name (the CSV `event` column and Chrome
    /// trace name).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::QuantumBoundary { .. } => "quantum",
            EventKind::PolicyDecision { .. } => "policy",
            EventKind::ClockTransition { .. } => "clock",
            EventKind::VoltageTransition { .. } => "voltage",
            EventKind::Schedule { .. } => "sched",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheQuarantine { .. } => "cache_quarantine",
            EventKind::JobStart { .. } => "job_start",
            EventKind::JobRetry { .. } => "job_retry",
            EventKind::JobDone { .. } => "job_done",
            EventKind::JobFail { .. } => "job_fail",
        }
    }

    /// The event's payload in fixed field order.
    pub fn fields(&self) -> Vec<(&'static str, Field)> {
        match self {
            EventKind::QuantumBoundary { utilization } => {
                vec![("utilization", Field::F64(*utilization))]
            }
            EventKind::PolicyDecision {
                utilization,
                weighted,
                from_step,
                to_step,
                to_mv,
            } => vec![
                ("utilization", Field::F64(*utilization)),
                ("weighted", Field::F64(*weighted)),
                ("from_step", Field::U64(*from_step)),
                ("to_step", opt_step(*to_step)),
                ("to_mv", opt_step(*to_mv)),
            ],
            EventKind::ClockTransition {
                from_khz,
                to_khz,
                stall_us,
            } => vec![
                ("from_khz", Field::U64(*from_khz)),
                ("to_khz", Field::U64(*to_khz)),
                ("stall_us", Field::U64(*stall_us)),
            ],
            EventKind::VoltageTransition {
                from_mv,
                to_mv,
                settle_us,
            } => vec![
                ("from_mv", Field::U64(*from_mv)),
                ("to_mv", Field::U64(*to_mv)),
                ("settle_us", Field::U64(*settle_us)),
            ],
            EventKind::Schedule { pid, clock_khz } => vec![
                ("pid", Field::U64(*pid)),
                ("clock_khz", Field::U64(*clock_khz)),
            ],
            EventKind::CacheHit { key }
            | EventKind::CacheMiss { key }
            | EventKind::CacheQuarantine { key } => vec![("key", Field::Text(key.clone()))],
            EventKind::JobStart { key, attempt } | EventKind::JobRetry { key, attempt } => vec![
                ("key", Field::Text(key.clone())),
                ("attempt", Field::U64(*attempt)),
            ],
            EventKind::JobDone { key, attempts } | EventKind::JobFail { key, attempts } => vec![
                ("key", Field::Text(key.clone())),
                ("attempts", Field::U64(*attempts)),
            ],
        }
    }

    /// The payload as space-separated `key=value` pairs — the log-record
    /// and CSV `detail` rendering.
    pub fn detail(&self) -> String {
        let fields = self.fields();
        let mut out = String::new();
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name(), self.detail())
    }
}

/// One event at a simulated instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time of the event, µs.
    pub time_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A per-run event collector.
///
/// A disabled trace ([`Trace::off`]) makes [`Trace::emit`] a no-op, so
/// instrumented code paths cost one branch when tracing is off — the
/// kernel's hot loop stays clean for the bench gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
}

impl Trace {
    /// A collecting trace.
    pub fn on() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A no-op trace.
    pub fn off() -> Self {
        Trace::default()
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event at simulated time `time_us` (no-op when
    /// disabled). Callers append in nondecreasing sim-time order; the
    /// insertion index is the tiebreak for equal times at export.
    #[inline]
    pub fn emit(&mut self, time_us: u64, kind: EventKind) {
        if self.enabled {
            self.events.push(Event { time_us, kind });
        }
    }

    /// The collected events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_collects_nothing() {
        let mut t = Trace::off();
        t.emit(5, EventKind::QuantumBoundary { utilization: 1.0 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_preserves_order() {
        let mut t = Trace::on();
        t.emit(10, EventKind::QuantumBoundary { utilization: 0.5 });
        t.emit(
            10,
            EventKind::Schedule {
                pid: 1,
                clock_khz: 59_000,
            },
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].kind.name(), "quantum");
        assert_eq!(t.events()[1].kind.name(), "sched");
    }

    #[test]
    fn detail_is_fixed_precision_and_ordered() {
        let k = EventKind::PolicyDecision {
            utilization: 0.5,
            weighted: 1.0 / 3.0,
            from_step: 10,
            to_step: None,
            to_mv: Some(1500),
        };
        assert_eq!(
            k.detail(),
            "utilization=0.500000 weighted=0.333333 from_step=10 to_step=hold to_mv=1500"
        );
        assert_eq!(k.to_string(), format!("policy {}", k.detail()));
    }

    #[test]
    fn every_kind_has_name_and_fields() {
        let kinds = vec![
            EventKind::QuantumBoundary { utilization: 1.0 },
            EventKind::PolicyDecision {
                utilization: 1.0,
                weighted: 1.0,
                from_step: 0,
                to_step: Some(10),
                to_mv: None,
            },
            EventKind::ClockTransition {
                from_khz: 59_000,
                to_khz: 206_400,
                stall_us: 200,
            },
            EventKind::VoltageTransition {
                from_mv: 1500,
                to_mv: 1230,
                settle_us: 250,
            },
            EventKind::Schedule {
                pid: 0,
                clock_khz: 59_000,
            },
            EventKind::CacheHit { key: "ab".into() },
            EventKind::CacheMiss { key: "ab".into() },
            EventKind::CacheQuarantine { key: "ab".into() },
            EventKind::JobStart {
                key: "ab".into(),
                attempt: 1,
            },
            EventKind::JobRetry {
                key: "ab".into(),
                attempt: 1,
            },
            EventKind::JobDone {
                key: "ab".into(),
                attempts: 2,
            },
            EventKind::JobFail {
                key: "ab".into(),
                attempts: 3,
            },
        ];
        let mut names = std::collections::BTreeSet::new();
        for k in &kinds {
            assert!(!k.fields().is_empty(), "{} has fields", k.name());
            names.insert(k.name());
        }
        assert_eq!(names.len(), kinds.len(), "names are distinct");
    }
}
