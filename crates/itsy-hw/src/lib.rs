//! Hardware model of the Itsy pocket computer (version 1.5).
//!
//! The Itsy used in the paper is a StrongARM SA-1100 handheld with:
//!
//! - eleven discrete core-clock steps from 59.0 MHz to 206.4 MHz
//!   ([`clock::ClockTable`]),
//! - a core supply that the authors modified to run at either 1.5 V or
//!   1.23 V ([`clock`]),
//! - EDO DRAM whose access cost *in core cycles* grows non-linearly with
//!   core frequency — the paper's Table 3 ([`memory::MemoryTiming`]),
//! - an integrated power manager whose idle "nap" mode stalls the
//!   processor pipeline but keeps peripherals powered
//!   ([`cpu::CpuMode::Nap`]),
//! - a measured clock-change cost of ≈200 µs (no instructions execute)
//!   and a voltage-down settle time of ≈250 µs ([`cpu::CpuCore`]),
//! - two AAA batteries whose deliverable capacity shrinks as the draw
//!   grows ([`battery::Battery`]).
//!
//! Everything is parameterised ([`power::PowerParams`],
//! [`memory::MemoryTiming`]) so experiments can ablate individual
//! mechanisms; the defaults are calibrated against the anchor points the
//! paper publishes (see `DESIGN.md` §2).

pub mod battery;
pub mod clock;
pub mod counters;
pub mod cpu;
pub mod gpio;
pub mod memory;
pub mod power;
pub mod specs;
pub mod work;

pub use battery::Battery;
pub use clock::{ClockTable, StepIndex, V_HIGH, V_LOW};
pub use counters::{CorePowerCache, RunTotals, SpanEnergy};
pub use cpu::{CpuCore, CpuMode};
pub use gpio::Gpio;
pub use memory::MemoryTiming;
pub use power::{DeviceSet, PowerModel, PowerParams};
pub use work::{Work, WorkProgress};
