//! One benchmark per reproduced *figure*: each measures regenerating
//! the artifact from scratch (simulation + analysis), and the bench
//! body asserts the figure's shape so a regression in the model fails
//! the bench rather than silently benchmarking a wrong result.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_utilization_traces", |b| {
        b.iter(|| {
            let fig = experiments::fig3::run(black_box(1));
            assert_eq!(fig.series.len(), 4);
            black_box(fig)
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4_moving_average", |b| {
        b.iter(|| {
            let fig = experiments::fig4::run(black_box(1));
            assert_eq!(fig.ma100.len(), 4);
            black_box(fig)
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_simple_averaging_example", |b| {
        b.iter(|| {
            let fig = experiments::fig5::run();
            assert_eq!(fig.going_idle.len(), 9);
            black_box(fig)
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_fourier_spectrum", |b| {
        b.iter(|| {
            let fig = experiments::fig6::run(black_box(3));
            assert!(fig.spectrum.len() > 100);
            black_box(fig)
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    g.bench_function("fig7_avg3_oscillation", |b| {
        b.iter(|| {
            let fig = experiments::fig7::run();
            assert!(fig.analytic_band.swing() > 0.15);
            black_box(fig)
        })
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig8_best_policy_trace", |b| {
        b.iter(|| {
            let fig = experiments::fig8::run(black_box(1));
            assert_eq!(fig.misses, 0);
            black_box(fig)
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig9_frequency_sweep", |b| {
        b.iter(|| {
            let fig = experiments::fig9::run(black_box(1));
            assert!(fig.plateau_drop().abs() < 0.02);
            black_box(fig)
        })
    });
    g.finish();
}

criterion_group!(
    figures, bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_fig8, bench_fig9
);
criterion_main!(figures);
