//! General-purpose I/O pins with an edge log.
//!
//! The paper's measurement methodology (§4.1) toggles an SA-1100 GPIO pin
//! at workload start; the pin is wired to the DAQ's external trigger so
//! power samples align with execution. The switch-cost measurement
//! (§5.4) inverts a GPIO before every clock change and uses the DAQ to
//! time the gaps. [`Gpio`] reproduces that: pins hold a level, and every
//! edge is recorded with its timestamp for the measurement harness to
//! consume.

use sim_core::SimTime;

/// A recorded pin transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// When the edge occurred.
    pub at: SimTime,
    /// Which pin.
    pub pin: u8,
    /// The new level.
    pub level: bool,
}

/// A bank of GPIO pins (the SA-1100 exposes 28; we model 32).
#[derive(Debug, Clone, Default)]
pub struct Gpio {
    levels: u32,
    edges: Vec<Edge>,
}

impl Gpio {
    /// Creates a bank with all pins low.
    pub fn new() -> Self {
        Gpio::default()
    }

    /// Current level of `pin`.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= 32`.
    pub fn level(&self, pin: u8) -> bool {
        assert!(pin < 32, "pin out of range");
        (self.levels >> pin) & 1 == 1
    }

    /// Drives `pin` to `level` at time `at`, recording an edge if the
    /// level actually changes.
    pub fn set(&mut self, at: SimTime, pin: u8, level: bool) {
        if self.level(pin) != level {
            self.levels ^= 1 << pin;
            self.edges.push(Edge { at, pin, level });
        }
    }

    /// Inverts `pin` at time `at`.
    pub fn toggle(&mut self, at: SimTime, pin: u8) {
        let next = !self.level(pin);
        self.set(at, pin, next);
    }

    /// All recorded edges, in time order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges on a single pin.
    pub fn edges_on(&self, pin: u8) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter().filter(move |e| e.pin == pin)
    }

    /// The first rising edge on `pin`, if any — the DAQ trigger.
    pub fn first_rising_edge(&self, pin: u8) -> Option<SimTime> {
        self.edges_on(pin).find(|e| e.level).map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_start_low() {
        let g = Gpio::new();
        for pin in 0..32 {
            assert!(!g.level(pin));
        }
        assert!(g.edges().is_empty());
    }

    #[test]
    fn set_records_edges_only_on_change() {
        let mut g = Gpio::new();
        g.set(SimTime::from_micros(1), 3, true);
        g.set(SimTime::from_micros(2), 3, true); // no change, no edge
        g.set(SimTime::from_micros(3), 3, false);
        assert_eq!(g.edges().len(), 2);
        assert!(g.edges()[0].level);
        assert!(!g.edges()[1].level);
    }

    #[test]
    fn toggle_alternates() {
        let mut g = Gpio::new();
        for i in 0..5 {
            g.toggle(SimTime::from_micros(i), 7);
        }
        assert!(g.level(7)); // odd number of toggles
        assert_eq!(g.edges_on(7).count(), 5);
    }

    #[test]
    fn first_rising_edge_is_the_trigger() {
        let mut g = Gpio::new();
        g.set(SimTime::from_micros(5), 0, true);
        g.set(SimTime::from_micros(9), 1, true);
        assert_eq!(g.first_rising_edge(1), Some(SimTime::from_micros(9)));
        assert_eq!(g.first_rising_edge(2), None);
    }

    #[test]
    fn pins_are_independent() {
        let mut g = Gpio::new();
        g.set(SimTime::from_micros(1), 0, true);
        assert!(g.level(0));
        assert!(!g.level(1));
        assert_eq!(g.edges_on(1).count(), 0);
    }

    #[test]
    #[should_panic(expected = "pin out of range")]
    fn out_of_range_pin_panics() {
        let g = Gpio::new();
        let _ = g.level(32);
    }
}
