//! Speed-setting rules: how far to move the clock once the hysteresis
//! band is breached.
//!
//! §4.3 of the paper: "We use three algorithms for scaling: *one*,
//! *double*, and *peg*. The *one* policy increments (or decrements) the
//! clock value by one step. The *peg* policy sets the clock to the
//! highest (or lowest) value. The *double* policy tries to double (or
//! halve) the clock step. Since the lowest clock step on the Itsy is
//! zero, we increment the clock index value before doubling it.
//! Separate policies may be used for scaling upwards and downwards."

use serde::{Deserialize, Serialize};

use itsy_hw::{ClockTable, StepIndex};

/// A speed-setting rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeedChange {
    /// Move one step.
    One,
    /// Double / halve the (1-based) step index.
    Double,
    /// Jump to the extreme step.
    Peg,
}

impl SpeedChange {
    /// The step to use after an *upward* decision from `current`.
    pub fn up(self, current: StepIndex, table: &ClockTable) -> StepIndex {
        match self {
            SpeedChange::One => table.clamp(current as isize + 1),
            SpeedChange::Double => {
                // 1-based index doubled, per the paper's note about the
                // lowest step being zero.
                let j = current + 1;
                table.clamp((j * 2) as isize - 1)
            }
            SpeedChange::Peg => table.fastest(),
        }
    }

    /// The step to use after a *downward* decision from `current`.
    pub fn down(self, current: StepIndex, table: &ClockTable) -> StepIndex {
        match self {
            SpeedChange::One => table.clamp(current as isize - 1),
            SpeedChange::Double => {
                let j = current + 1;
                table.clamp((j / 2) as isize - 1)
            }
            SpeedChange::Peg => table.slowest(),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SpeedChange::One => "one",
            SpeedChange::Double => "double",
            SpeedChange::Peg => "peg",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ClockTable {
        ClockTable::sa1100()
    }

    #[test]
    fn one_moves_single_steps_and_clamps() {
        let t = table();
        assert_eq!(SpeedChange::One.up(4, &t), 5);
        assert_eq!(SpeedChange::One.up(10, &t), 10);
        assert_eq!(SpeedChange::One.down(4, &t), 3);
        assert_eq!(SpeedChange::One.down(0, &t), 0);
    }

    #[test]
    fn peg_jumps_to_extremes() {
        let t = table();
        assert_eq!(SpeedChange::Peg.up(0, &t), 10);
        assert_eq!(SpeedChange::Peg.up(10, &t), 10);
        assert_eq!(SpeedChange::Peg.down(10, &t), 0);
        assert_eq!(SpeedChange::Peg.down(0, &t), 0);
    }

    #[test]
    fn double_from_slowest_makes_progress() {
        // Without the increment-before-doubling rule, doubling step 0
        // would stay at 0 forever.
        let t = table();
        assert_eq!(SpeedChange::Double.up(0, &t), 1); // j=1 -> 2 -> idx 1
        assert_eq!(SpeedChange::Double.up(1, &t), 3); // j=2 -> 4 -> idx 3
        assert_eq!(SpeedChange::Double.up(3, &t), 7); // j=4 -> 8 -> idx 7
        assert_eq!(SpeedChange::Double.up(7, &t), 10); // j=8 -> 16 -> clamp
    }

    #[test]
    fn double_down_halves() {
        let t = table();
        assert_eq!(SpeedChange::Double.down(10, &t), 4); // j=11 -> 5 -> idx 4
        assert_eq!(SpeedChange::Double.down(4, &t), 1); // j=5 -> 2 -> idx 1
        assert_eq!(SpeedChange::Double.down(1, &t), 0); // j=2 -> 1 -> idx 0
        assert_eq!(SpeedChange::Double.down(0, &t), 0); // stays
    }

    #[test]
    fn up_never_decreases_down_never_increases() {
        let t = table();
        for rule in [SpeedChange::One, SpeedChange::Double, SpeedChange::Peg] {
            for cur in 0..t.len() {
                assert!(rule.up(cur, &t) >= cur, "{rule:?} up from {cur}");
                assert!(rule.down(cur, &t) <= cur, "{rule:?} down from {cur}");
                assert!(rule.up(cur, &t) < t.len());
            }
        }
    }

    #[test]
    fn repeated_up_reaches_fastest_for_all_rules() {
        let t = table();
        for rule in [SpeedChange::One, SpeedChange::Double, SpeedChange::Peg] {
            let mut cur = 0;
            for _ in 0..t.len() + 1 {
                cur = rule.up(cur, &t);
            }
            assert_eq!(cur, t.fastest(), "{rule:?} never reached the top");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SpeedChange::One.label(), "one");
        assert_eq!(SpeedChange::Double.label(), "double");
        assert_eq!(SpeedChange::Peg.label(), "peg");
    }
}
