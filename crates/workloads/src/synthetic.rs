//! Synthetic loads for controlled experiments.
//!
//! §5.3's stability analysis idealizes the MPEG player as "a simple
//! repeating rectangle wave, busy for 9 cycles, and then idle for 1
//! cycle". [`SquareWave`] realizes that load on the simulated kernel so
//! the analytical prediction (sustained oscillation of AVG_N) can be
//! checked empirically; [`ConstantLoad`] and [`PeriodicBurst`] cover
//! calibration and ablation needs.

use kernel_sim::{TaskAction, TaskBehavior, TaskCtx};
use sim_core::{SimDuration, SimTime};

use itsy_hw::Work;

/// Busy for `busy_quanta` scheduling quanta, idle for `idle_quanta`,
/// repeating. "Busy" means spinning (wall-clock bound), so the duty
/// cycle is exact at any clock speed.
#[derive(Debug, Clone)]
pub struct SquareWave {
    busy: SimDuration,
    idle: SimDuration,
    in_busy: bool,
    phase_end: SimTime,
}

impl SquareWave {
    /// A wave with the given busy/idle quantum counts (10 ms quanta).
    ///
    /// # Panics
    ///
    /// Panics if both counts are zero.
    pub fn quanta(busy_quanta: u64, idle_quanta: u64) -> Self {
        assert!(busy_quanta + idle_quanta > 0, "degenerate wave");
        SquareWave {
            busy: SimDuration::from_millis(10 * busy_quanta),
            idle: SimDuration::from_millis(10 * idle_quanta),
            in_busy: false,
            phase_end: SimTime::ZERO,
        }
    }
}

impl TaskBehavior for SquareWave {
    fn next_action(&mut self, ctx: &mut TaskCtx<'_>) -> TaskAction {
        if ctx.now >= self.phase_end {
            if self.in_busy {
                self.in_busy = false;
                self.phase_end = ctx.now + self.idle;
                if self.idle.is_zero() {
                    self.in_busy = true;
                    self.phase_end = ctx.now + self.busy;
                    return TaskAction::SpinUntil(self.phase_end);
                }
                return TaskAction::SleepUntil(self.phase_end);
            }
            self.in_busy = true;
            self.phase_end = ctx.now + self.busy;
            if self.busy.is_zero() {
                self.in_busy = false;
                self.phase_end = ctx.now + self.idle;
                return TaskAction::SleepUntil(self.phase_end);
            }
            return TaskAction::SpinUntil(self.phase_end);
        }
        if self.in_busy {
            TaskAction::SpinUntil(self.phase_end)
        } else {
            TaskAction::SleepUntil(self.phase_end)
        }
    }

    fn label(&self) -> String {
        "square-wave".to_string()
    }
}

/// Spins a fixed fraction of every quantum — a utilization clamp.
#[derive(Debug, Clone)]
pub struct ConstantLoad {
    /// Target utilization in `[0, 1]`.
    utilization: f64,
    quantum: SimDuration,
}

impl ConstantLoad {
    /// A load with the given duty cycle per 10 ms quantum.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn new(utilization: f64) -> Self {
        assert!((0.0..=1.0).contains(&utilization), "bad utilization");
        ConstantLoad {
            utilization,
            quantum: SimDuration::from_millis(10),
        }
    }
}

impl TaskBehavior for ConstantLoad {
    fn next_action(&mut self, ctx: &mut TaskCtx<'_>) -> TaskAction {
        let q_us = self.quantum.as_micros();
        let quantum_start = SimTime::from_micros(ctx.now.as_micros() / q_us * q_us);
        let busy_end =
            quantum_start + SimDuration::from_micros((q_us as f64 * self.utilization) as u64);
        if ctx.now < busy_end {
            TaskAction::SpinUntil(busy_end)
        } else {
            TaskAction::SleepUntil(quantum_start + self.quantum)
        }
    }

    fn label(&self) -> String {
        format!("constant-{:.0}%", self.utilization * 100.0)
    }
}

/// A fixed amount of *work* every `period` — a deadline-style load
/// whose utilization depends on the clock (unlike [`SquareWave`]).
#[derive(Debug, Clone)]
pub struct PeriodicBurst {
    work: Work,
    period: SimDuration,
    k: u64,
    pending: bool,
    /// Deadline label under which completions are reported.
    pub deadline_label: &'static str,
}

impl PeriodicBurst {
    /// Creates the load.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(work: Work, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        PeriodicBurst {
            work,
            period,
            k: 0,
            pending: false,
            deadline_label: "burst",
        }
    }

    fn due(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros((self.k + 1) * self.period.as_micros())
    }
}

impl TaskBehavior for PeriodicBurst {
    fn next_action(&mut self, ctx: &mut TaskCtx<'_>) -> TaskAction {
        if self.pending {
            ctx.report_deadline(self.deadline_label, self.due());
            self.pending = false;
            self.k += 1;
            let start = self.due() - self.period;
            if ctx.now < start {
                return TaskAction::SleepUntil(start);
            }
        }
        self.pending = true;
        TaskAction::Compute(self.work)
    }

    fn label(&self) -> String {
        "periodic-burst".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itsy_hw::DeviceSet;
    use kernel_sim::{Kernel, KernelConfig, Machine};

    fn kernel(step: usize, secs: u64) -> Kernel {
        Kernel::new(
            Machine::itsy(step, DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_secs(secs),
                ..KernelConfig::default()
            },
        )
    }

    #[test]
    fn square_wave_9_1_has_90_percent_duty() {
        let mut k = kernel(10, 2);
        k.spawn(Box::new(SquareWave::quanta(9, 1)));
        let r = k.run();
        let u = r.mean_utilization();
        assert!((u - 0.9).abs() < 0.02, "duty = {u}");
        // And the per-quantum series really is a square wave: quanta
        // are either fully busy or fully idle.
        let extremes = r
            .utilization
            .values()
            .iter()
            .filter(|&&v| !(0.05..=0.95).contains(&v))
            .count();
        assert!(extremes as f64 / r.utilization.len() as f64 > 0.95);
    }

    #[test]
    fn square_wave_duty_is_clock_invariant() {
        for step in [0, 10] {
            let mut k = kernel(step, 2);
            k.spawn(Box::new(SquareWave::quanta(3, 7)));
            let u = k.run().mean_utilization();
            assert!((u - 0.3).abs() < 0.02, "step {step}: duty = {u}");
        }
    }

    #[test]
    fn constant_load_holds_its_level() {
        let mut k = kernel(5, 2);
        k.spawn(Box::new(ConstantLoad::new(0.6)));
        let r = k.run();
        let u = r.mean_utilization();
        assert!((u - 0.6).abs() < 0.03, "u = {u}");
        // Every quantum individually sits near the target.
        for v in r.utilization.values() {
            assert!((v - 0.6).abs() < 0.11, "quantum = {v}");
        }
    }

    #[test]
    fn periodic_burst_utilization_scales_with_clock() {
        let run = |step| {
            let mut k = kernel(step, 2);
            // 10 ms of top-clock work every 50 ms.
            k.spawn(Box::new(PeriodicBurst::new(
                crate::work_ms_at_top(10.0, 0.0),
                SimDuration::from_millis(50),
            )));
            k.run().mean_utilization()
        };
        let fast = run(10);
        let slow = run(0);
        assert!((fast - 0.2).abs() < 0.03, "fast = {fast}");
        assert!(
            (slow - 0.7).abs() < 0.05,
            "slow = {slow} (3.5x the cycles per burst)"
        );
    }

    #[test]
    fn periodic_burst_misses_when_infeasible() {
        let mut k = kernel(0, 2);
        // 30 ms of top-clock work every 50 ms: impossible at 59 MHz.
        k.spawn(Box::new(PeriodicBurst::new(
            crate::work_ms_at_top(30.0, 0.0),
            SimDuration::from_millis(50),
        )));
        let r = k.run();
        assert!(r.deadlines.misses(SimDuration::from_millis(20)) > 0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_zero_wave_rejected() {
        let _ = SquareWave::quanta(0, 0);
    }
}
