//! The Web workload: the IceWeb browser replaying a browse trace.
//!
//! §4.2: the user opens a stored news article, scrolls through it
//! reading, returns to the root menu, and opens a long HTML technical
//! report — 190 s of activity. CPU demand is page-load bursts (parse,
//! layout, JIT), scroll-triggered render bursts, and long idle reading
//! gaps filled only by the Kaffe 30 ms poll.

use kernel_sim::{TaskAction, TaskBehavior, TaskCtx};
use sim_core::{Rng, SimDuration, SimTime};

use crate::trace::{InputTrace, TraceReplayer};

/// The browser + poller bundle.
pub struct WebWorkload {
    seed: u64,
}

impl WebWorkload {
    /// Creates the workload.
    pub fn new(seed: u64) -> Self {
        WebWorkload { seed }
    }

    /// Generates the deterministic 190 s browse trace the tasks replay.
    pub fn browse_trace(seed: u64) -> InputTrace {
        let mut rng = Rng::new(seed ^ 0x7765_6221);
        let mut trace = InputTrace::new();
        let response = SimDuration::from_millis(300);
        // Opening the first article: a heavy page-load burst.
        trace.record(
            SimTime::from_millis(1_200),
            crate::work_ms_at_top(900.0, 0.45),
            SimDuration::from_millis(1_500),
        );
        // Scroll-read through the article (~90 s). The gap is drawn
        // first and the bound checked before recording so the phase can
        // never overrun the fixed-time events that follow it.
        let mut t = SimTime::from_millis(3_500);
        loop {
            t += SimDuration::from_millis(800 + rng.below(4_200));
            if t >= SimTime::from_secs(90) {
                break;
            }
            let ms = rng.uniform_range(40.0, 220.0);
            trace.record(t, crate::work_ms_at_top(ms, 0.45), response);
        }
        // Back to the root menu.
        trace.record(
            SimTime::from_secs(92),
            crate::work_ms_at_top(150.0, 0.45),
            response,
        );
        // Open the table-heavy technical report: an even bigger load.
        trace.record(
            SimTime::from_millis(95_000),
            crate::work_ms_at_top(1_600.0, 0.5),
            SimDuration::from_millis(2_500),
        );
        // Scroll-read the report until 188 s.
        let mut t = SimTime::from_secs(99);
        loop {
            t += SimDuration::from_millis(1_000 + rng.below(5_000));
            if t >= SimTime::from_secs(188) {
                break;
            }
            let ms = rng.uniform_range(60.0, 300.0);
            trace.record(t, crate::work_ms_at_top(ms, 0.5), response);
        }
        trace
    }

    /// The browser task and the Kaffe poller.
    pub fn into_tasks(self) -> Vec<Box<dyn TaskBehavior>> {
        vec![
            Box::new(Browser::new(Self::browse_trace(self.seed))),
            Box::new(crate::java::JavaPoller::new()),
        ]
    }
}

/// A trace-replaying interactive application: sleeps until the next
/// input event, performs its work, and reports the interactive
/// deadline. Reused by the editor workload.
pub struct Browser {
    replay: TraceReplayer,
    /// The event currently being serviced.
    in_flight: Option<crate::trace::InputEvent>,
    label: String,
}

impl Browser {
    /// Creates a replayer task for `trace`.
    pub fn new(trace: InputTrace) -> Self {
        Browser {
            replay: TraceReplayer::new(trace),
            in_flight: None,
            label: "iceweb".to_string(),
        }
    }

    /// Same behavior with a different display label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl TaskBehavior for Browser {
    fn next_action(&mut self, ctx: &mut TaskCtx<'_>) -> TaskAction {
        if let Some(ev) = self.in_flight.take() {
            if let Some(due) = ev.due() {
                ctx.report_deadline("input", due);
            }
        }
        if let Some(ev) = self.replay.pop_due(ctx.now) {
            self.in_flight = Some(ev);
            return TaskAction::Compute(ev.work);
        }
        match self.replay.peek() {
            Some(next) => TaskAction::SleepUntil(next.at()),
            None => TaskAction::Exit,
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itsy_hw::DeviceSet;
    use kernel_sim::{Kernel, KernelConfig, Machine};

    fn run(secs: u64, step: usize) -> kernel_sim::KernelReport {
        let mut k = Kernel::new(
            Machine::itsy(step, DeviceSet::LCD),
            KernelConfig {
                duration: SimDuration::from_secs(secs),
                ..KernelConfig::default()
            },
        );
        for t in WebWorkload::new(9).into_tasks() {
            k.spawn(t);
        }
        k.run()
    }

    #[test]
    fn trace_spans_the_paper_duration() {
        let t = WebWorkload::browse_trace(9);
        let span = t.span().as_secs_f64();
        assert!((180.0..=190.0).contains(&span), "span = {span}s");
        assert!(t.len() > 40, "events = {}", t.len());
    }

    #[test]
    fn utilization_is_bursty_with_idle_reading() {
        let r = run(90, 10);
        let vals = r.utilization.values();
        let busy = vals.iter().filter(|&&u| u > 0.8).count();
        let idle = vals.iter().filter(|&&u| u < 0.15).count();
        assert!(busy > 10, "render bursts missing");
        assert!(
            idle > vals.len() / 2,
            "reading time should dominate: {idle}/{}",
            vals.len()
        );
        // Overall it is a light workload.
        let mean = r.mean_utilization();
        assert!((0.02..=0.3).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn interactive_deadlines_met_at_full_speed() {
        let r = run(190, 10);
        assert!(r.deadlines.len() > 40);
        // Jiffy rounding can delay the wake that starts a burst by up
        // to 10 ms; anything beyond that margin is a real miss.
        assert_eq!(
            r.deadlines.misses(SimDuration::from_millis(50)),
            0,
            "max lateness {}",
            r.deadlines.max_lateness()
        );
    }

    #[test]
    fn browser_exits_when_trace_is_done() {
        let r = run(190, 10);
        // After ~188 s only the poller remains; the tail quanta are
        // near-idle.
        let tail = r
            .utilization
            .window(SimTime::from_secs(189), SimTime::from_secs(190));
        assert!(tail.mean().unwrap() < 0.2);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = WebWorkload::browse_trace(5);
        let b = WebWorkload::browse_trace(5);
        assert_eq!(a, b);
        let c = WebWorkload::browse_trace(6);
        assert_ne!(a, c, "different seeds should differ");
    }
}
