//! The Linux cpufreq governors this research line led to.
//!
//! The paper's interval scheduler is the direct ancestor of Linux's
//! `ondemand` (2.6.9, 2004) and `conservative` governors: sample CPU
//! load periodically, jump or creep the frequency against thresholds.
//! Implementing them against the same kernel hook makes the lineage
//! testable — and shows that the paper's core findings (threshold
//! sensitivity, flapping on periodic loads) carry over to the
//! production designs.
//!
//! Semantics follow the kernel documentation:
//!
//! - [`Ondemand`]: "when triggered, cpufreq checks the CPU-usage
//!   statistics over the last period and the governor sets the CPU
//!   accordingly"; load above `up_threshold` (default 80 %) jumps
//!   straight to the maximum; otherwise the frequency is set
//!   proportionally to the measured load, rounded up to a real step.
//! - [`Conservative`]: "much like the ondemand governor \[but\] the
//!   frequency is gracefully increased and decreased rather than
//!   jumping to max"; one `freq_step` up when load exceeds
//!   `up_threshold`, one down when it falls below `down_threshold`
//!   (defaults 80 %/20 %).
//! - [`Schedutil`]: the modern default — `f = headroom · f_current ·
//!   util` against the *maximum* capacity, i.e.
//!   `f = 1.25 · f_max · (util · f_cur / f_max)`, quantised up to a
//!   real step.

use sim_core::{Frequency, SimTime};

use itsy_hw::{ClockTable, StepIndex};

use crate::governor::{ClockPolicy, PolicyRequest};

/// The `ondemand` governor.
#[derive(Debug, Clone)]
pub struct Ondemand {
    table: ClockTable,
    /// Load above this jumps to the maximum frequency (default 0.80).
    pub up_threshold: f64,
}

impl Ondemand {
    /// Creates the governor with the kernel's default 80 % threshold.
    pub fn new(table: ClockTable) -> Self {
        Ondemand {
            table,
            up_threshold: 0.80,
        }
    }

    /// Overrides the threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0, 1]`.
    pub fn with_up_threshold(mut self, t: f64) -> Self {
        assert!(t > 0.0 && t <= 1.0, "threshold must be in (0,1]");
        self.up_threshold = t;
        self
    }
}

impl ClockPolicy for Ondemand {
    fn on_interval(
        &mut self,
        _now: SimTime,
        utilization: f64,
        current_step: StepIndex,
    ) -> PolicyRequest {
        let load = utilization.clamp(0.0, 1.0);
        let target = if load > self.up_threshold {
            self.table.fastest()
        } else {
            // Proportional: the slowest frequency that keeps the load
            // under the threshold, computed from current capacity.
            let cur_khz = self.table.freq(current_step).as_khz() as f64;
            let needed = cur_khz * load / self.up_threshold;
            self.table
                .step_at_least(Frequency::from_khz(needed.ceil() as u32))
        };
        PolicyRequest {
            step: (target != current_step).then_some(target),
            voltage: None,
        }
    }

    fn is_memoryless(&self) -> bool {
        // Pure in (load, current_step): no history, no counters, and
        // the target is stable under repetition (a load that keeps the
        // governor at `target` recomputes the same `target`).
        true
    }

    fn name(&self) -> String {
        format!("ondemand(up {:.0}%)", self.up_threshold * 100.0)
    }
}

/// The `conservative` governor.
#[derive(Debug, Clone)]
pub struct Conservative {
    table: ClockTable,
    /// Step up above this load (default 0.80).
    pub up_threshold: f64,
    /// Step down below this load (default 0.20).
    pub down_threshold: f64,
    /// Steps moved per decision (the kernel's `freq_step`, here in
    /// table steps; default 1).
    pub freq_step: usize,
}

impl Conservative {
    /// Creates the governor with the kernel's defaults.
    pub fn new(table: ClockTable) -> Self {
        Conservative {
            table,
            up_threshold: 0.80,
            down_threshold: 0.20,
            freq_step: 1,
        }
    }
}

impl ClockPolicy for Conservative {
    fn on_interval(
        &mut self,
        _now: SimTime,
        utilization: f64,
        current_step: StepIndex,
    ) -> PolicyRequest {
        let load = utilization.clamp(0.0, 1.0);
        let target = if load > self.up_threshold {
            self.table
                .clamp(current_step as isize + self.freq_step as isize)
        } else if load < self.down_threshold {
            self.table
                .clamp(current_step as isize - self.freq_step as isize)
        } else {
            current_step
        };
        PolicyRequest {
            step: (target != current_step).then_some(target),
            voltage: None,
        }
    }

    fn is_memoryless(&self) -> bool {
        // Stateless: each decision reads only (load, current_step).
        // Creeping still works under span elision because the kernel
        // only elides calls after a settled *no-op* decision — any
        // step-up/down ends the span and re-enters the policy.
        true
    }

    fn name(&self) -> String {
        format!(
            "conservative(up {:.0}%, down {:.0}%)",
            self.up_threshold * 100.0,
            self.down_threshold * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ClockTable {
        ClockTable::sa1100()
    }

    #[test]
    fn ondemand_jumps_to_max_on_high_load() {
        let mut g = Ondemand::new(table());
        let req = g.on_interval(SimTime::ZERO, 0.95, 3);
        assert_eq!(req.step, Some(10));
    }

    #[test]
    fn ondemand_scales_proportionally_below_threshold() {
        let mut g = Ondemand::new(table());
        // At 206.4 MHz with 40% load: needed = 206.4 * 0.4/0.8 = 103.2.
        let req = g.on_interval(SimTime::ZERO, 0.40, 10);
        assert_eq!(req.step, Some(3)); // 103.2 MHz
                                       // Idle load drops to the floor.
        let req = g.on_interval(SimTime::ZERO, 0.0, 10);
        assert_eq!(req.step, Some(0));
    }

    #[test]
    fn ondemand_is_stable_inside_the_band() {
        // At the step matching its load, it requests nothing.
        let mut g = Ondemand::new(table());
        // 103.2 MHz at 75% load: needed = 103.2*0.9375 = 96.7 -> step 3.
        let req = g.on_interval(SimTime::ZERO, 0.75, 3);
        assert_eq!(req.step, None);
    }

    #[test]
    fn conservative_creeps() {
        let mut g = Conservative::new(table());
        assert_eq!(g.on_interval(SimTime::ZERO, 0.9, 5).step, Some(6));
        assert_eq!(g.on_interval(SimTime::ZERO, 0.1, 5).step, Some(4));
        assert_eq!(g.on_interval(SimTime::ZERO, 0.5, 5).step, None);
        // Clamped at the ends.
        assert_eq!(g.on_interval(SimTime::ZERO, 0.9, 10).step, None);
        assert_eq!(g.on_interval(SimTime::ZERO, 0.1, 0).step, None);
    }

    #[test]
    fn governors_are_memoryless_with_unit_stride() {
        // All three cpufreq governors are pure in (load, step): the
        // batched kernel may elide repeated identical calls. None of
        // them decimates observations.
        let o = Ondemand::new(table());
        let c = Conservative::new(table());
        assert!(o.is_memoryless());
        assert!(c.is_memoryless());
        assert_eq!(o.observation_stride(), 1);
        assert_eq!(c.observation_stride(), 1);
        // Witness the idempotence claim directly.
        let mut g = Ondemand::new(table());
        let first = g.on_interval(SimTime::ZERO, 0.40, 10);
        for _ in 0..5 {
            assert_eq!(g.on_interval(SimTime::ZERO, 0.40, 10), first);
        }
    }

    #[test]
    fn names() {
        assert_eq!(Ondemand::new(table()).name(), "ondemand(up 80%)");
        assert_eq!(
            Conservative::new(table()).name(),
            "conservative(up 80%, down 20%)"
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let _ = Ondemand::new(table()).with_up_threshold(0.0);
    }
}

/// The `schedutil` governor: frequency proportional to scheduler
/// utilization with a fixed 25 % headroom
/// (`f = 1.25 · util_capacity · f_max`).
#[derive(Debug, Clone)]
pub struct Schedutil {
    table: ClockTable,
    /// Headroom multiplier (the kernel hardcodes 1.25).
    pub headroom: f64,
}

impl Schedutil {
    /// Creates the governor with the kernel's 1.25 headroom.
    pub fn new(table: ClockTable) -> Self {
        Schedutil {
            table,
            headroom: 1.25,
        }
    }
}

impl ClockPolicy for Schedutil {
    fn on_interval(
        &mut self,
        _now: SimTime,
        utilization: f64,
        current_step: StepIndex,
    ) -> PolicyRequest {
        // Capacity-normalised utilization: busy time at the current
        // clock, expressed against the fastest clock.
        let cur_khz = self.table.freq(current_step).as_khz() as f64;
        let capacity_util = utilization.clamp(0.0, 1.0) * cur_khz;
        let needed = self.headroom * capacity_util;
        let target = if needed <= 0.0 {
            self.table.slowest()
        } else {
            self.table
                .step_at_least(Frequency::from_khz(needed.ceil() as u32))
        };
        PolicyRequest {
            step: (target != current_step).then_some(target),
            voltage: None,
        }
    }

    fn is_memoryless(&self) -> bool {
        // Pure in (utilization, current_step); repetition is idempotent.
        true
    }

    fn name(&self) -> String {
        format!("schedutil(headroom {:.2})", self.headroom)
    }
}

#[cfg(test)]
mod schedutil_tests {
    use super::*;

    #[test]
    fn schedutil_tracks_capacity_utilization() {
        let mut g = Schedutil::new(ClockTable::sa1100());
        // Fully busy at 103.2 MHz: needed = 1.25 * 103.2 = 129 -> 132.7.
        let req = g.on_interval(SimTime::ZERO, 1.0, 3);
        assert_eq!(req.step, Some(5));
        // 40% busy at 206.4: needed = 1.25 * 82.6 = 103.2 -> step 3.
        let req = g.on_interval(SimTime::ZERO, 0.40, 10);
        assert_eq!(req.step, Some(3));
        // Idle floors out.
        let req = g.on_interval(SimTime::ZERO, 0.0, 10);
        assert_eq!(req.step, Some(0));
    }

    #[test]
    fn schedutil_is_stable_at_a_matched_point() {
        let mut g = Schedutil::new(ClockTable::sa1100());
        // 132.7 MHz at 75% busy: needed = 1.25*99.5 = 124.4 -> 132.7.
        let req = g.on_interval(SimTime::ZERO, 0.75, 5);
        assert_eq!(req.step, None);
    }

    #[test]
    fn schedutil_is_memoryless() {
        let g = Schedutil::new(ClockTable::sa1100());
        assert!(g.is_memoryless());
        assert_eq!(g.observation_stride(), 1);
    }

    #[test]
    fn schedutil_name() {
        assert_eq!(
            Schedutil::new(ClockTable::sa1100()).name(),
            "schedutil(headroom 1.25)"
        );
    }
}
