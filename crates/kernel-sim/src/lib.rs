//! A discrete-event simulation of the paper's modified Linux 2.0.30
//! kernel.
//!
//! §4.3 of the paper describes two kernel modifications:
//!
//! 1. a **scheduler activity log** — for every scheduling decision, the
//!    pid, microsecond timestamp and current clock rate
//!    ([`log::SchedLog`]);
//! 2. an **extensible clock-scaling policy module** called from the
//!    clock interrupt handler, with the scheduler tracking per-quantum
//!    CPU utilization ([`policies::ClockPolicy`] installed via
//!    [`Kernel::install_policy`]).
//!
//! The simulated kernel reproduces the environment those modules saw:
//!
//! - a 100 Hz timer; the run counter is forced to 1 so the scheduler
//!   (and the policy) runs every 10 ms quantum;
//! - round-robin scheduling among ready tasks; pid 0 is the idle task,
//!   which puts the core into the low-power "nap" mode;
//! - sleeping tasks wake on timer-tick granularity (Linux 2.0 jiffies);
//! - per-quantum utilization = non-idle time / quantum, exactly the
//!   number the policy module consumed;
//! - clock changes stall execution ~200 µs; the stall counts as
//!   *non-idle* time (the idle task is not running) but dissipates only
//!   nap-level core power.
//!
//! Workloads are [`task::TaskBehavior`] implementations (see the
//! `workloads` crate); deadlines they report land in
//! [`log::DeadlineLog`], the basis of the paper's inelastic
//! "no user-visible change" criterion.

pub mod deadline;
pub mod log;
pub mod machine;
pub mod report;
pub mod sched;
pub mod task;

pub use log::{DeadlineLog, DeadlineRecord, SchedLog, SchedRecord};
pub use machine::Machine;
pub use report::{KernelReport, WindowSample};
pub use sched::{Kernel, KernelConfig, SimScratch};
pub use task::{Pid, TaskAction, TaskBehavior, TaskCtx};
