//! The paper's bottom line, across all four workloads.
//!
//! §5.4/§6: the best policy "never misses any deadline (across all the
//! applications) and it also saves a small but significant amount of
//! energy" — yet "that policy leaves much to be desired". This
//! experiment runs the best policy against every workload and reports
//! the saving against both the constant top speed and the oracle
//! constant speed (the slowest step with zero misses), quantifying how
//! much the heuristic leaves on the table.

use core::fmt;

use itsy_hw::ClockTable;
use policies::IntervalScheduler;
use workloads::Benchmark;

use crate::report;
use crate::runner::{run_benchmark, RunSpec, TOLERANCE};

/// Per-workload outcome.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// Workload.
    pub benchmark: Benchmark,
    /// Energy at constant 206.4 MHz, joules.
    pub constant_top_j: f64,
    /// Energy under the best policy, joules.
    pub policy_j: f64,
    /// Deadline misses under the policy.
    pub policy_misses: usize,
    /// The oracle: slowest constant step with zero misses.
    pub oracle_step: usize,
    /// Energy at the oracle step, joules.
    pub oracle_j: f64,
}

impl SummaryRow {
    /// Saving of the policy vs constant top.
    pub fn policy_saving(&self) -> f64 {
        1.0 - self.policy_j / self.constant_top_j
    }

    /// Saving of the oracle vs constant top.
    pub fn oracle_saving(&self) -> f64 {
        1.0 - self.oracle_j / self.constant_top_j
    }

    /// Fraction of the available (oracle) saving the policy captured.
    pub fn captured(&self) -> f64 {
        if self.oracle_saving() <= 0.0 {
            1.0
        } else {
            (self.policy_saving() / self.oracle_saving()).max(0.0)
        }
    }
}

/// The summary across workloads.
pub struct Summary {
    /// One row per benchmark.
    pub rows: Vec<SummaryRow>,
    /// Seconds per run.
    pub secs: u64,
}

/// Runs the summary.
pub fn run(seed: u64) -> Summary {
    let secs = 30u64;
    let table = ClockTable::sa1100();
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| {
            let top = run_benchmark(&RunSpec::new(b, 10).for_secs(secs).with_seed(seed), None);
            let policy = run_benchmark(
                &RunSpec::new(b, 10).for_secs(secs).with_seed(seed),
                Some(Box::new(IntervalScheduler::best_from_paper(table.clone()))),
            );
            // Oracle: the slowest constant step with zero misses.
            let mut oracle_step = table.fastest();
            let mut oracle_j = top.energy.as_joules();
            for step in 0..table.len() {
                let r = run_benchmark(&RunSpec::new(b, step).for_secs(secs).with_seed(seed), None);
                if r.deadlines.misses(TOLERANCE) == 0 {
                    oracle_step = step;
                    oracle_j = r.energy.as_joules();
                    break;
                }
            }
            SummaryRow {
                benchmark: b,
                constant_top_j: top.energy.as_joules(),
                policy_j: policy.energy.as_joules(),
                policy_misses: policy.deadlines.misses(TOLERANCE),
                oracle_step,
                oracle_j,
            }
        })
        .collect();
    Summary { rows, secs }
}

impl Summary {
    /// Row for a benchmark.
    pub fn row(&self, b: Benchmark) -> &SummaryRow {
        self.rows
            .iter()
            .find(|r| r.benchmark == b)
            .expect("benchmark present")
    }

    /// Writes the table as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &[
                "benchmark",
                "constant_top_j",
                "policy_j",
                "policy_misses",
                "oracle_step",
                "oracle_j",
                "captured",
            ],
            &self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.benchmark.name().to_string(),
                        format!("{:.2}", r.constant_top_j),
                        format!("{:.2}", r.policy_j),
                        r.policy_misses.to_string(),
                        r.oracle_step.to_string(),
                        format!("{:.2}", r.oracle_j),
                        format!("{:.3}", r.captured()),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("summary", "all_workloads", &doc).map(|_| ())
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Summary: PAST peg-peg >98%/<93% vs constant speeds, {}s runs",
            self.secs
        )?;
        let table = ClockTable::sa1100();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.name().to_string(),
                    format!("{:.1} J", r.constant_top_j),
                    format!(
                        "{:.1} J ({:+.1}%, {} misses)",
                        r.policy_j,
                        -r.policy_saving() * 100.0,
                        r.policy_misses
                    ),
                    format!(
                        "{} @ {:.1} J ({:+.1}%)",
                        table.freq(r.oracle_step),
                        r.oracle_j,
                        -r.oracle_saving() * 100.0
                    ),
                    format!("{:.0}%", r.captured() * 100.0),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &[
                "workload",
                "constant 206.4",
                "best policy",
                "oracle constant",
                "captured",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> &'static Summary {
        use std::sync::OnceLock;
        static CELL: OnceLock<Summary> = OnceLock::new();
        CELL.get_or_init(|| run(1))
    }

    #[test]
    fn policy_never_misses_across_all_applications() {
        // "it never misses any deadline (across all the applications)".
        let s = summary();
        for r in &s.rows {
            assert_eq!(r.policy_misses, 0, "{} missed", r.benchmark.name());
        }
    }

    #[test]
    fn policy_saves_something_everywhere() {
        let s = summary();
        for r in &s.rows {
            assert!(
                r.policy_saving() > 0.0,
                "{}: {:.2}%",
                r.benchmark.name(),
                r.policy_saving() * 100.0
            );
        }
    }

    #[test]
    fn mpeg_oracle_is_132mhz() {
        let s = summary();
        assert_eq!(s.row(Benchmark::Mpeg).oracle_step, 5);
    }

    #[test]
    fn the_policy_leaves_much_to_be_desired_on_mpeg() {
        // The paper's closing complaint: far from the oracle.
        let s = summary();
        let r = s.row(Benchmark::Mpeg);
        assert!(
            r.captured() < 0.6,
            "captured {:.0}% of the oracle saving",
            r.captured() * 100.0
        );
    }

    #[test]
    fn light_workloads_have_slow_oracles() {
        // Web's rare heavy page loads keep its constant oracle at
        // 103.2 MHz; Chess (elastic planning) tolerates the bottom step.
        let s = summary();
        assert!(s.row(Benchmark::Web).oracle_step <= 3);
        assert_eq!(s.row(Benchmark::Chess).oracle_step, 0);
    }

    #[test]
    fn dynamic_scaling_suits_bursty_loads_not_periodic_ones() {
        // The interesting asymmetry: on bursty interactive Web the
        // dynamic policy beats even the best constant speed (idle at
        // 59 MHz, sprint at 206.4), while on periodic MPEG it captures
        // only a fraction of the constant oracle's saving.
        let s = summary();
        assert!(
            s.row(Benchmark::Web).captured() > 1.0,
            "Web captured {:.0}%",
            s.row(Benchmark::Web).captured() * 100.0
        );
        assert!(
            s.row(Benchmark::Mpeg).captured() < s.row(Benchmark::Web).captured(),
            "MPEG should trail Web"
        );
    }
}
