//! `obs::span` — a low-overhead hierarchical wall-clock span profiler.
//!
//! The paper's instrument is a 5 kHz DAQ watching the *hardware*; this
//! module is the equivalent instrument pointed at the *engine itself*:
//! where does the wall-clock time of a batch actually go — content-key
//! hashing, cache probes, simulation, encode + cache writes, journal
//! appends, or waiting on the worker pool?
//!
//! Design constraints, in order:
//!
//! 1. **Cheap enough to leave on.** [`enter`] on a disabled profiler is
//!    one relaxed atomic load. Enabled, a span is two `Instant` reads,
//!    one scan of a (tiny) thread-local intern table and one `Vec`
//!    push at exit — no locks, no hashing, no allocation on the
//!    steady-state path, no cross-thread traffic until [`drain`].
//! 2. **Share-nothing, merged per batch.** Every thread records into
//!    its own buffer; the engine collects each worker's buffer through
//!    its join handle (exactly like `WorkerMetrics`) and aggregates
//!    them into a [`SpanTree`] after the batch — so profiling cannot
//!    perturb scheduling or determinism.
//! 3. **Panic-correct.** Spans are scoped RAII guards: a job that
//!    panics unwinds through its guards, so every enter gets its exit
//!    recorded and the engine's `catch_unwind` retry path keeps the
//!    tree balanced.
//!
//! Records carry an interned *path id* (the stack of span names at
//! enter), so the merged output is a tree keyed by call path, not a
//! flat list: `job → simulate`, `drain → cache_write → result_encode`.
//!
//! Wall-clock spans are **never** part of a deterministic artifact:
//! trace exports embed them only behind `repro --profile`, and
//! `metrics.json` (which already holds nondeterministic `wall_us`)
//! carries their per-stage rollup.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Per-thread record cap: a runaway instrumented loop degrades into
/// counted drops (see [`ThreadSpans::dropped`]) instead of unbounded
/// memory. 2^18 records ≈ 6 MiB per thread at 24 bytes each.
const MAX_RECORDS: usize = 1 << 18;

/// Sentinel for "no enclosing span".
const NO_PATH: u32 = u32::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide profiling epoch all span timestamps are relative
/// to; fixed at first use so records from different threads share one
/// timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turns span collection on or off, process-wide. Off (the default)
/// makes [`enter`] a no-op; the `repro` binary switches it on for
/// `--profile` and `bench`.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first span so timestamps are
        // meaningful deltas, not time-since-first-span.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One interned path-table entry: this span name under that parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEntry {
    /// Index of the enclosing path in the same table; `None` for a
    /// root span.
    pub parent: Option<u32>,
    /// The span's own name (the last path segment).
    pub name: &'static str,
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Index into the owning thread's path table.
    pub path: u32,
    /// Start, nanoseconds since the profiling epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// One thread's drained span buffer: completed records plus the path
/// table that names them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadSpans {
    /// Path table; `SpanRec::path` indexes into it. Entries reference
    /// earlier entries only, so paths resolve in one forward pass.
    pub paths: Vec<PathEntry>,
    /// Completed spans, in exit order.
    pub records: Vec<SpanRec>,
    /// Exits discarded because the buffer hit its cap.
    pub dropped: u64,
}

impl ThreadSpans {
    /// Number of completed spans.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Resolves every path id to its full name chain, index-aligned
    /// with `paths`.
    fn resolved_paths(&self) -> Vec<Vec<&'static str>> {
        let mut out: Vec<Vec<&'static str>> = Vec::with_capacity(self.paths.len());
        for entry in &self.paths {
            let mut chain = match entry.parent {
                Some(p) => out[p as usize].clone(),
                None => Vec::new(),
            };
            chain.push(entry.name);
            out.push(chain);
        }
        out
    }
}

struct ThreadState {
    paths: Vec<PathEntry>,
    // (parent + 1, name) -> path id; key 0 encodes "no parent". A
    // profile has a dozen-odd distinct paths, so a linear scan with a
    // pointer-equality fast path beats hashing the key every enter.
    lookup: Vec<(u32, &'static str, u32)>,
    current: u32,
    open: usize,
    records: Vec<SpanRec>,
    dropped: u64,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            paths: Vec::new(),
            lookup: Vec::new(),
            current: NO_PATH,
            open: 0,
            records: Vec::new(),
            dropped: 0,
        }
    }

    fn intern(&mut self, name: &'static str) -> u32 {
        let parent_key = match self.current {
            NO_PATH => 0,
            p => p + 1,
        };
        for &(parent, known, id) in &self.lookup {
            // Same literal (the common case) compares by pointer; a
            // distinct literal with equal text still interns to the
            // same path via the string comparison.
            if parent == parent_key
                && (std::ptr::eq(known.as_ptr(), name.as_ptr()) && known.len() == name.len()
                    || known == name)
            {
                return id;
            }
        }
        let id = self.paths.len() as u32;
        self.paths.push(PathEntry {
            parent: (self.current != NO_PATH).then_some(self.current),
            name,
        });
        self.lookup.push((parent_key, name, id));
        id
    }
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Scoped span guard: records the span when dropped (including during
/// panic unwinding). Obtain via [`enter`].
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    /// `None` when profiling was off at enter time (pure no-op).
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    path: u32,
    prev: u32,
    start_ns: u64,
}

/// Opens a span named `name` on the current thread. The span closes
/// (and is recorded) when the returned guard drops — normally or
/// during unwinding. Nested calls build the hierarchical path.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let (path, prev) = STATE.with(|s| {
        let mut s = s.borrow_mut();
        let path = s.intern(name);
        let prev = s.current;
        s.current = path;
        s.open += 1;
        (path, prev)
    });
    SpanGuard {
        active: Some(ActiveSpan {
            path,
            prev,
            start_ns: now_ns(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let end_ns = now_ns();
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.current = span.prev;
            s.open = s.open.saturating_sub(1);
            if s.records.len() >= MAX_RECORDS {
                s.dropped += 1;
            } else {
                s.records.push(SpanRec {
                    path: span.path,
                    start_ns: span.start_ns,
                    dur_ns: end_ns.saturating_sub(span.start_ns),
                });
            }
        });
    }
}

/// Takes the current thread's completed spans, leaving the buffer
/// empty. The path table is *cloned*, not cleared — still-open guards
/// keep valid path ids and record into the fresh buffer on exit.
pub fn drain() -> ThreadSpans {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        ThreadSpans {
            paths: s.paths.clone(),
            records: std::mem::take(&mut s.records),
            dropped: std::mem::replace(&mut s.dropped, 0),
        }
    })
}

/// Number of spans currently open on this thread (guards entered but
/// not yet dropped). Zero whenever the thread is outside all
/// instrumented scopes — the balance invariant the integrity tests
/// assert.
pub fn in_flight() -> usize {
    STATE.with(|s| s.borrow().open)
}

/// A batch's merged profile: one drained buffer per participating
/// thread, labelled for display (`collector`, `worker-0`, …).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// `(label, spans)` per thread, in deterministic label order as
    /// assembled by the engine.
    pub threads: Vec<(String, ThreadSpans)>,
}

impl Profile {
    /// True if no thread recorded anything.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|(_, t)| t.is_empty())
    }

    /// Total completed spans across threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|(_, t)| t.len()).sum()
    }

    /// Aggregates all threads into one path-keyed tree.
    pub fn tree(&self) -> SpanTree {
        SpanTree::aggregate(self.threads.iter().map(|(_, t)| t))
    }
}

/// One node of the aggregated span tree: every span instance whose
/// path (stack of names) matches, across all threads, folded together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Last path segment.
    pub name: String,
    /// Span instances aggregated here.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u64,
    /// Child nodes, sorted by name.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time spent in this node but not in any recorded child —
    /// the double-count-free basis for per-stage breakdowns.
    pub fn self_ns(&self) -> u64 {
        let child_total: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(child_total)
    }
}

/// The merged, path-aggregated span tree of a batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Top-level spans, sorted by name.
    pub roots: Vec<SpanNode>,
    /// Exits lost to per-thread buffer caps, summed.
    pub dropped: u64,
}

impl SpanTree {
    /// Merges drained thread buffers into one tree. Aggregation is a
    /// pure fold over (path → count, total), so the result is
    /// independent of thread count and drain order — the property the
    /// `--jobs 1` vs `--jobs N` integrity test pins.
    pub fn aggregate<'a>(parts: impl IntoIterator<Item = &'a ThreadSpans>) -> SpanTree {
        let mut agg: BTreeMap<Vec<&'static str>, (u64, u64)> = BTreeMap::new();
        let mut dropped = 0u64;
        for ts in parts {
            dropped += ts.dropped;
            // Fold per path id first (thousands of records, a handful
            // of distinct paths), then merge the handful into the map.
            let mut per_path = vec![(0u64, 0u64); ts.paths.len()];
            for rec in &ts.records {
                let slot = &mut per_path[rec.path as usize];
                slot.0 += 1;
                slot.1 += rec.dur_ns;
            }
            let resolved = ts.resolved_paths();
            for (path, &(count, total_ns)) in resolved.iter().zip(&per_path) {
                if count > 0 {
                    let entry = agg.entry(path.clone()).or_insert((0, 0));
                    entry.0 += count;
                    entry.1 += total_ns;
                }
            }
        }
        let mut roots: Vec<SpanNode> = Vec::new();
        for (path, (count, total_ns)) in agg {
            let mut level = &mut roots;
            for (depth, &name) in path.iter().enumerate() {
                let pos = match level.iter().position(|n| n.name == name) {
                    Some(p) => p,
                    None => {
                        // Intermediate nodes that never closed (or were
                        // dropped) materialize with zero mass; the
                        // BTreeMap's lexicographic order keeps children
                        // sorted by name.
                        let at = level
                            .iter()
                            .position(|n| n.name.as_str() > name)
                            .unwrap_or(level.len());
                        level.insert(
                            at,
                            SpanNode {
                                name: name.to_string(),
                                count: 0,
                                total_ns: 0,
                                children: Vec::new(),
                            },
                        );
                        at
                    }
                };
                if depth + 1 == path.len() {
                    level[pos].count += count;
                    level[pos].total_ns += total_ns;
                    break;
                }
                level = &mut level[pos].children;
            }
        }
        SpanTree { roots, dropped }
    }

    /// Summed wall time of the root spans.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|n| n.total_ns).sum()
    }

    /// The node at an exact path, if present.
    pub fn find(&self, path: &[&str]) -> Option<&SpanNode> {
        let mut level = &self.roots;
        let mut found = None;
        for name in path {
            found = level.iter().find(|n| n.name == *name);
            level = &found?.children;
        }
        found
    }

    /// Total instance count of every node named `name`, anywhere in
    /// the tree.
    pub fn count_of(&self, name: &str) -> u64 {
        fn walk(nodes: &[SpanNode], name: &str) -> u64 {
            nodes
                .iter()
                .map(|n| u64::from(n.name == name) * n.count + walk(&n.children, name))
                .sum()
        }
        walk(&self.roots, name)
    }

    /// Self time (`total - children`) aggregated by span name across
    /// the whole tree — the per-stage wall-clock breakdown. Keys sort
    /// by name; values are nanoseconds.
    pub fn stage_self_totals(&self) -> BTreeMap<String, u64> {
        fn walk(nodes: &[SpanNode], out: &mut BTreeMap<String, u64>) {
            for n in nodes {
                *out.entry(n.name.clone()).or_insert(0) += n.self_ns();
                walk(&n.children, out);
            }
        }
        let mut out = BTreeMap::new();
        walk(&self.roots, &mut out);
        out
    }

    /// The tree's structure and counts with no timing — identical
    /// across runs that did the same work, whatever the worker count.
    pub fn shape(&self) -> String {
        fn walk(nodes: &[SpanNode], depth: usize, out: &mut String) {
            for n in nodes {
                let _ = writeln!(out, "{}{} x{}", "  ".repeat(depth), n.name, n.count);
                walk(&n.children, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(&self.roots, 0, &mut out);
        out
    }

    /// Human rendering with times and shares, for `repro -v` style
    /// inspection.
    pub fn render(&self) -> String {
        fn walk(nodes: &[SpanNode], depth: usize, whole_ns: u64, out: &mut String) {
            for n in nodes {
                let _ = writeln!(
                    out,
                    "{}{:<24} {:>10.3} ms  x{:<6} ({:.1}%)",
                    "  ".repeat(depth),
                    n.name,
                    n.total_ns as f64 / 1e6,
                    n.count,
                    if whole_ns == 0 {
                        0.0
                    } else {
                        n.total_ns as f64 / whole_ns as f64 * 100.0
                    },
                );
                walk(&n.children, depth + 1, whole_ns, out);
            }
        }
        let mut out = String::new();
        walk(&self.roots, 0, self.total_ns(), &mut out);
        if self.dropped > 0 {
            let _ = writeln!(out, "({} span exits dropped at buffer cap)", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global flag; each test restores
    /// the default (off) before releasing the lock.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _l = flag_lock();
        set_enabled(false);
        {
            let _a = enter("outer");
            let _b = enter("inner");
        }
        assert!(drain().is_empty());
        assert_eq!(in_flight(), 0);
    }

    #[test]
    fn nesting_builds_paths_and_exit_order() {
        let _l = flag_lock();
        set_enabled(true);
        let _ = drain();
        {
            let _a = enter("batch");
            {
                let _b = enter("job");
                let _c = enter("simulate");
            }
            {
                let _b = enter("job");
            }
        }
        set_enabled(false);
        let spans = drain();
        assert_eq!(spans.len(), 4, "simulate, job, job, batch");
        let tree = SpanTree::aggregate([&spans]);
        assert_eq!(tree.count_of("batch"), 1);
        assert_eq!(tree.count_of("job"), 2);
        let sim = tree
            .find(&["batch", "job", "simulate"])
            .expect("nested path");
        assert_eq!(sim.count, 1);
        assert!(tree.find(&["simulate"]).is_none(), "simulate is not a root");
        assert_eq!(in_flight(), 0);
    }

    #[test]
    fn unwinding_closes_spans() {
        let _l = flag_lock();
        set_enabled(true);
        let _ = drain();
        let result = std::panic::catch_unwind(|| {
            let _a = enter("job");
            let _b = enter("simulate");
            panic!("boom");
        });
        assert!(result.is_err());
        set_enabled(false);
        let spans = drain();
        assert_eq!(spans.len(), 2, "both guards recorded despite the panic");
        assert_eq!(in_flight(), 0, "no span left open");
    }

    #[test]
    fn drain_preserves_open_span_paths() {
        let _l = flag_lock();
        set_enabled(true);
        let _ = drain();
        let outer = enter("outer");
        let first = drain();
        assert!(first.is_empty(), "outer is still open");
        {
            let _inner = enter("inner");
        }
        drop(outer);
        set_enabled(false);
        let spans = drain();
        let tree = SpanTree::aggregate([&spans]);
        assert_eq!(
            tree.find(&["outer", "inner"]).map(|n| n.count),
            Some(1),
            "path ids survive a mid-span drain:\n{}",
            tree.shape()
        );
        assert_eq!(tree.count_of("outer"), 1);
    }

    #[test]
    fn aggregate_merges_threads_and_orders_children_by_name() {
        let _l = flag_lock();
        set_enabled(true);
        let _ = drain();
        let make = || {
            {
                let _a = enter("root");
                let _b = enter("zeta");
            }
            {
                let _a = enter("root");
                let _b = enter("alpha");
            }
            drain()
        };
        let local = make();
        let remote = std::thread::spawn(move || {
            set_enabled(true);
            let _a = enter("root");
            let _b = enter("alpha");
            drop(_b);
            drop(_a);
            drain()
        })
        .join()
        .expect("worker thread");
        set_enabled(false);
        let tree = SpanTree::aggregate([&local, &remote]);
        assert_eq!(tree.count_of("root"), 3);
        let root = tree.find(&["root"]).expect("root node");
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"], "children sorted by name");
        assert_eq!(tree.count_of("alpha"), 2);
        // Aggregation is order-independent.
        let swapped = SpanTree::aggregate([&remote, &local]);
        assert_eq!(tree.shape(), swapped.shape());
    }

    #[test]
    fn self_time_excludes_children() {
        let a = ThreadSpans {
            paths: vec![
                PathEntry {
                    parent: None,
                    name: "parent",
                },
                PathEntry {
                    parent: Some(0),
                    name: "child",
                },
            ],
            records: vec![
                SpanRec {
                    path: 1,
                    start_ns: 10,
                    dur_ns: 30,
                },
                SpanRec {
                    path: 0,
                    start_ns: 0,
                    dur_ns: 100,
                },
            ],
            dropped: 0,
        };
        let tree = SpanTree::aggregate([&a]);
        let parent = tree.find(&["parent"]).expect("parent");
        assert_eq!(parent.total_ns, 100);
        assert_eq!(parent.self_ns(), 70);
        let stages = tree.stage_self_totals();
        assert_eq!(stages["parent"], 70);
        assert_eq!(stages["child"], 30);
        assert_eq!(tree.total_ns(), 100, "roots only");
    }

    #[test]
    fn render_and_shape_mention_counts() {
        let a = ThreadSpans {
            paths: vec![PathEntry {
                parent: None,
                name: "simulate",
            }],
            records: vec![SpanRec {
                path: 0,
                start_ns: 0,
                dur_ns: 2_000_000,
            }],
            dropped: 1,
        };
        let tree = SpanTree::aggregate([&a]);
        assert_eq!(tree.shape(), "simulate x1\n");
        let render = tree.render();
        assert!(render.contains("simulate"), "{render}");
        assert!(render.contains("dropped"), "{render}");
    }
}
