//! Input-generation strategies: ranges, tuples, `any`, `Just`, vectors.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate a random test input.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A value generated "anywhere in the type's domain".
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_int {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )+};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Hit the endpoints occasionally: boundary values are where
        // range-dependent properties break.
        match rng.below(64) {
            0 => *self.start(),
            1 => *self.end(),
            _ => *self.start() + rng.unit_f64() * (*self.end() - *self.start()),
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` of a random in-range length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..5_000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (0usize..=4).generate(&mut rng);
            assert!(i <= 4);
            let neg = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn inclusive_f64_hits_endpoints() {
        let mut rng = TestRng::for_test("endpoints");
        let s = 0.0f64..=1.0;
        let draws: Vec<f64> = (0..2_000).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&0.0));
        assert!(draws.contains(&1.0));
        assert!(draws.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = crate::collection::vec((0.0f64..1.0, 1u64..10), 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            for (f, n) in v {
                assert!((0.0..1.0).contains(&f));
                assert!((1..10).contains(&n));
            }
        }
    }
}
