//! Moving averages and test-signal generation.

use sim_core::{SimTime, TimeSeries};

/// Trailing moving average over `window` samples. Output `i` is the
/// mean of inputs `max(0, i−window+1) ..= i` (shorter at the head).
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(signal.len());
    let mut acc = 0.0;
    for i in 0..signal.len() {
        acc += signal[i];
        if i >= window {
            acc -= signal[i - window];
        }
        let n = (i + 1).min(window);
        out.push(acc / n as f64);
    }
    out
}

/// Applies [`moving_average`] to a [`TimeSeries`], keeping timestamps —
/// e.g. turning the 10 ms utilization quanta of Figure 3 into the
/// 100 ms moving average of Figure 4 (`window = 10`).
pub fn moving_average_series(series: &TimeSeries, window: usize) -> TimeSeries {
    let avg = moving_average(&series.values(), window);
    let mut out = TimeSeries::new(format!("{}_ma{window}", series.name));
    for (t, v) in series.times_us().into_iter().zip(avg) {
        out.push(SimTime::from_micros(t), v);
    }
    out
}

/// A 0/1 rectangle wave: `busy` ones then `idle` zeros, repeated to
/// `len` samples — §5.3's idealized MPEG load ("busy for 9 cycles, and
/// then idle for 1 cycle").
///
/// # Panics
///
/// Panics if both `busy` and `idle` are zero.
pub fn square_wave(busy: usize, idle: usize, len: usize) -> Vec<f64> {
    let period = busy + idle;
    assert!(period > 0, "degenerate wave");
    (0..len)
        .map(|i| ((i % period) < busy) as u8 as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_is_identity() {
        let sig = [0.2, 0.8, 0.5];
        assert_eq!(moving_average(&sig, 1), sig.to_vec());
    }

    #[test]
    fn head_uses_partial_windows() {
        let sig = [1.0, 0.0, 1.0, 0.0];
        let ma = moving_average(&sig, 4);
        assert_eq!(ma[0], 1.0);
        assert_eq!(ma[1], 0.5);
        assert!((ma[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn smoothing_reduces_peak_to_peak() {
        let sig = square_wave(9, 1, 200);
        let ma = moving_average(&sig, 10);
        let steady = &ma[20..];
        let swing = steady.iter().cloned().fold(0.0_f64, f64::max)
            - steady.iter().cloned().fold(1.0_f64, f64::min);
        // A 10-sample mean of a period-10 wave is perfectly flat.
        assert!(swing < 1e-12, "swing = {swing}");
        assert!((steady[0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mismatched_window_still_oscillates() {
        // The paper's point about "averaging the appropriate period":
        // a window shorter than the wave period leaves residual swing.
        let sig = square_wave(9, 1, 200);
        let ma = moving_average(&sig, 4);
        let steady = &ma[20..];
        let swing = steady.iter().cloned().fold(0.0_f64, f64::max)
            - steady.iter().cloned().fold(1.0_f64, f64::min);
        assert!(swing > 0.2, "swing = {swing}");
    }

    #[test]
    fn series_wrapper_keeps_timestamps() {
        let mut s = TimeSeries::new("u");
        for i in 0..20u64 {
            s.push(SimTime::from_millis(10 * (i + 1)), (i % 2) as f64);
        }
        let ma = moving_average_series(&s, 10);
        assert_eq!(ma.len(), 20);
        assert_eq!(ma.times_us(), s.times_us());
        assert!((ma.values().last().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(ma.name, "u_ma10");
    }

    #[test]
    fn square_wave_duty_cycle() {
        let w = square_wave(9, 1, 1000);
        let duty = w.iter().sum::<f64>() / w.len() as f64;
        assert!((duty - 0.9).abs() < 1e-12);
        assert_eq!(w[0], 1.0);
        assert_eq!(w[9], 0.0);
        assert_eq!(w[10], 1.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = moving_average(&[1.0], 0);
    }
}
