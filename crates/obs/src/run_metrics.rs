//! The per-batch metrics summary written as `metrics.json`.
//!
//! [`RunMetrics`] is the operator-facing rollup the engine derives from
//! [`BatchStats`-like counts plus merged worker metrics]: how much work
//! the batch did, how much the cache absorbed, and how the simulated
//! machines behaved (transition counts, dropped scheduler records).
//!
//! The JSON is hand-rolled like every other serializer in this
//! workspace (the vendored `serde` is marker-traits only). Derived
//! rates carry fixed six-digit precision so the file is byte-stable for
//! a given set of inputs; wall-clock fields (`wall_us`, `jobs_per_sec`,
//! `sim_per_wall`) are *not* deterministic across runs, which is why CI
//! excludes `metrics.json` from its byte-identity diffs.

use std::fmt::Write as _;

/// Wall-clock time attributed to one profiler stage (span name).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageMetrics {
    /// Span name ("simulate", "cache_probe", …).
    pub stage: String,
    /// Self time summed across all spans with this name, µs.
    pub total_us: u64,
    /// `total_us` over the sum of all stages' self time.
    pub share: f64,
}

/// Simulated-machine counts attributed to one policy label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyMetrics {
    /// The policy's display label.
    pub policy: String,
    /// Grid cells run under this policy.
    pub cells: u64,
    /// Clock-step transitions summed over the policy's cells.
    pub clock_switches: u64,
    /// Voltage transitions summed over the policy's cells.
    pub voltage_switches: u64,
}

/// One batch's aggregated metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Batch label (the results subdirectory name).
    pub batch: String,
    /// Cells requested.
    pub total: u64,
    /// Cells actually simulated this run.
    pub executed: u64,
    /// Cells served from the result cache.
    pub cache_hits: u64,
    /// Cells recovered from the journal on resume.
    pub journal_hits: u64,
    /// Cells that exhausted their retry budget.
    pub failed: u64,
    /// Failure records dropped once the stream's bounded retention
    /// filled — `failed` still counts them; only their details are
    /// gone.
    pub failures_dropped: u64,
    /// Damaged cache entries quarantined.
    pub quarantined: u64,
    /// Attempts beyond the first, summed over cells.
    pub retries: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Scheduler log records dropped (capacity), summed over cells.
    pub sched_dropped: u64,
    /// Clock-step transitions summed over simulated cells.
    pub clock_switches: u64,
    /// Voltage transitions summed over simulated cells.
    pub voltage_switches: u64,
    /// `cache_hits / total`, 0 for an empty batch.
    pub cache_hit_rate: f64,
    /// Cells completed per wall-clock second.
    pub jobs_per_sec: f64,
    /// Simulated time over wall time (aggregate speedup).
    pub sim_per_wall: f64,
    /// Wall-clock duration of the batch, µs.
    pub wall_us: u64,
    /// Simulated time covered, summed over simulated cells, µs.
    pub sim_us: u64,
    /// Peak resident-set size of the whole process at the end of the
    /// batch, bytes (`0` where the host has no procfs). Monotone over
    /// the process, so on a multi-batch run each batch reports the
    /// max so far — the fleet memory gate runs one batch per process.
    pub peak_rss_bytes: u64,
    /// Median per-job wall latency, µs (0 when no jobs executed).
    pub job_latency_p50_us: f64,
    /// 90th-percentile per-job wall latency, µs.
    pub job_latency_p90_us: f64,
    /// 99th-percentile per-job wall latency, µs.
    pub job_latency_p99_us: f64,
    /// Worst per-job wall latency, µs.
    pub job_latency_max_us: f64,
    /// Per-stage wall-clock breakdown from the span profiler, sorted
    /// by stage name; empty when profiling was off.
    pub stages: Vec<StageMetrics>,
    /// Per-policy breakdown, sorted by label.
    pub per_policy: Vec<PolicyMetrics>,
}

impl RunMetrics {
    /// Fills the derived rate fields from the raw counts.
    pub fn finalize(&mut self) {
        self.cache_hit_rate = if self.total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.total as f64
        };
        self.jobs_per_sec = sim_core::rate_per_sec(self.total, self.wall_us);
        self.sim_per_wall = if self.wall_us > 0 {
            self.sim_us as f64 / self.wall_us as f64
        } else {
            0.0
        };
        self.per_policy.sort_by(|a, b| a.policy.cmp(&b.policy));
        self.stages.sort_by(|a, b| a.stage.cmp(&b.stage));
    }

    /// Fills the per-job latency percentile fields from a log-bucketed
    /// latency histogram (typically the merged workers'
    /// `job_latency_us`). A `None`/empty histogram zeroes them.
    pub fn set_job_latencies(&mut self, hist: Option<&sim_core::LogHistogram>) {
        let (p50, p90, p99, max) = match hist {
            Some(h) if h.count() > 0 => (
                h.percentile(0.50).unwrap_or(0.0),
                h.percentile(0.90).unwrap_or(0.0),
                h.percentile(0.99).unwrap_or(0.0),
                h.max().unwrap_or(0.0),
            ),
            _ => (0.0, 0.0, 0.0, 0.0),
        };
        self.job_latency_p50_us = p50;
        self.job_latency_p90_us = p90;
        self.job_latency_p99_us = p99;
        self.job_latency_max_us = max;
    }

    /// Fills the per-stage breakdown from `(stage, self_ns)` totals as
    /// produced by `SpanTree::stage_self_totals`.
    pub fn set_stages<'a>(&mut self, totals: impl IntoIterator<Item = (&'a str, u64)>) {
        let stages: Vec<(String, u64)> = totals
            .into_iter()
            .map(|(name, ns)| (name.to_string(), ns / 1_000))
            .collect();
        let whole: u64 = stages.iter().map(|(_, us)| us).sum();
        self.stages = stages
            .into_iter()
            .map(|(stage, total_us)| StageMetrics {
                stage,
                total_us,
                share: if whole == 0 {
                    0.0
                } else {
                    total_us as f64 / whole as f64
                },
            })
            .collect();
        self.stages.sort_by(|a, b| a.stage.cmp(&b.stage));
    }

    /// Renders the metrics as a JSON document (trailing newline).
    ///
    /// `per_policy` comes last so that a first-occurrence scan for a
    /// top-level key (as the tests do) never picks up a per-policy
    /// field of the same name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"batch\": \"{}\",", escape(&self.batch));
        let _ = writeln!(out, "  \"total\": {},", self.total);
        let _ = writeln!(out, "  \"executed\": {},", self.executed);
        let _ = writeln!(out, "  \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(out, "  \"journal_hits\": {},", self.journal_hits);
        let _ = writeln!(out, "  \"failed\": {},", self.failed);
        let _ = writeln!(out, "  \"failures_dropped\": {},", self.failures_dropped);
        let _ = writeln!(out, "  \"quarantined\": {},", self.quarantined);
        let _ = writeln!(out, "  \"retries\": {},", self.retries);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"sched_dropped\": {},", self.sched_dropped);
        let _ = writeln!(out, "  \"clock_switches\": {},", self.clock_switches);
        let _ = writeln!(out, "  \"voltage_switches\": {},", self.voltage_switches);
        let _ = writeln!(out, "  \"cache_hit_rate\": {:.6},", self.cache_hit_rate);
        let _ = writeln!(out, "  \"jobs_per_sec\": {:.6},", self.jobs_per_sec);
        let _ = writeln!(out, "  \"sim_per_wall\": {:.6},", self.sim_per_wall);
        let _ = writeln!(out, "  \"wall_us\": {},", self.wall_us);
        let _ = writeln!(out, "  \"sim_us\": {},", self.sim_us);
        let _ = writeln!(out, "  \"peak_rss_bytes\": {},", self.peak_rss_bytes);
        let _ = writeln!(
            out,
            "  \"job_latency_p50_us\": {:.6},",
            self.job_latency_p50_us
        );
        let _ = writeln!(
            out,
            "  \"job_latency_p90_us\": {:.6},",
            self.job_latency_p90_us
        );
        let _ = writeln!(
            out,
            "  \"job_latency_p99_us\": {:.6},",
            self.job_latency_p99_us
        );
        let _ = writeln!(
            out,
            "  \"job_latency_max_us\": {:.6},",
            self.job_latency_max_us
        );
        out.push_str("  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"stage\": \"{}\", \"total_us\": {}, \"share\": {:.6}}}",
                escape(&s.stage),
                s.total_us,
                s.share
            );
        }
        if !self.stages.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"per_policy\": [");
        for (i, p) in self.per_policy.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"policy\": \"{}\", \"cells\": {}, \"clock_switches\": {}, \
                 \"voltage_switches\": {}}}",
                escape(&p.policy),
                p.cells,
                p.clock_switches,
                p.voltage_switches
            );
        }
        if !self.per_policy.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// One-line human summary for the end of a `repro` batch.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "metrics: {} cells, {:.0}% cache hit, {:.1} jobs/s, {:.0}x sim/wall, \
             {} clock + {} voltage switches, {} retries, {} sched drops",
            self.total,
            self.cache_hit_rate * 100.0,
            self.jobs_per_sec,
            self.sim_per_wall,
            self.clock_switches,
            self.voltage_switches,
            self.retries,
            self.sched_dropped
        );
        if self.failures_dropped > 0 {
            let _ = write!(line, ", {} failure records dropped", self.failures_dropped);
        }
        line
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        let mut m = RunMetrics {
            batch: "sweep".to_string(),
            total: 50,
            executed: 40,
            cache_hits: 10,
            journal_hits: 0,
            failed: 0,
            quarantined: 1,
            retries: 2,
            workers: 4,
            sched_dropped: 0,
            clock_switches: 123,
            voltage_switches: 45,
            wall_us: 2_000_000,
            sim_us: 100_000_000,
            per_policy: vec![
                PolicyMetrics {
                    policy: "zz".to_string(),
                    cells: 25,
                    clock_switches: 100,
                    voltage_switches: 40,
                },
                PolicyMetrics {
                    policy: "aa".to_string(),
                    cells: 25,
                    clock_switches: 23,
                    voltage_switches: 5,
                },
            ],
            ..RunMetrics::default()
        };
        m.finalize();
        m
    }

    #[test]
    fn finalize_computes_rates_and_sorts_policies() {
        let m = sample();
        assert!((m.cache_hit_rate - 0.2).abs() < 1e-9);
        assert!((m.jobs_per_sec - 25.0).abs() < 1e-9);
        assert!((m.sim_per_wall - 50.0).abs() < 1e-9);
        assert_eq!(m.per_policy[0].policy, "aa");
        assert_eq!(m.per_policy[1].policy, "zz");
    }

    #[test]
    fn finalize_handles_empty_batch() {
        let mut m = RunMetrics::default();
        m.finalize();
        assert_eq!(m.cache_hit_rate, 0.0);
        assert_eq!(m.jobs_per_sec, 0.0);
        assert_eq!(m.sim_per_wall, 0.0);
    }

    #[test]
    fn json_puts_per_policy_last_and_is_well_formed() {
        let m = sample();
        let json = m.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("]\n}\n"));
        let top = json.find("\"clock_switches\": 123").expect("top-level");
        let nested = json.find("\"per_policy\"").expect("breakdown");
        assert!(top < nested, "top-level keys precede per_policy");
        assert!(json.contains("\"cache_hit_rate\": 0.200000"));
        assert!(json.contains(
            "{\"policy\": \"aa\", \"cells\": 25, \"clock_switches\": 23, \"voltage_switches\": 5}"
        ));
    }

    #[test]
    fn json_escapes_policy_labels() {
        let mut m = RunMetrics {
            batch: "b".to_string(),
            per_policy: vec![PolicyMetrics {
                policy: "Thresholds: >98%/\"peg\"".to_string(),
                cells: 1,
                clock_switches: 0,
                voltage_switches: 0,
            }],
            ..RunMetrics::default()
        };
        m.finalize();
        assert!(m.to_json().contains("\\\"peg\\\""));
    }

    #[test]
    fn latency_fields_fill_from_log_histogram_and_render() {
        let mut h = sim_core::LogHistogram::new();
        for v in [100.0, 200.0, 400.0, 800.0, 100_000.0] {
            h.record(v);
        }
        let mut m = sample();
        m.set_job_latencies(Some(&h));
        assert!(m.job_latency_p50_us > 0.0);
        assert!(m.job_latency_p50_us <= m.job_latency_p90_us);
        assert!(m.job_latency_p90_us <= m.job_latency_p99_us);
        assert!(m.job_latency_p99_us <= m.job_latency_max_us);
        assert_eq!(m.job_latency_max_us, 100_000.0);
        let json = m.to_json();
        assert!(json.contains("\"job_latency_p50_us\": "));
        assert!(json.contains("\"job_latency_max_us\": 100000.000000"));
        m.set_job_latencies(None);
        assert_eq!(m.job_latency_max_us, 0.0);
    }

    #[test]
    fn stages_sort_and_share_sums_to_one() {
        let mut m = sample();
        m.set_stages([("simulate", 3_000_000u64), ("cache_probe", 1_000_000u64)]);
        assert_eq!(m.stages[0].stage, "cache_probe");
        assert_eq!(m.stages[0].total_us, 1_000);
        assert_eq!(m.stages[1].stage, "simulate");
        let share_sum: f64 = m.stages.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        let json = m.to_json();
        let stages_at = json.find("\"stages\"").expect("stages key");
        let per_policy_at = json.find("\"per_policy\"").expect("per_policy key");
        assert!(stages_at < per_policy_at, "stages precede per_policy");
        assert!(json.contains("{\"stage\": \"simulate\", \"total_us\": 3000, \"share\": 0.750000}"));
    }

    #[test]
    fn empty_stages_render_as_empty_array() {
        let json = sample().to_json();
        assert!(json.contains("\"stages\": [],"));
    }

    #[test]
    fn summary_line_mentions_key_numbers() {
        let line = sample().summary_line();
        assert!(line.contains("50 cells"));
        assert!(line.contains("20% cache hit"));
        assert!(line.contains("123 clock"));
        assert!(!line.contains("failure records dropped"));
    }

    #[test]
    fn dropped_failures_surface_in_json_and_summary() {
        let mut m = sample();
        m.failures_dropped = 18;
        let json = m.to_json();
        let failed_at = json.find("\"failed\": 0,").expect("failed key");
        let dropped_at = json
            .find("\"failures_dropped\": 18,")
            .expect("failures_dropped key");
        assert!(failed_at < dropped_at, "dropped count follows failed");
        assert!(m.summary_line().contains("18 failure records dropped"));
    }
}
