//! Quickstart: simulate the Itsy playing MPEG under the paper's best
//! clock-scheduling policy and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use itsy_dvs::apps::Benchmark;
use itsy_dvs::dvs::IntervalScheduler;
use itsy_dvs::hw::ClockTable;
use itsy_dvs::kernel::{Kernel, KernelConfig, Machine};
use itsy_dvs::sim::SimDuration;

fn main() {
    // 1. Build an Itsy: SA-1100 at 206.4 MHz, display + audio powered.
    let machine = Machine::itsy(10, Benchmark::Mpeg.devices());

    // 2. Boot the simulated kernel for a 30 s run.
    let mut kernel = Kernel::new(
        machine,
        KernelConfig {
            duration: SimDuration::from_secs(30),
            ..KernelConfig::default()
        },
    );

    // 3. Start the MPEG player (video + audio processes).
    Benchmark::Mpeg.spawn_into(&mut kernel, /* seed */ 42);

    // 4. Install the paper's best policy: PAST prediction, peg-to-
    //    extremes speed setting, >98 % / <93 % thresholds.
    kernel.install_policy(Box::new(IntervalScheduler::best_from_paper(
        ClockTable::sa1100(),
    )));

    // 5. Run and inspect.
    let report = kernel.run();
    println!("simulated          : {}", report.elapsed);
    println!("energy             : {}", report.energy);
    println!("mean power         : {:.3} W", report.mean_power_w());
    println!("mean utilization   : {:.3}", report.mean_utilization());
    println!("clock switches     : {}", report.clock_switches);
    println!("time lost to stalls: {}", report.stalled);
    println!(
        "deadline misses    : {} of {} ({} worst lateness)",
        report.deadlines.misses(SimDuration::from_millis(100)),
        report.deadlines.len(),
        report.deadlines.max_lateness(),
    );
    println!(
        "final clock        : {:.1} MHz",
        report.freq_mhz.values().last().copied().unwrap_or(0.0)
    );
}
