//! Hot-loop timing: where one short simulation's wall time goes.
//!
//! Times `Kernel::run` under several configurations, the engine's
//! `JobSpec::execute` (the `repro bench` hot loop), the tick-by-tick
//! reference kernel the batched fast path is proven against, and the
//! summary-fidelity mode that skips per-tick emission (O(1) per
//! uniform span when the policy is memoryless or absent).
//!
//! ```sh
//! cargo run --release --example hotloop
//! ```

use std::time::Instant;

use itsy_hw::{DeviceSet, Work};
use kernel_sim::task::FnBehavior;
use kernel_sim::{Kernel, KernelConfig, Machine, TaskAction};
use policies::IntervalScheduler;
use sim_core::{SimDuration, SimFidelity};
use workloads::{Benchmark, MpegConfig, MpegWorkload};

fn time_case(label: &str, workload: &str, policy: bool, reference: bool, fidelity: SimFidelity) {
    let secs = 2u64;
    let iters = 500u32;
    let build = || {
        let devices = if workload == "mpeg" {
            DeviceSet::AV
        } else {
            DeviceSet::NONE
        };
        let mut k = Kernel::new(
            Machine::itsy(10, devices),
            KernelConfig {
                duration: SimDuration::from_secs(secs),
                reference,
                fidelity,
                ..KernelConfig::default()
            },
        );
        match workload {
            "mpeg" => {
                for t in MpegWorkload::new(MpegConfig::default(), 1).into_tasks() {
                    k.spawn(t);
                }
            }
            "busy" => {
                k.spawn(Box::new(FnBehavior::new("busy", |_ctx| {
                    TaskAction::Compute(Work::cycles(1.0e9))
                })));
            }
            _ => {} // idle: no tasks at all
        }
        if policy {
            k.install_policy(Box::new(IntervalScheduler::best_from_paper(
                itsy_hw::ClockTable::sa1100(),
            )));
        }
        k
    };
    for _ in 0..50 {
        std::hint::black_box(build().run());
    }
    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(build().run());
    }
    let us = t.elapsed().as_micros() as f64;
    let ticks = iters as f64 * secs as f64 * 100.0;
    println!(
        "{label:36} {:8.0} sims/s  {:6.1} ns/tick",
        iters as f64 * 1e6 / us,
        us * 1000.0 / ticks
    );
}

fn time_exec(label: &str, f: &mut dyn FnMut()) {
    let iters = 500u32;
    for _ in 0..50 {
        f();
    }
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    let us = t.elapsed().as_micros() as f64;
    println!(
        "{label:36} {:8.0} sims/s  {:6.1} us/sim",
        iters as f64 * 1e6 / us,
        us / iters as f64
    );
}

fn main() {
    use SimFidelity::{Full, Summary};
    time_case("mpeg + policy (batched)", "mpeg", true, false, Full);
    time_case("mpeg + policy (reference)", "mpeg", true, true, Full);
    time_case("mpeg + policy (summary)", "mpeg", true, false, Summary);
    time_case("mpeg, no policy (batched)", "mpeg", false, false, Full);
    time_case("mpeg, no policy (summary)", "mpeg", false, false, Summary);
    time_case("busy + policy (batched)", "busy", true, false, Full);
    time_case("busy + policy (reference)", "busy", true, true, Full);
    time_case("busy + policy (summary)", "busy", true, false, Summary);
    time_case("busy, no policy (batched)", "busy", false, false, Full);
    time_case("busy, no policy (summary)", "busy", false, false, Summary);
    time_case("idle, no policy (batched)", "idle", false, false, Full);
    time_case("idle, no policy (reference)", "idle", false, true, Full);
    time_case(
        "idle, no policy (summary, O(1))",
        "idle",
        false,
        false,
        Summary,
    );

    let spec = engine::JobSpec::new(
        engine::WorkloadSpec::Benchmark(Benchmark::Mpeg),
        policies::PolicyDesc::best_from_paper(),
        2,
        1,
    );
    let summary_spec = spec.clone().with_fidelity(SimFidelity::Summary);
    time_exec("JobSpec::execute (bench hot)", &mut || {
        std::hint::black_box(spec.execute());
    });
    time_exec("JobSpec::execute_reference", &mut || {
        std::hint::black_box(spec.execute_reference());
    });
    time_exec("JobSpec::execute (summary)", &mut || {
        std::hint::black_box(summary_spec.execute());
    });
}
