//! Reproduction harness: every table and figure in the paper's
//! evaluation, regenerated from the simulator.
//!
//! Each module corresponds to one artifact and exposes a `run(...)`
//! function returning a typed result with a `Display` implementation
//! that prints the same rows/series the paper reports, plus CSV export.
//! The `repro` binary runs any or all of them:
//!
//! ```text
//! cargo run --release -p experiments --bin repro -- all
//! cargo run --release -p experiments --bin repro -- table2 fig9
//! ```
//!
//! | id | paper artifact |
//! |----|----------------|
//! | `fig3`   | per-quantum utilization vs time, four workloads @206.4 MHz |
//! | `fig4`   | the same under a 100 ms moving average |
//! | `fig5`   | the simple-averaging policy worked example |
//! | `table1` | AVG_9 weighted-average trace with scale actions |
//! | `fig6`   | Fourier transform of the decaying exponential |
//! | `fig7`   | AVG_3 filtering of the 9/1 rectangle wave |
//! | `fig8`   | clock frequency vs time, MPEG under the best policy |
//! | `table2` | MPEG energy, five configurations, 95 % CIs |
//! | `fig9`   | utilization vs clock frequency (memory plateau) |
//! | `table3` | memory access cycles per clock step |
//! | `battery`| idle battery lifetime at 59 vs 206.4 MHz |
//! | `sa2`    | the §2.1 StrongARM SA-2 energy/delay example |
//! | `cost`   | clock/voltage switch cost measurement |
//! | `sweep`  | the §5.3 policy parameter sweep |
//! | `deadline` | §6 future work: the deadline governor vs the heuristics |
//! | `ablation` | interval-length / memory-model / voltage-threshold ablations |
//! | `govil` | the Govil et al. predictor family on the workloads |
//! | `elastic` | Pering-style energy-vs-frame-rate trade-off |
//! | `tracedriven` | trace-driven vs live evaluation of the same policy |
//! | `timescale` | dominant utilization periods (frame time, 30 ms poll) |
//! | `summary` | best policy vs constant-speed oracle, all workloads |
//! | `oracle` | Weiser's OPT/FUTURE/PAST trio on recorded work traces |
//! | `memprobe` | lmbench-style validation of Table 3 through the execution path |
//! | `modern` | the paper's policy vs Linux cpufreq ondemand/conservative |
//! | `spectrum` | measured MPEG utilization spectrum: frame lines vs AVG_N |
//! | `optgap` | exact YDS optimum vs the online speed-scaling canon |
//! | `trace` | deterministic structured-event export (CSV + Chrome JSON) |
//!
//! Not a paper artifact but run the same way: `repro bench`
//! ([`bench_cmd`]) measures the harness itself and writes
//! `BENCH_*.json` performance reports.

pub mod ablation;
pub mod battery_exp;
pub mod bench_cmd;
pub mod deadline_exp;
pub mod elastic;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet_cmd;
pub mod govil_exp;
pub mod memprobe;
pub mod modern;
pub mod optgap_cmd;
pub mod oracle_exp;
pub mod plot;
pub mod report;
pub mod runner;
pub mod sa2;
pub mod spectrum;
pub mod summary;
pub mod sweep;
pub mod switch_cost;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod timescale;
pub mod trace_exp;
pub mod tracedriven;

pub use runner::{measure_energy, run_benchmark, RunSpec};
