//! On-disk result cache, keyed by job content address.
//!
//! Layout: `<dir>/<first two hex chars of key>/<key>.entry`, sharded so
//! a full-grid sweep (thousands of cells) does not put every entry in
//! one directory. Each entry is a three-line text file:
//!
//! ```text
//! itsy-dvs engine cache v1
//! spec=<canonical spec string>
//! result=<JobResult::encode() output>
//! ```
//!
//! The canonical spec is stored alongside the result so a hash
//! collision (or a stale entry after a `SIM_VERSION` bump that somehow
//! kept the same key) is *detected* — the entry is ignored unless the
//! stored spec matches the requesting spec byte-for-byte.
//!
//! Writes go through a temp file + rename so a run killed mid-write
//! never leaves a half-entry that poisons a later `--resume`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::job::{JobResult, JobSpec};
use crate::key::ContentKey;

/// Format fence for entry files.
const HEADER: &str = "itsy-dvs engine cache v1";

/// A content-addressed store of job results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (without touching the filesystem) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for a key.
    fn entry_path(&self, key: ContentKey) -> PathBuf {
        let hex = key.to_string();
        self.dir.join(&hex[..2]).join(format!("{hex}.entry"))
    }

    /// Looks up a spec. Returns `None` on missing, malformed, or
    /// spec-mismatched entries — never an error; a broken entry is
    /// simply recomputed and overwritten.
    pub fn load(&self, spec: &JobSpec) -> Option<JobResult> {
        let text = fs::read_to_string(self.entry_path(spec.key())).ok()?;
        let mut lines = text.lines();
        if lines.next()? != HEADER {
            return None;
        }
        let stored_spec = lines.next()?.strip_prefix("spec=")?;
        if stored_spec != spec.canonical() {
            return None;
        }
        JobResult::decode(lines.next()?.strip_prefix("result=")?)
    }

    /// Stores a result, atomically.
    pub fn store(&self, spec: &JobSpec, result: &JobResult) -> io::Result<()> {
        let path = self.entry_path(spec.key());
        let parent = path.parent().expect("entry path has a shard dir");
        fs::create_dir_all(parent)?;
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        fs::write(
            &tmp,
            format!(
                "{HEADER}\nspec={}\nresult={}\n",
                spec.canonical(),
                result.encode()
            ),
        )?;
        fs::rename(&tmp, &path)
    }

    /// Number of entries on disk (test/report helper; walks the tree).
    pub fn len(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.dir) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|d| fs::read_dir(d.path()).ok())
            .flatten()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "entry"))
            .count()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkloadSpec;
    use policies::PolicyDesc;
    use workloads::Benchmark;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("engine-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(dir)
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec::new(
            WorkloadSpec::Benchmark(Benchmark::Web),
            PolicyDesc::best_from_paper(),
            5,
            seed,
        )
    }

    fn result(x: f64) -> JobResult {
        JobResult {
            energy_j: x,
            core_energy_j: x / 3.0,
            mean_freq_mhz: 100.0,
            mean_utilization: 0.5,
            misses: 1,
            max_lateness_us: 2,
            clock_switches: 3,
            voltage_switches: 4,
            final_step: 5,
            frames_shown: 6,
            frames_dropped: 7,
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let cache = temp_cache("roundtrip");
        assert!(cache.is_empty());
        assert_eq!(cache.load(&spec(1)), None);
        cache.store(&spec(1), &result(0.1)).expect("store");
        assert_eq!(cache.load(&spec(1)), Some(result(0.1)));
        assert_eq!(cache.load(&spec(2)), None, "other specs unaffected");
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = temp_cache("corrupt");
        cache.store(&spec(1), &result(0.1)).expect("store");
        let path = cache.entry_path(spec(1).key());
        fs::write(&path, "not an entry").expect("corrupt it");
        assert_eq!(cache.load(&spec(1)), None);
        // And it can be healed by a fresh store.
        cache.store(&spec(1), &result(0.2)).expect("re-store");
        assert_eq!(cache.load(&spec(1)), Some(result(0.2)));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn spec_mismatch_is_rejected() {
        // Simulate a key collision: entry exists under the right key
        // but records a different canonical spec.
        let cache = temp_cache("mismatch");
        let s = spec(1);
        cache.store(&s, &result(0.1)).expect("store");
        let path = cache.entry_path(s.key());
        let text = fs::read_to_string(&path).expect("read");
        let forged = text.replace("seed=1", "seed=999");
        fs::write(&path, forged).expect("forge");
        assert_eq!(cache.load(&s), None, "stored spec must match exactly");
        let _ = fs::remove_dir_all(cache.dir());
    }
}
