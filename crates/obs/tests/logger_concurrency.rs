//! `obs::logger` under concurrency: leveled filtering, the
//! `--quiet`/`-v` verbosity switch, and — the property the single
//! `write_fmt`-per-record design exists for — no interleaved or torn
//! lines when many workers log simultaneously.
//!
//! The logger's verbosity and capture sink are process-global, so
//! every test grabs one shared lock and restores the default
//! verbosity (`Info`) before releasing it.

use std::sync::Mutex;
use std::thread;

use obs::logger::{capture_begin, capture_end};
use obs::{enabled, set_verbosity, verbosity, Level};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn many_workers_logging_at_once_never_tear_a_line() {
    let _guard = serial();
    set_verbosity(Level::Info);
    capture_begin();

    const WORKERS: usize = 8;
    const RECORDS: usize = 200;
    thread::scope(|scope| {
        for w in 0..WORKERS {
            scope.spawn(move || {
                for i in 0..RECORDS {
                    obs::info!("engine: job_done worker={w} seq={i} status=ok");
                }
            });
        }
    });

    let lines = capture_end();
    set_verbosity(Level::Info);
    assert_eq!(lines.len(), WORKERS * RECORDS);

    // Every captured record is exactly one of the lines some worker
    // emitted — no prefix of one spliced into another, no missing tag,
    // no doubled newline.
    let mut seen = vec![[false; RECORDS]; WORKERS];
    for line in &lines {
        let body = line
            .strip_prefix("[info] engine: job_done ")
            .unwrap_or_else(|| panic!("torn or foreign record: {line:?}"));
        let body = body
            .strip_suffix(" status=ok\n")
            .unwrap_or_else(|| panic!("torn record tail: {line:?}"));
        let (w_part, i_part) = body.split_once(' ').expect("two fields");
        let w: usize = w_part.strip_prefix("worker=").unwrap().parse().unwrap();
        let i: usize = i_part.strip_prefix("seq=").unwrap().parse().unwrap();
        assert!(!seen[w][i], "record worker={w} seq={i} duplicated");
        seen[w][i] = true;
    }
    assert!(
        seen.iter().all(|w| w.iter().all(|&s| s)),
        "every record arrives exactly once"
    );
}

#[test]
fn leveled_filtering_holds_under_concurrency() {
    let _guard = serial();
    set_verbosity(Level::Warn);
    capture_begin();

    thread::scope(|scope| {
        for w in 0..4 {
            scope.spawn(move || {
                for _ in 0..50 {
                    obs::error!("e worker={w}");
                    obs::warn!("w worker={w}");
                    obs::info!("i worker={w}");
                    obs::debug!("d worker={w}");
                }
            });
        }
    });

    let lines = capture_end();
    set_verbosity(Level::Info);
    // Exactly the error + warn records survive; info/debug are dropped
    // before they reach the sink.
    assert_eq!(lines.len(), 4 * 50 * 2);
    assert!(lines
        .iter()
        .all(|l| l.starts_with("[error] ") || l.starts_with("[warn] ")));
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("[error] ")).count(),
        200
    );
}

#[test]
fn quiet_and_verbose_switches_behave_like_the_cli_flags() {
    let _guard = serial();

    // `repro --quiet` → only errors.
    set_verbosity(Level::Error);
    assert_eq!(verbosity(), Level::Error);
    capture_begin();
    obs::error!("kept");
    obs::warn!("dropped");
    obs::info!("dropped");
    obs::debug!("dropped");
    let quiet = capture_end();
    assert_eq!(quiet, vec!["[error] kept\n".to_string()]);

    // `repro -v` → everything, debug included.
    set_verbosity(Level::Debug);
    assert_eq!(verbosity(), Level::Debug);
    assert!(enabled(Level::Debug));
    capture_begin();
    obs::error!("a");
    obs::warn!("b");
    obs::info!("c");
    obs::debug!("d");
    let verbose = capture_end();
    assert_eq!(verbose.len(), 4);
    assert_eq!(verbose[3], "[debug] d\n");

    set_verbosity(Level::Info);
}
