//! Task models of the paper's workloads.
//!
//! §4.2 of the paper drives the Itsy with four applications — MPEG
//! audio/video, the IceWeb browser, a Crafty chess front-end, and a
//! "TalkingEditor" feeding the DECtalk synthesizer — replayed from
//! timestamped input traces so runs are repeatable. The applications
//! run over the Kaffe JVM, whose graphics library polls for input every
//! 30 ms (about 1 ms of work per poll) — a detail the paper calls out
//! as a source of utilization noise that destabilises the schedulers.
//!
//! Each module models one application's *CPU-demand structure* (what the
//! interval schedulers actually see), calibrated to the paper's
//! published observations:
//!
//! - [`mpeg`] — 15 fps, I/P-frame computation variance, the player's
//!   12 ms sleep-or-spin rule, a separate audio process; runs without
//!   dropping frames at 132.7 MHz but not below.
//! - [`web`] — 190 s browse trace: page loads, scrolling bursts, long
//!   idle reading periods.
//! - [`chess`] — 218 s game: idle user thinking vs. 100 %-CPU Crafty
//!   planning for fixed wall-clock budgets.
//! - [`editor`] — 70 s: bursty UI/JIT phase, then long speech-synthesis
//!   bursts feeding an audio driver with underrun deadlines.
//! - [`java`] — the Kaffe 30 ms polling loop, run alongside the
//!   interactive applications.
//! - [`synthetic`] — square waves and constant loads for controlled
//!   experiments (the §5.3 oscillation study).
//! - [`trace`] — timestamped input-event traces: generation, record,
//!   replay.
//! - [`jobs`] — derives deadline-job sets from recorded work traces
//!   for the speed-scaling optimality-gap experiment.

pub mod chess;
pub mod editor;
pub mod java;
pub mod jobs;
pub mod mpeg;
pub mod synthetic;
pub mod trace;
pub mod web;

use itsy_hw::{DeviceSet, Work};
use kernel_sim::{Kernel, TaskBehavior};
use sim_core::SimDuration;

pub use chess::ChessWorkload;
pub use editor::TalkingEditorWorkload;
pub use java::JavaPoller;
pub use jobs::TraceJob;
pub use mpeg::{MpegConfig, MpegWorkload};
pub use synthetic::{ConstantLoad, PeriodicBurst, SquareWave};
pub use trace::{InputEvent, InputTrace};
pub use web::WebWorkload;

/// Builds a [`Work`] quantum sized to take `ms` milliseconds at the top
/// clock step (206.4 MHz), with `line_share` of its cycle demand coming
/// from cache-line fills (which get relatively cheaper at lower clocks).
pub fn work_ms_at_top(ms: f64, line_share: f64) -> Work {
    debug_assert!((0.0..=1.0).contains(&line_share));
    let total_cycles = ms * 206_400.0; // 206.4 cycles per us.
    let line_cycles_at_top = 69.0; // Table 3, step 10.
    Work::new(
        total_cycles * (1.0 - line_share),
        0.0,
        total_cycles * line_share / line_cycles_at_top,
    )
}

/// The paper's four benchmark workloads, as kernel-ready bundles.
///
/// # Examples
///
/// ```
/// use itsy_hw::DeviceSet;
/// use kernel_sim::{Kernel, KernelConfig, Machine};
/// use sim_core::SimDuration;
/// use workloads::Benchmark;
///
/// let mut kernel = Kernel::new(
///     Machine::itsy(10, Benchmark::Mpeg.devices()),
///     KernelConfig {
///         duration: SimDuration::from_secs(2),
///         ..KernelConfig::default()
///     },
/// );
/// Benchmark::Mpeg.spawn_into(&mut kernel, 42);
/// let report = kernel.run();
/// assert!(report.mean_utilization() > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// MPEG-1 video + audio, 15 fps, looped to 60 s.
    Mpeg,
    /// IceWeb browsing session, 190 s.
    Web,
    /// Crafty chess game, 218 s.
    Chess,
    /// Talking editor with speech synthesis, 70 s.
    TalkingEditor,
}

impl Benchmark {
    /// All four benchmarks.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Mpeg,
        Benchmark::Web,
        Benchmark::Chess,
        Benchmark::TalkingEditor,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mpeg => "MPEG",
            Benchmark::Web => "Web",
            Benchmark::Chess => "Chess",
            Benchmark::TalkingEditor => "TalkingEditor",
        }
    }

    /// The trace length the paper reports for this workload.
    pub fn nominal_duration(self) -> SimDuration {
        match self {
            Benchmark::Mpeg => SimDuration::from_secs(60),
            Benchmark::Web => SimDuration::from_secs(190),
            Benchmark::Chess => SimDuration::from_secs(218),
            Benchmark::TalkingEditor => SimDuration::from_secs(70),
        }
    }

    /// The peripherals this workload keeps powered.
    pub fn devices(self) -> DeviceSet {
        match self {
            Benchmark::Mpeg => DeviceSet::AV,
            Benchmark::Web => DeviceSet::LCD,
            Benchmark::Chess => DeviceSet::LCD,
            Benchmark::TalkingEditor => DeviceSet::AV,
        }
    }

    /// The tasks making up this workload (application processes plus the
    /// Kaffe polling loop for the Java-based ones), deterministically
    /// derived from `seed`.
    pub fn tasks(self, seed: u64) -> Vec<Box<dyn TaskBehavior>> {
        match self {
            Benchmark::Mpeg => MpegWorkload::new(MpegConfig::default(), seed).into_tasks(),
            Benchmark::Web => WebWorkload::new(seed).into_tasks(),
            Benchmark::Chess => ChessWorkload::new(seed).into_tasks(),
            Benchmark::TalkingEditor => TalkingEditorWorkload::new(seed).into_tasks(),
        }
    }

    /// Spawns this workload's tasks into a kernel.
    pub fn spawn_into(self, kernel: &mut Kernel, seed: u64) {
        for t in self.tasks(seed) {
            kernel.spawn(t);
        }
    }
}

/// A weighted mix over the four benchmarks, for sampling per-device
/// workloads in a fleet population.
///
/// Weights are integers and selection consumes a single integer draw,
/// so a device's workload is a pure function of its draw — no float
/// thresholds whose rounding could differ between generator versions.
///
/// # Examples
///
/// ```
/// use workloads::{Benchmark, WorkloadMix};
///
/// let mix = WorkloadMix::default_fleet();
/// // Deterministic: equal draws give equal picks.
/// assert_eq!(mix.pick(12345), mix.pick(12345));
/// // A zero-weight entry is never picked.
/// let only_web = WorkloadMix::new([0, 1, 0, 0]);
/// assert_eq!(only_web.pick(7), Benchmark::Web);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Weight per benchmark, indexed like [`Benchmark::ALL`]
    /// (MPEG, Web, Chess, TalkingEditor).
    weights: [u32; 4],
}

impl WorkloadMix {
    /// A mix with the given per-benchmark weights (at least one must be
    /// non-zero).
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn new(weights: [u32; 4]) -> Self {
        assert!(
            weights.iter().any(|&w| w > 0),
            "workload mix needs a non-zero weight"
        );
        WorkloadMix { weights }
    }

    /// Every benchmark equally likely.
    pub fn uniform() -> Self {
        WorkloadMix::new([1, 1, 1, 1])
    }

    /// The fleet default: handheld usage skews interactive — browsing
    /// and media dominate, chess and the talking editor trail.
    pub fn default_fleet() -> Self {
        WorkloadMix::new([3, 4, 2, 1])
    }

    /// Picks a benchmark from an integer draw (e.g. one `Rng` output).
    /// Equal draws always give equal picks.
    pub fn pick(&self, draw: u64) -> Benchmark {
        let total: u64 = self.weights.iter().map(|&w| w as u64).sum();
        let mut point = draw % total;
        for (i, &w) in self.weights.iter().enumerate() {
            if point < w as u64 {
                return Benchmark::ALL[i];
            }
            point -= w as u64;
        }
        unreachable!("point < sum of weights by construction");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_ms_at_top_takes_the_requested_time_at_the_top() {
        use itsy_hw::{ClockTable, MemoryTiming};
        let t = ClockTable::sa1100();
        let m = MemoryTiming::sa1100_edo();
        for share in [0.0, 0.3, 0.9] {
            let w = work_ms_at_top(10.0, share);
            let d = w.time_at(10, t.freq(10), &m);
            assert_eq!(d.as_micros(), 10_000, "share {share}");
        }
    }

    #[test]
    fn memory_heavy_work_shrinks_less_at_low_clock() {
        use itsy_hw::{ClockTable, MemoryTiming};
        let t = ClockTable::sa1100();
        let m = MemoryTiming::sa1100_edo();
        let lean = work_ms_at_top(10.0, 0.0).time_at(0, t.freq(0), &m);
        let heavy = work_ms_at_top(10.0, 0.9).time_at(0, t.freq(0), &m);
        // At 59 MHz the pure-CPU work takes 3.5x as long; the line-heavy
        // work takes less extra time because lines cost 39 cycles
        // instead of 69 there.
        assert!(heavy < lean);
    }

    #[test]
    fn benchmark_metadata() {
        assert_eq!(Benchmark::Mpeg.name(), "MPEG");
        assert_eq!(
            Benchmark::Chess.nominal_duration(),
            SimDuration::from_secs(218)
        );
        assert!(Benchmark::Mpeg.devices().audio);
        assert!(!Benchmark::Web.devices().audio);
        assert_eq!(Benchmark::ALL.len(), 4);
    }

    #[test]
    fn all_benchmarks_produce_tasks() {
        for b in Benchmark::ALL {
            let tasks = b.tasks(42);
            assert!(!tasks.is_empty(), "{} has no tasks", b.name());
        }
    }

    #[test]
    fn workload_mix_respects_weights() {
        let mix = WorkloadMix::default_fleet();
        let mut counts = [0u32; 4];
        for draw in 0..10_000u64 {
            let b = mix.pick(draw);
            counts[Benchmark::ALL.iter().position(|&x| x == b).unwrap()] += 1;
        }
        // Sequential draws cycle the weights exactly: 3:4:2:1 over 10.
        assert_eq!(counts, [3_000, 4_000, 2_000, 1_000]);
        // Zero-weight entries never appear.
        let no_chess = WorkloadMix::new([1, 1, 0, 1]);
        for draw in 0..100 {
            assert_ne!(no_chess.pick(draw), Benchmark::Chess);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero weight")]
    fn all_zero_mix_panics() {
        let _ = WorkloadMix::new([0, 0, 0, 0]);
    }
}
