//! Append-only checkpoint journal for `--resume`.
//!
//! The cache already deduplicates work *across* invocations, but it can
//! be disabled (`--no-cache`) and it says nothing about which batch a
//! result belonged to. The journal is the per-batch record: one file
//! per named batch, one line per completed job —
//!
//! ```text
//! <key-hex> <JobResult::encode() output>
//! ```
//!
//! Lines are appended as jobs finish (single writer: the collector
//! thread), so a killed run leaves a valid prefix. On `--resume` the
//! journal is replayed and any job whose key appears is served from it
//! without re-simulation — independently of the cache. A batch that
//! runs to completion deletes its journal; a leftover journal therefore
//! always means "interrupted run".

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::job::JobResult;
use crate::key::ContentKey;

/// Journal of completed jobs for one named batch.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
}

impl Journal {
    /// Journal file path for a batch name under a state directory.
    pub fn path_for(state_dir: &Path, batch: &str) -> PathBuf {
        // Batch names are short identifiers ("sweep", "govil"), but
        // sanitize anyway so a weird name can't escape the directory.
        let safe: String = batch
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        state_dir.join(format!("{safe}.journal"))
    }

    /// Opens the journal for appending, creating parent dirs as needed.
    pub fn open(state_dir: &Path, batch: &str) -> io::Result<Self> {
        fs::create_dir_all(state_dir)?;
        let path = Self::path_for(state_dir, batch);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            path,
            writer: Some(BufWriter::new(file)),
        })
    }

    /// Replays an existing journal into a key → result map. Malformed
    /// lines (e.g. a torn final line from a killed run) are skipped.
    pub fn replay(state_dir: &Path, batch: &str) -> HashMap<ContentKey, JobResult> {
        let path = Self::path_for(state_dir, batch);
        let Ok(text) = fs::read_to_string(&path) else {
            return HashMap::new();
        };
        text.lines()
            .filter_map(|line| {
                let (key, rest) = line.split_once(' ')?;
                Some((ContentKey::parse(key)?, JobResult::decode(rest)?))
            })
            .collect()
    }

    /// Appends one completed job and flushes, so the line survives a
    /// kill immediately after.
    pub fn record(&mut self, key: ContentKey, result: &JobResult) -> io::Result<()> {
        let w = self.writer.as_mut().expect("journal open");
        writeln!(w, "{key} {}", result.encode())?;
        w.flush()
    }

    /// Marks the batch complete: closes and deletes the journal.
    pub fn finish(mut self) -> io::Result<()> {
        drop(self.writer.take());
        match fs::remove_file(&self.path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_state(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("engine-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn result(x: f64) -> JobResult {
        JobResult {
            energy_j: x,
            core_energy_j: 0.0,
            mean_freq_mhz: 0.0,
            mean_utilization: 0.0,
            misses: 0,
            max_lateness_us: 0,
            clock_switches: 0,
            voltage_switches: 0,
            final_step: 0,
            frames_shown: 0,
            frames_dropped: 0,
        }
    }

    #[test]
    fn record_replay_finish() {
        let dir = temp_state("basic");
        let mut j = Journal::open(&dir, "sweep").expect("open");
        j.record(ContentKey(1), &result(1.0)).expect("record");
        j.record(ContentKey(2), &result(2.0)).expect("record");
        drop(j); // simulate a killed run: journal left behind

        let replayed = Journal::replay(&dir, "sweep");
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[&ContentKey(1)], result(1.0));
        assert_eq!(replayed[&ContentKey(2)], result(2.0));
        assert!(Journal::replay(&dir, "other").is_empty());

        // Reopen (a resumed run appends), then finish: journal gone.
        let j = Journal::open(&dir, "sweep").expect("reopen");
        j.finish().expect("finish");
        assert!(Journal::replay(&dir, "sweep").is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let dir = temp_state("torn");
        let mut j = Journal::open(&dir, "sweep").expect("open");
        j.record(ContentKey(7), &result(7.0)).expect("record");
        drop(j);
        // Append garbage half-line as if the process died mid-write.
        let path = Journal::path_for(&dir, "sweep");
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "deadbeef").expect("tear");
        let replayed = Journal::replay(&dir, "sweep");
        assert_eq!(replayed.len(), 1);
        assert!(replayed.contains_key(&ContentKey(7)));
        let _ = fs::remove_dir_all(&dir);
    }
}
