//! The wider predictor family of Govil, Chan & Wasserman (MobiCom '95),
//! which the paper's §3 builds on: "Govil et al. considered a large
//! number of algorithms". All are [`Predictor`]s, so each slots into
//! [`crate::IntervalScheduler`] unchanged.
//!
//! The implementations follow the published descriptions; where the
//! original leaves a constant unspecified we document the choice:
//!
//! - [`Flat`] — predict a constant utilization ("try to smooth speed to
//!   a global average").
//! - [`LongShort`] — mix a short-term (3-interval) and a long-term
//!   (12-interval) average, short-term weighted 3:1.
//! - [`AgedAverage`] — geometric aging with an arbitrary ratio `k`:
//!   `W_t ∝ Σ k^j U_{t−j}` (AVG_N is the special case
//!   `k = N/(N+1)`).
//! - [`Cycle`] — test the recent history for a periodic pattern; if one
//!   period fits well, predict the value one period back.
//! - [`Pattern`] — find the most recent earlier occurrence of the
//!   current quantized utilization suffix and predict what followed it.
//! - [`Peak`] — narrow-spike heuristic: rising utilization is expected
//!   to fall back, falling utilization to keep falling.

use std::collections::VecDeque;

use crate::predictor::Predictor;

/// Predicts a fixed utilization regardless of history.
#[derive(Debug, Clone)]
pub struct Flat {
    level: f64,
}

impl Flat {
    /// Creates a flat predictor.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, 1]`.
    pub fn new(level: f64) -> Self {
        assert!((0.0..=1.0).contains(&level), "level must be a utilization");
        Flat { level }
    }
}

impl Predictor for Flat {
    fn observe(&mut self, _utilization: f64) -> f64 {
        self.level
    }

    fn current(&self) -> f64 {
        self.level
    }

    fn reset(&mut self) {}

    fn is_memoryless(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        format!("FLAT_{:.0}", self.level * 100.0)
    }
}

/// Short-term/long-term average mix.
#[derive(Debug, Clone)]
pub struct LongShort {
    history: VecDeque<f64>,
    short_n: usize,
    long_n: usize,
    short_weight: f64,
}

impl LongShort {
    /// Govil's configuration: 3-interval short, 12-interval long,
    /// short-term weighted 3×.
    pub fn new() -> Self {
        LongShort::with_windows(3, 12, 3.0)
    }

    /// Custom windows.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < short_n <= long_n` and `short_weight > 0`.
    pub fn with_windows(short_n: usize, long_n: usize, short_weight: f64) -> Self {
        assert!(short_n > 0 && short_n <= long_n, "window sizes inverted");
        assert!(short_weight > 0.0, "weight must be positive");
        LongShort {
            history: VecDeque::with_capacity(long_n),
            short_n,
            long_n,
            short_weight,
        }
    }

    fn tail_mean(&self, n: usize) -> f64 {
        let take = n.min(self.history.len());
        if take == 0 {
            return 0.0;
        }
        self.history.iter().rev().take(take).sum::<f64>() / take as f64
    }
}

impl Default for LongShort {
    fn default() -> Self {
        LongShort::new()
    }
}

impl Predictor for LongShort {
    fn observe(&mut self, utilization: f64) -> f64 {
        if self.history.len() == self.long_n {
            self.history.pop_front();
        }
        self.history.push_back(utilization.clamp(0.0, 1.0));
        self.current()
    }

    fn current(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let short = self.tail_mean(self.short_n);
        let long = self.tail_mean(self.long_n);
        (self.short_weight * short + long) / (self.short_weight + 1.0)
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn name(&self) -> String {
        format!("LONG_SHORT_{}_{}", self.short_n, self.long_n)
    }
}

/// Geometrically-aged average with arbitrary ratio.
#[derive(Debug, Clone)]
pub struct AgedAverage {
    ratio: f64,
    weighted: f64,
    norm: f64,
}

impl AgedAverage {
    /// Creates an aged average with aging ratio `k ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly inside `(0, 1)`.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0 && k < 1.0, "aging ratio must be in (0,1)");
        AgedAverage {
            ratio: k,
            weighted: 0.0,
            norm: 0.0,
        }
    }

    /// The AVG_N-equivalent decay for this ratio (`N = k/(1−k)`),
    /// for cross-checking against [`crate::AvgN`].
    pub fn equivalent_n(&self) -> f64 {
        self.ratio / (1.0 - self.ratio)
    }
}

impl Predictor for AgedAverage {
    fn observe(&mut self, utilization: f64) -> f64 {
        // Normalised so the prediction is a true weighted mean even
        // during warm-up (AVG_N instead assumes an idle-forever prefix).
        self.weighted = self.ratio * self.weighted + utilization.clamp(0.0, 1.0);
        self.norm = self.ratio * self.norm + 1.0;
        self.current()
    }

    fn current(&self) -> f64 {
        if self.norm == 0.0 {
            0.0
        } else {
            self.weighted / self.norm
        }
    }

    fn reset(&mut self) {
        self.weighted = 0.0;
        self.norm = 0.0;
    }

    fn name(&self) -> String {
        format!("AGED_{:.2}", self.ratio)
    }
}

/// Periodicity detector: if the recent history repeats with some period
/// `p`, predict the sample one period back.
#[derive(Debug, Clone)]
pub struct Cycle {
    history: VecDeque<f64>,
    capacity: usize,
    max_period: usize,
    /// Mean-square tolerance for accepting a period.
    tolerance: f64,
}

impl Cycle {
    /// Govil-style configuration: 32 intervals of history, periods up
    /// to 16.
    pub fn new() -> Self {
        Cycle {
            history: VecDeque::with_capacity(32),
            capacity: 32,
            max_period: 16,
            tolerance: 1e-3,
        }
    }

    /// The detected period, if the history currently supports one.
    ///
    /// A candidate period `p` must hold across up to three full periods
    /// of history (not just the last `p` samples) so that, e.g., a run
    /// of busy quanta inside a longer wave does not read as period 2.
    pub fn detected_period(&self) -> Option<usize> {
        let h: Vec<f64> = self.history.iter().copied().collect();
        let n = h.len();
        for p in 2..=self.max_period.min(n / 2) {
            // Validate over at least a dozen samples so short runs of
            // equal values inside a longer wave don't read as a tiny
            // period.
            let span = (n - p).min((3 * p).max(12));
            let mse: f64 = (0..span)
                .map(|i| {
                    let a = h[n - 1 - i];
                    let b = h[n - 1 - i - p];
                    (a - b) * (a - b)
                })
                .sum::<f64>()
                / span as f64;
            if mse <= self.tolerance {
                return Some(p);
            }
        }
        None
    }

    fn fallback(&self) -> f64 {
        let take = 4.min(self.history.len());
        if take == 0 {
            return 0.0;
        }
        self.history.iter().rev().take(take).sum::<f64>() / take as f64
    }
}

impl Default for Cycle {
    fn default() -> Self {
        Cycle::new()
    }
}

impl Predictor for Cycle {
    fn observe(&mut self, utilization: f64) -> f64 {
        if self.history.len() == self.capacity {
            self.history.pop_front();
        }
        self.history.push_back(utilization.clamp(0.0, 1.0));
        self.current()
    }

    fn current(&self) -> f64 {
        match self.detected_period() {
            // Predict the sample one period back from the *next* slot:
            // that is history[len - p].
            Some(p) => self.history[self.history.len() - p],
            None => self.fallback(),
        }
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn name(&self) -> String {
        "CYCLE".to_string()
    }
}

/// Pattern matcher: quantize history to deciles, find the most recent
/// earlier occurrence of the current suffix, predict what followed it.
#[derive(Debug, Clone)]
pub struct Pattern {
    history: VecDeque<f64>,
    capacity: usize,
    window: usize,
}

impl Pattern {
    /// Govil-style configuration: match the last 4 intervals against
    /// 64 intervals of history.
    pub fn new() -> Self {
        Pattern {
            history: VecDeque::with_capacity(64),
            capacity: 64,
            window: 4,
        }
    }

    fn bucket(u: f64) -> u8 {
        (u.clamp(0.0, 1.0) * 10.0).min(9.0) as u8
    }

    fn fallback(&self) -> f64 {
        let take = self.window.min(self.history.len());
        if take == 0 {
            return 0.0;
        }
        self.history.iter().rev().take(take).sum::<f64>() / take as f64
    }
}

impl Default for Pattern {
    fn default() -> Self {
        Pattern::new()
    }
}

impl Predictor for Pattern {
    fn observe(&mut self, utilization: f64) -> f64 {
        if self.history.len() == self.capacity {
            self.history.pop_front();
        }
        self.history.push_back(utilization.clamp(0.0, 1.0));
        self.current()
    }

    fn current(&self) -> f64 {
        let h: Vec<u8> = self.history.iter().map(|&u| Self::bucket(u)).collect();
        let n = h.len();
        if n < self.window + 1 {
            return self.fallback();
        }
        let suffix = &h[n - self.window..];
        // Scan backwards for the most recent earlier match; the value
        // following it is the prediction.
        for start in (0..n - self.window).rev() {
            if &h[start..start + self.window] == suffix {
                return self.history[start + self.window];
            }
        }
        self.fallback()
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn name(&self) -> String {
        "PATTERN".to_string()
    }
}

/// Narrow-spike heuristic.
#[derive(Debug, Clone, Default)]
pub struct Peak {
    prev: f64,
    last: f64,
    seen: u8,
}

impl Peak {
    /// Creates the predictor.
    pub fn new() -> Self {
        Peak::default()
    }
}

impl Predictor for Peak {
    fn observe(&mut self, utilization: f64) -> f64 {
        self.prev = self.last;
        self.last = utilization.clamp(0.0, 1.0);
        self.seen = self.seen.saturating_add(1);
        self.current()
    }

    fn current(&self) -> f64 {
        if self.seen < 2 {
            return self.last;
        }
        if self.last > self.prev {
            // Rising: expect the spike to be narrow and fall back.
            self.prev
        } else {
            // Falling or flat: follow it down.
            self.last
        }
    }

    fn reset(&mut self) {
        self.prev = 0.0;
        self.last = 0.0;
        self.seen = 0;
    }

    fn name(&self) -> String {
        "PEAK".to_string()
    }
}

/// Every predictor in this module plus PAST/AVG_N, boxed, for sweep
/// harnesses.
pub fn all_predictors() -> Vec<Box<dyn Predictor + Send>> {
    vec![
        Box::new(crate::Past::new()),
        Box::new(crate::AvgN::new(3)),
        Box::new(crate::AvgN::new(9)),
        Box::new(Flat::new(0.7)),
        Box::new(LongShort::new()),
        Box::new(AgedAverage::new(0.9)),
        Box::new(Cycle::new()),
        Box::new(Pattern::new()),
        Box::new(Peak::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(busy: usize, idle: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| ((i % (busy + idle)) < busy) as u8 as f64)
            .collect()
    }

    #[test]
    fn flat_ignores_input() {
        let mut p = Flat::new(0.7);
        assert_eq!(p.observe(0.0), 0.7);
        assert_eq!(p.observe(1.0), 0.7);
        assert_eq!(p.name(), "FLAT_70");
    }

    #[test]
    fn long_short_tracks_bursts_faster_than_long_mean() {
        let mut p = LongShort::new();
        for _ in 0..12 {
            p.observe(0.0);
        }
        // Three busy intervals: short mean is 1.0, long mean is 3/12.
        for _ in 0..3 {
            p.observe(1.0);
        }
        let expect = (3.0 * 1.0 + 0.25) / 4.0;
        assert!((p.current() - expect).abs() < 1e-9, "{}", p.current());
        // A plain 12-interval mean would sit at 0.25 — LONG_SHORT reacts
        // much faster.
        assert!(p.current() > 0.7);
    }

    #[test]
    fn aged_average_matches_avg_n_at_equivalent_ratio() {
        // k = 0.9 corresponds to AVG_9; after warm-up the two agree.
        use crate::predictor::AvgN;
        let mut aged = AgedAverage::new(0.9);
        let mut avg = AvgN::new(9);
        assert!((aged.equivalent_n() - 9.0).abs() < 1e-9);
        let inputs = square(9, 1, 400);
        let mut last = (0.0, 0.0);
        for &u in &inputs {
            last = (aged.observe(u), avg.observe(u));
        }
        assert!((last.0 - last.1).abs() < 1e-6, "{last:?}");
    }

    #[test]
    fn aged_average_has_no_idle_prefix_bias() {
        // Unlike AVG_N (which starts from an assumed-idle state), the
        // normalised aged average equals the input immediately.
        let mut p = AgedAverage::new(0.9);
        assert!((p.observe(0.8) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cycle_locks_onto_a_square_wave() {
        let mut p = Cycle::new();
        let wave = square(9, 1, 60);
        let mut predictions = Vec::new();
        for &u in &wave {
            predictions.push(p.observe(u));
        }
        assert_eq!(p.detected_period(), Some(10));
        // Once locked, the prediction equals the true next value.
        let mut hits = 0;
        let mut total = 0;
        for (i, &pred) in predictions.iter().enumerate().skip(30) {
            if i + 1 < wave.len() {
                total += 1;
                if (pred - wave[i + 1]).abs() < 1e-9 {
                    hits += 1;
                }
            }
        }
        assert!(
            hits as f64 / total as f64 > 0.95,
            "cycle hit rate {hits}/{total}"
        );
    }

    #[test]
    fn cycle_falls_back_without_periodicity() {
        let mut p = Cycle::new();
        // Aperiodic ramp.
        for i in 0..20 {
            p.observe((i as f64 / 40.0).min(1.0));
        }
        assert_eq!(p.detected_period(), None);
        // Fallback is the 4-interval mean — bounded and sane.
        assert!((0.0..=1.0).contains(&p.current()));
    }

    #[test]
    fn pattern_predicts_a_repeating_sequence() {
        let mut p = Pattern::new();
        let seq = [0.1, 0.9, 0.5, 0.2];
        let mut correct = 0;
        let mut total = 0;
        for rep in 0..12 {
            for (j, &u) in seq.iter().enumerate() {
                let pred = p.observe(u);
                if rep >= 3 {
                    let next = seq[(j + 1) % seq.len()];
                    total += 1;
                    if (pred - next).abs() < 0.1001 {
                        correct += 1;
                    }
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "pattern hit rate {correct}/{total}"
        );
    }

    #[test]
    fn peak_expects_spikes_to_fall() {
        let mut p = Peak::new();
        p.observe(0.2);
        let pred = p.observe(0.9); // rising
        assert!((pred - 0.2).abs() < 1e-12, "rising should predict a fall");
        let pred = p.observe(0.4); // falling
        assert!((pred - 0.4).abs() < 1e-12, "falling should follow down");
    }

    #[test]
    fn all_predictors_are_bounded_on_noisy_input() {
        let noisy: Vec<f64> = (0..500)
            .map(|i| (((i * 2654435761u64) % 1000) as f64) / 999.0)
            .collect();
        for mut p in all_predictors() {
            for &u in &noisy {
                let w = p.observe(u);
                assert!((0.0..=1.0).contains(&w), "{} produced {w}", p.name());
            }
            p.reset();
            assert!((0.0..=1.0).contains(&p.current()));
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = all_predictors().iter().map(|p| p.name()).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "{names:?}");
    }

    #[test]
    #[should_panic(expected = "aging ratio")]
    fn aged_rejects_ratio_one() {
        let _ = AgedAverage::new(1.0);
    }

    #[test]
    #[should_panic(expected = "window sizes inverted")]
    fn long_short_rejects_inverted_windows() {
        let _ = LongShort::with_windows(12, 3, 1.0);
    }
}
