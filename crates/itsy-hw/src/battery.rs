//! Battery model with rate-dependent capacity and recovery.
//!
//! Section 2.1 of the paper: "the amount of energy a battery can deliver
//! (i.e., its capacity) is reduced with increased power consumption",
//! illustrated by the Itsy on a pair of AAA alkalines lasting ~2 hours
//! idle at 206 MHz but ~18 hours at 59 MHz — a 9× lifetime improvement
//! for only a 3.5× clock reduction. The paper also cites the "pulsed
//! power" effect: interspersing bursts with long rests lets the battery
//! recover some capacity.
//!
//! We model both effects:
//!
//! - **rate-capacity**: a Peukert-style derating applied to an
//!   exponentially-smoothed draw — charge consumed per second is
//!   `P · max(1, (P̄/P_ref)^(k−1))`, where `P̄` is the smoothed recent
//!   draw;
//! - **recovery**: a fraction of the derating *loss* (the charge consumed
//!   beyond the ideal `P·dt`) is parked in a recoverable pool that flows
//!   back into the battery while the draw is light, so pulsed loads
//!   deliver more total energy than a constant load of the same average
//!   power.

use serde::{Deserialize, Serialize};
use sim_core::{Power, SimDuration};

/// Battery model constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryParams {
    /// Nominal deliverable energy at the reference draw, in watt-hours.
    /// Two AAA alkalines ≈ 3.46 Wh.
    pub nominal_wh: f64,
    /// Draw (watts) at which the nominal capacity is fully delivered.
    pub ref_power_w: f64,
    /// Peukert exponent; 1.0 disables rate effects. Alkalines are
    /// strongly rate-sensitive (k ≈ 1.3–1.4).
    pub peukert_k: f64,
    /// Time constant of the draw smoothing (seconds); controls how fast
    /// the battery "recovers" after a burst.
    pub smoothing_tau_s: f64,
    /// Fraction of the derating loss that is recoverable during rest.
    pub recovery_fraction: f64,
    /// Time constant (seconds) of charge recovery while the draw is at
    /// or below the reference power.
    pub recovery_tau_s: f64,
}

impl Default for BatteryParams {
    fn default() -> Self {
        // Calibrated to the paper's anchors: idle draw at 59 MHz
        // (~0.19 W) delivers ~18 h; idle draw at 206.4 MHz (~0.95 W)
        // delivers ~2 h.
        BatteryParams {
            nominal_wh: 3.46,
            ref_power_w: 0.19,
            peukert_k: 1.373,
            smoothing_tau_s: 60.0,
            recovery_fraction: 0.6,
            recovery_tau_s: 100.0,
        }
    }
}

/// A discharging battery.
///
/// # Examples
///
/// ```
/// use itsy_hw::battery::{Battery, BatteryParams};
/// use sim_core::{Power, SimDuration};
///
/// let mut battery = Battery::new(BatteryParams::default());
/// battery.drain(Power::from_watts(0.95), SimDuration::from_secs(3600));
/// assert!(battery.remaining_fraction() < 0.7);
/// // Closed form: ~2 hours at the 206.4 MHz idle draw.
/// let hours = battery.lifetime_hours_at_constant(Power::from_watts(0.95));
/// assert!((1.8..2.2).contains(&hours));
/// ```
#[derive(Debug, Clone)]
pub struct Battery {
    params: BatteryParams,
    charge_j: f64,
    avg_power_w: f64,
    recoverable_j: f64,
}

impl Battery {
    /// Creates a fully-charged battery.
    pub fn new(params: BatteryParams) -> Self {
        Battery::with_charge_fraction(params, 1.0)
    }

    /// Creates a battery holding `fraction` of its nominal charge
    /// (clamped to `[0, 1]`). Fleet populations start devices at
    /// varied charge states; a device mid-discharge behaves differently
    /// under rate-derating than a fresh one.
    pub fn with_charge_fraction(params: BatteryParams, fraction: f64) -> Self {
        let charge_j = params.nominal_wh * 3_600.0 * fraction.clamp(0.0, 1.0);
        Battery {
            params,
            charge_j,
            avg_power_w: 0.0,
            recoverable_j: 0.0,
        }
    }

    /// The model constants.
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }

    /// Remaining deliverable charge in joules (at the reference rate).
    pub fn remaining_joules(&self) -> f64 {
        self.charge_j.max(0.0)
    }

    /// Remaining charge as a fraction of nominal.
    pub fn remaining_fraction(&self) -> f64 {
        (self.charge_j / (self.params.nominal_wh * 3_600.0)).clamp(0.0, 1.0)
    }

    /// True once the battery can no longer supply the load.
    pub fn is_empty(&self) -> bool {
        self.charge_j <= 0.0
    }

    /// The current smoothed draw used for derating (reporting).
    pub fn smoothed_draw(&self) -> Power {
        Power::from_watts(self.avg_power_w.max(0.0))
    }

    /// Derating factor at smoothed draw `p_avg`: 1 at or below the
    /// reference draw, growing as `(p/p_ref)^(k-1)` above it.
    pub fn derating(&self, p_avg: f64) -> f64 {
        if p_avg <= self.params.ref_power_w || self.params.peukert_k <= 1.0 {
            1.0
        } else {
            (p_avg / self.params.ref_power_w).powf(self.params.peukert_k - 1.0)
        }
    }

    /// Draws power `p` for duration `d`, updating the smoothed draw and
    /// consuming derated charge.
    pub fn drain(&mut self, p: Power, d: SimDuration) {
        let dt = d.as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        // Exponential smoothing toward the instantaneous draw.
        let alpha = 1.0 - (-dt / self.params.smoothing_tau_s).exp();
        self.avg_power_w += alpha * (p.as_watts() - self.avg_power_w);
        let derate = self.derating(self.avg_power_w);
        let ideal = p.as_watts() * dt;
        let loss = ideal * (derate - 1.0);
        self.charge_j -= ideal + loss;
        self.recoverable_j += loss * self.params.recovery_fraction;
        // Charge recovery while the load is light.
        if p.as_watts() <= self.params.ref_power_w && self.recoverable_j > 0.0 {
            let beta = 1.0 - (-dt / self.params.recovery_tau_s).exp();
            let back = self.recoverable_j * beta;
            self.recoverable_j -= back;
            self.charge_j += back;
        }
    }

    /// Closed-form lifetime in hours under a constant draw (steady-state
    /// smoothed draw equals the instantaneous draw).
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn lifetime_hours_at_constant(&self, p: Power) -> f64 {
        let w = p.as_watts();
        assert!(w > 0.0, "lifetime under zero draw is unbounded");
        let derate = self.derating(w);
        self.params.nominal_wh / (w * derate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_at_birth() {
        let b = Battery::new(BatteryParams::default());
        assert!(!b.is_empty());
        assert!((b.remaining_fraction() - 1.0).abs() < 1e-12);
        assert!((b.remaining_joules() - 3.46 * 3600.0).abs() < 1e-6);
    }

    #[test]
    fn partial_charge_starts_proportionally_full() {
        let b = Battery::with_charge_fraction(BatteryParams::default(), 0.25);
        assert!((b.remaining_fraction() - 0.25).abs() < 1e-12);
        // Clamped at both ends.
        let over = Battery::with_charge_fraction(BatteryParams::default(), 1.7);
        assert!((over.remaining_fraction() - 1.0).abs() < 1e-12);
        let under = Battery::with_charge_fraction(BatteryParams::default(), -0.5);
        assert!(under.is_empty());
    }

    #[test]
    fn paper_anchor_lifetimes() {
        // ~18 h at the 59 MHz idle draw, ~2 h at the 206.4 MHz idle draw.
        let b = Battery::new(BatteryParams::default());
        let slow = b.lifetime_hours_at_constant(Power::from_watts(0.19));
        let fast = b.lifetime_hours_at_constant(Power::from_watts(0.95));
        assert!((17.0..19.5).contains(&slow), "slow lifetime = {slow}h");
        assert!((1.8..2.2).contains(&fast), "fast lifetime = {fast}h");
        // The headline asymmetry: ~9x life for ~3.5x clock.
        let ratio = slow / fast;
        assert!((8.0..10.5).contains(&ratio), "lifetime ratio = {ratio}");
    }

    #[test]
    fn derating_is_monotone_and_one_at_reference() {
        let b = Battery::new(BatteryParams::default());
        assert_eq!(b.derating(0.19), 1.0);
        assert_eq!(b.derating(0.01), 1.0);
        let d1 = b.derating(0.5);
        let d2 = b.derating(1.0);
        assert!(1.0 < d1 && d1 < d2);
    }

    #[test]
    fn draining_matches_closed_form_for_constant_load() {
        let mut b = Battery::new(BatteryParams::default());
        let p = Power::from_watts(0.95);
        let step = SimDuration::from_secs(10);
        let mut hours = 0.0;
        // Warm up the smoothing first (battery starts with avg 0).
        while !b.is_empty() {
            b.drain(p, step);
            hours += 10.0 / 3600.0;
            assert!(hours < 30.0, "battery never drained");
        }
        let expect = b.lifetime_hours_at_constant(p);
        // The smoothing warm-up gives a small bonus at the start.
        assert!(
            (hours - expect).abs() / expect < 0.05,
            "simulated {hours}h vs closed-form {expect}h"
        );
    }

    #[test]
    fn pulsed_discharge_beats_constant_at_same_average_power() {
        // The Chiasserini/Rao effect the paper cites: alternating bursts
        // with long rests delivers more total energy than the same
        // average power drawn continuously.
        let params = BatteryParams::default();
        let mut constant = Battery::new(params.clone());
        let mut pulsed = Battery::new(params);
        let step = SimDuration::from_secs(1);
        let mut constant_j = 0.0;
        let mut pulsed_j = 0.0;
        let mut t = 0u64;
        while !constant.is_empty() || !pulsed.is_empty() {
            if !constant.is_empty() {
                constant.drain(Power::from_watts(0.6), step);
                constant_j += 0.6;
            }
            if !pulsed.is_empty() {
                // 1.2 W for 100 s, then 0 W for 100 s: same 0.6 W average.
                let burst = (t / 100).is_multiple_of(2);
                let p = if burst { 1.2 } else { 0.0 };
                pulsed.drain(Power::from_watts(p), step);
                pulsed_j += p;
            }
            t += 1;
            assert!(t < 200_000, "drain loop ran away");
        }
        assert!(
            pulsed_j > constant_j,
            "pulsed delivered {pulsed_j}J <= constant {constant_j}J"
        );
    }

    #[test]
    fn peukert_disabled_gives_ideal_battery() {
        let b = Battery::new(BatteryParams {
            peukert_k: 1.0,
            ..BatteryParams::default()
        });
        let l1 = b.lifetime_hours_at_constant(Power::from_watts(0.5));
        let l2 = b.lifetime_hours_at_constant(Power::from_watts(1.0));
        assert!((l1 / l2 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn zero_draw_lifetime_panics() {
        let b = Battery::new(BatteryParams::default());
        let _ = b.lifetime_hours_at_constant(Power::ZERO);
    }
}
