//! The paper's proposed future work (§6): kernel deadline support.
//!
//! "Our immediate future work is to provide 'deadline' mechanisms in
//! Linux. These deadlines are not precisely the same mechanism needed in
//! a true real-time O/S — in a RTOS, the application does not care if
//! the deadline is reached early, while energy scheduling would prefer
//! for the deadline to be met as late as possible."
//!
//! Applications [`announce`](DeadlineRegistry::announce) upcoming work
//! (cycles and a due time) and withdraw it on completion; the
//! [`DeadlineGovernor`] — installed as a normal clock policy — sums a
//! constant-rate *reservation* for each live announcement
//! (`cycles / (due − announce time)`) and picks the slowest clock step
//! covering the total. Running each piece of work at its reservation
//! rate finishes it exactly at its deadline — "as late as possible",
//! the paper's stated goal — and the step stays stable for the life of
//! the announcement instead of ramping as the deadline approaches.
//! This is the policy the heuristics of §5 were trying to approximate
//! without application help.

use std::sync::{Arc, Mutex};

use sim_core::SimTime;

use itsy_hw::{ClockTable, StepIndex};

use policies::{ClockPolicy, PolicyRequest};

/// One announced piece of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Announcement {
    /// Registry-unique handle.
    pub id: AnnouncementId,
    /// Remaining demand in core cycles (announcer's estimate).
    pub cycles: f64,
    /// When the work was announced (start of its reservation window).
    pub announced_at: SimTime,
    /// When it must be complete.
    pub due: SimTime,
}

/// Handle to a live announcement, used to withdraw it on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnnouncementId(u64);

/// Shared announcement board between applications and the governor.
#[derive(Debug, Default)]
pub struct DeadlineRegistry {
    announcements: Vec<Announcement>,
    next_id: u64,
}

/// Handle applications keep to announce work.
pub type SharedRegistry = Arc<Mutex<DeadlineRegistry>>;

impl DeadlineRegistry {
    /// Creates an empty shared registry.
    pub fn shared() -> SharedRegistry {
        Arc::new(Mutex::new(DeadlineRegistry::default()))
    }

    /// Announces `cycles` of work due at `due`; the returned handle
    /// must be passed to [`DeadlineRegistry::complete`] once the work
    /// finishes, or the governor will keep provisioning for it.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative or not finite.
    pub fn announce(&mut self, cycles: f64, now: SimTime, due: SimTime) -> AnnouncementId {
        assert!(cycles.is_finite() && cycles >= 0.0, "bad announcement");
        assert!(due > now, "deadline not in the future");
        let id = AnnouncementId(self.next_id);
        self.next_id += 1;
        if cycles > 0.0 {
            self.announcements.push(Announcement {
                id,
                cycles,
                announced_at: now,
                due,
            });
        }
        id
    }

    /// Withdraws an announcement whose work has completed. Unknown ids
    /// (already expired or zero-cycle) are ignored.
    pub fn complete(&mut self, id: AnnouncementId) {
        self.announcements.retain(|a| a.id != id);
    }

    /// Drops announcements whose deadline has passed.
    pub fn expire(&mut self, now: SimTime) {
        self.announcements.retain(|a| a.due > now);
    }

    /// Number of live announcements.
    pub fn len(&self) -> usize {
        self.announcements.len()
    }

    /// True if nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.announcements.is_empty()
    }

    /// The clock rate (kHz) needed to honour every live reservation:
    /// `Σ cycles / (due − announce time)` over announcements not yet
    /// due. The rate of each announcement is fixed at announce time, so
    /// the requirement does not ramp as deadlines approach.
    pub fn required_khz(&self, now: SimTime) -> f64 {
        self.announcements
            .iter()
            .filter(|a| a.due > now)
            .map(|a| {
                let window_us = a.due.duration_since(a.announced_at).as_micros() as f64;
                a.cycles * 1_000.0 / window_us
            })
            .sum()
    }
}

/// Clock policy driven purely by announced deadlines.
pub struct DeadlineGovernor {
    registry: SharedRegistry,
    table: ClockTable,
    /// Safety factor on the computed requirement (> 1 leaves headroom
    /// for memory stalls and scheduler noise).
    pub headroom: f64,
}

impl DeadlineGovernor {
    /// Creates a governor reading from `registry`.
    pub fn new(registry: SharedRegistry, table: ClockTable) -> Self {
        DeadlineGovernor {
            registry,
            table,
            headroom: 1.1,
        }
    }
}

impl ClockPolicy for DeadlineGovernor {
    fn on_interval(
        &mut self,
        now: SimTime,
        _utilization: f64,
        current_step: StepIndex,
    ) -> PolicyRequest {
        let mut reg = self.registry.lock().expect("registry poisoned");
        reg.expire(now);
        let khz = reg.required_khz(now) * self.headroom;
        drop(reg);
        let target = if khz <= 0.0 {
            self.table.slowest()
        } else {
            self.table
                .step_at_least(sim_core::Frequency::from_khz(khz.ceil() as u32))
        };
        PolicyRequest {
            step: (target != current_step).then_some(target),
            voltage: None,
        }
    }

    fn name(&self) -> String {
        format!("Deadline(EDF, headroom {:.2})", self.headroom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_needs_nothing() {
        let reg = DeadlineRegistry::default();
        assert_eq!(reg.required_khz(SimTime::ZERO), 0.0);
        assert!(reg.is_empty());
    }

    #[test]
    fn single_announcement_rate() {
        let mut reg = DeadlineRegistry::default();
        // 1.327e6 cycles due in 10 ms -> 132.7 MHz.
        reg.announce(1_327_000.0, SimTime::ZERO, SimTime::from_millis(10));
        let khz = reg.required_khz(SimTime::ZERO);
        assert!((khz - 132_700.0).abs() < 1.0, "khz = {khz}");
    }

    #[test]
    fn reservations_add_across_announcers() {
        let mut reg = DeadlineRegistry::default();
        reg.announce(590_000.0, SimTime::ZERO, SimTime::from_millis(10)); // 59 MHz
        reg.announce(100_000.0, SimTime::ZERO, SimTime::from_millis(5)); // 20 MHz
        let khz = reg.required_khz(SimTime::ZERO);
        assert!((khz - 79_000.0).abs() < 1.0, "khz = {khz}");
    }

    #[test]
    fn reservation_rate_is_fixed_at_announce_time() {
        // The requirement must not ramp up as the deadline approaches.
        let mut reg = DeadlineRegistry::default();
        reg.announce(1_000_000.0, SimTime::ZERO, SimTime::from_millis(10));
        let early = reg.required_khz(SimTime::ZERO);
        let late = reg.required_khz(SimTime::from_millis(9));
        assert!((early - late).abs() < 1e-9);
    }

    #[test]
    fn expiry_drops_past_deadlines() {
        let mut reg = DeadlineRegistry::default();
        reg.announce(1.0e6, SimTime::ZERO, SimTime::from_millis(10));
        reg.expire(SimTime::from_millis(11));
        assert!(reg.is_empty());
    }

    #[test]
    fn completion_withdraws_the_announcement() {
        let mut reg = DeadlineRegistry::default();
        let a = reg.announce(1.0e6, SimTime::ZERO, SimTime::from_millis(10));
        let _b = reg.announce(2.0e6, SimTime::ZERO, SimTime::from_millis(20));
        reg.complete(a);
        assert_eq!(reg.len(), 1);
        // Completing twice (or an unknown id) is harmless.
        reg.complete(a);
        assert_eq!(reg.len(), 1);
        // The requirement now reflects only the live announcement.
        let khz = reg.required_khz(SimTime::ZERO);
        assert!((khz - 100_000.0).abs() < 1.0, "khz = {khz}");
    }

    #[test]
    fn governor_picks_slowest_feasible_step() {
        let reg = DeadlineRegistry::shared();
        reg.lock()
            .unwrap()
            // 1.0e6 cycles due in 10 ms: 100 MHz, with 1.1 headroom
            // -> 110 MHz -> step 4 (118.0).
            .announce(1.0e6, SimTime::ZERO, SimTime::from_millis(10));
        let mut gov = DeadlineGovernor::new(reg.clone(), ClockTable::sa1100());
        let req = gov.on_interval(SimTime::ZERO, 0.5, 0);
        assert_eq!(req.step, Some(4));
    }

    #[test]
    fn governor_idles_at_slowest_without_announcements() {
        let reg = DeadlineRegistry::shared();
        let mut gov = DeadlineGovernor::new(reg, ClockTable::sa1100());
        let req = gov.on_interval(SimTime::from_millis(10), 0.0, 6);
        assert_eq!(req.step, Some(0));
        // Already at the slowest: no request.
        let req = gov.on_interval(SimTime::from_millis(20), 0.0, 0);
        assert_eq!(req.step, None);
    }

    #[test]
    fn governor_runs_as_late_as_possible_not_as_early() {
        // Contrast with an RTOS: given lots of slack, the governor picks
        // a *slow* clock rather than racing.
        let reg = DeadlineRegistry::shared();
        reg.lock()
            .unwrap()
            // 59 MHz-seconds of work due in 2 s: exactly 29.5 MHz needed.
            .announce(59.0e6, SimTime::ZERO, SimTime::from_secs(2));
        let mut gov = DeadlineGovernor::new(reg, ClockTable::sa1100());
        let req = gov.on_interval(SimTime::ZERO, 1.0, 10);
        assert_eq!(req.step, Some(0), "should crawl, not race");
    }

    #[test]
    fn zero_cycle_announcements_are_ignored() {
        let mut reg = DeadlineRegistry::default();
        reg.announce(0.0, SimTime::ZERO, SimTime::from_millis(5));
        assert!(reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "bad announcement")]
    fn negative_announcement_rejected() {
        let mut reg = DeadlineRegistry::default();
        reg.announce(-1.0, SimTime::ZERO, SimTime::from_millis(5));
    }
}
