//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--seed N] [--jobs N] [--resume] [--no-cache] [--quiet | -v]
//!       [--sweep-secs N] [--trace-secs N] [--optgap-secs N]
//!       [--fault-plan SPEC] [--profile] [--metrics-addr HOST:PORT]
//!       [--baseline FILE] [--bench-tolerance PCT] [--bench-iters N]
//!       [--devices N] [--device-secs N] [--fidelity full|summary]
//!       [all | fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!        table1 table2 table3 battery sa2 cost
//!        sweep sweep-full deadline ablation govil elastic
//!        tracedriven timescale summary oracle memprobe modern spectrum
//!        optgap trace bench fleet]
//! ```
//!
//! Results are printed (tables + ASCII charts) and saved as CSV under
//! `results/` (override with `REPRO_RESULTS_DIR`).
//!
//! Observability:
//!
//! - `--quiet` silences engine chatter on stderr (errors still print);
//!   `-v` turns on per-job debug records.
//! - `--metrics-addr HOST:PORT` serves live run telemetry as a
//!   Prometheus text endpoint at `http://HOST:PORT/metrics` for the
//!   whole invocation (port `0` picks a free port; the bound address is
//!   logged, and written to the file named by `REPRO_METRICS_ADDR_FILE`
//!   when that variable is set). The exporter also arms the per-worker
//!   stall watchdog (threshold `REPRO_STALL_MS` ms, default 5000). The
//!   telemetry plane is wall-clock observation only — every
//!   deterministic artifact is byte-identical with it on or off.
//! - engine-backed experiments write a `metrics.json` rollup next to
//!   their results and print a one-line summary.
//! - `trace` exports the structured event stream of the paper's key
//!   scenarios (`fig3`, `fig8`, `avgn`) as CSV and Chrome
//!   `trace_event` JSON under `results/trace/`. The bytes are a pure
//!   function of `--seed`: independent of `--jobs`, cache state, and
//!   wall-clock. `--trace-secs N` shortens each traced run for smoke
//!   tests.
//!
//! The grid experiments (`sweep`, `sweep-full`, `govil`, `ablation`)
//! run on the execution engine:
//!
//! - `--jobs N` — worker threads (default: one per core). Results are
//!   bit-identical whatever `N` is.
//! - completed cells persist in `results/cache/`; a re-run only
//!   simulates cells whose configuration changed. `--no-cache` turns
//!   the cache off for this invocation.
//! - `--resume` — replay the journal an interrupted run left behind
//!   instead of re-simulating its completed cells.
//! - `--sweep-secs N` — override seconds simulated per sweep cell
//!   (shrinks `sweep` for smoke tests, stretches it for studies).
//! - `--optgap-secs N` — seconds of work trace recorded per benchmark
//!   for the `optgap` optimality-gap experiment (default 30). Like
//!   `trace`, optgap's whole output — `metrics.json` included — is a
//!   pure function of `--seed`.
//! - `--fault-plan SPEC` — run the batch under deterministic fault
//!   injection (see EXPERIMENTS.md). `SPEC` is either the preset
//!   `chaos:<seed>` or explicit `key=value` pairs, e.g.
//!   `seed=7,corrupt=0.25,torn=0.25,panic=0.25,max_panics=2`.
//!   The same spec replays the same faults, whatever `--jobs` is.
//! - `--profile` — turn on the wall-clock span profiler for the whole
//!   invocation: engine-backed experiments gain job-latency
//!   percentiles' stage breakdown in `metrics.json`, write a
//!   `profile.trace.json` flame chart next to it, and `trace` exports
//!   grow a wall-clock span track alongside the sim-time tracks.
//!
//! `fleet` is the streaming population simulation (see EXPERIMENTS.md):
//! `--devices N` devices (default 1000) are generated lazily from
//! `--seed`, each a hardware/workload/charge variation of the stock
//! Itsy, simulated for `--device-secs` (default 1) simulated seconds,
//! and folded into mergeable sketches at bounded memory. It writes
//! `results/fleet/population_summary.txt` — canonical bytes that are
//! identical for any `--jobs` and any cache state — plus a `fleet.csv`
//! digest, a `fleet_timeline.csv` windowed timeline (energy, deadline
//! misses, utilization and battery drain over simulated time, same
//! determinism guarantee) and the usual `metrics.json` (including
//! `peak_rss_bytes`).
//! Devices simulate at summary fidelity by default (no per-tick series
//! are materialized); `--fidelity full` restores the historical
//! series-recording path. The flag also selects the fidelity of
//! `bench`'s fleet phase.
//!
//! `bench` is the performance-regression harness (see EXPERIMENTS.md):
//! it times a cold sweep, a warm (all-cache-hit) sweep, a single-thread
//! simulator hot loop, a trace export, and a fleet stream
//! (`fleet_devices_per_sec` in the gate), then writes `BENCH_<n>.json`
//! and `BENCH_latest.json` into the current directory. It manages the
//! profiler flag itself. `--baseline FILE` compares the new gate
//! against a previous report and exits 1 on a regression beyond
//! `--bench-tolerance` percent (default 30); `--bench-iters N` sets the
//! hot-loop iteration count.

use std::time::Instant;

use engine::{BatchStats, Engine, EngineConfig, FaultPlan};
use experiments::plot;
use experiments::*;

/// Consumes `--flag <value>` from `args`; `None` if absent.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let value = args[pos + 1].clone();
    args.drain(pos..=pos + 1);
    Some(value)
}

/// Consumes a bare `--flag` from `args`; true if present.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn print_stats(stats: &BatchStats) {
    let mut line = format!(
        "    engine: {} cells, {} simulated on {} worker(s), {} cache hit(s), {} journal hit(s)",
        stats.total, stats.executed, stats.workers, stats.cache_hits, stats.journal_hits
    );
    if stats.quarantined > 0 {
        line.push_str(&format!(", {} quarantined", stats.quarantined));
    }
    if stats.failed > 0 {
        line.push_str(&format!(", {} FAILED", stats.failed));
    }
    println!("{line}");
}

fn print_metrics(metrics: &obs::RunMetrics) {
    println!("    {}", metrics.summary_line());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = take_value_flag(&mut args, "--seed")
        .map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("bad seed: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or(1);
    let jobs: usize = take_value_flag(&mut args, "--jobs")
        .map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("bad --jobs value: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);
    let sweep_secs: Option<u64> = take_value_flag(&mut args, "--sweep-secs").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad --sweep-secs value: {e}");
            std::process::exit(2);
        })
    });
    let trace_secs: Option<u64> = take_value_flag(&mut args, "--trace-secs").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad --trace-secs value: {e}");
            std::process::exit(2);
        })
    });
    let optgap_secs: Option<u64> = take_value_flag(&mut args, "--optgap-secs").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad --optgap-secs value: {e}");
            std::process::exit(2);
        })
    });
    let devices: Option<u64> = take_value_flag(&mut args, "--devices").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad --devices value: {e}");
            std::process::exit(2);
        })
    });
    let device_secs: Option<u64> = take_value_flag(&mut args, "--device-secs").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad --device-secs value: {e}");
            std::process::exit(2);
        })
    });
    let fidelity: Option<sim_core::SimFidelity> =
        take_value_flag(&mut args, "--fidelity").map(|v| {
            sim_core::SimFidelity::parse(&v).unwrap_or_else(|| {
                eprintln!("bad --fidelity value: {v} (expected full or summary)");
                std::process::exit(2);
            })
        });
    if take_bool_flag(&mut args, "--quiet") {
        obs::set_verbosity(obs::Level::Error);
    } else if take_bool_flag(&mut args, "-v") {
        obs::set_verbosity(obs::Level::Debug);
    }
    if take_bool_flag(&mut args, "--profile") {
        obs::span::set_enabled(true);
    }
    if let Some(addr) = take_value_flag(&mut args, "--metrics-addr") {
        let bound = obs::exporter::start(&addr, obs::exporter::stall_threshold_ms())
            .unwrap_or_else(|e| {
                eprintln!("cannot serve --metrics-addr {addr}: {e}");
                std::process::exit(2);
            });
        obs::info!("repro: metrics exporter listening on http://{bound}/metrics");
        if let Ok(path) = std::env::var("REPRO_METRICS_ADDR_FILE") {
            std::fs::write(&path, bound.to_string()).unwrap_or_else(|e| {
                eprintln!("cannot write metrics address to {path}: {e}");
                std::process::exit(2);
            });
        }
    }
    let baseline: Option<String> = take_value_flag(&mut args, "--baseline");
    let bench_tolerance: f64 = take_value_flag(&mut args, "--bench-tolerance")
        .map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("bad --bench-tolerance value: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or(30.0);
    let bench_iters: Option<u32> = take_value_flag(&mut args, "--bench-iters").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad --bench-iters value: {e}");
            std::process::exit(2);
        })
    });
    let faults: Option<FaultPlan> = take_value_flag(&mut args, "--fault-plan").map(|v| {
        let parsed = match v.strip_prefix("chaos:") {
            Some(seed) => seed
                .parse::<u64>()
                .map(FaultPlan::chaos)
                .map_err(|e| format!("bad chaos seed: {e}")),
            None => FaultPlan::parse(&v),
        };
        parsed.unwrap_or_else(|e| {
            eprintln!("bad --fault-plan: {e}");
            std::process::exit(2);
        })
    });
    let engine = Engine::new(EngineConfig {
        jobs,
        use_cache: !take_bool_flag(&mut args, "--no-cache"),
        resume: take_bool_flag(&mut args, "--resume"),
        faults,
        progress: true,
        write_metrics: true,
        ..EngineConfig::default()
    });
    let mut cells_failed = 0usize;
    let mut gate_failed = false;
    #[allow(non_snake_case)]
    let SEED = seed;
    let want: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table3",
            "sa2",
            "battery",
            "cost",
            "fig5",
            "table1",
            "fig6",
            "fig7",
            "fig3",
            "fig4",
            "fig8",
            "fig9",
            "table2",
            "deadline",
            "ablation",
            "govil",
            "elastic",
            "tracedriven",
            "timescale",
            "summary",
            "oracle",
            "memprobe",
            "modern",
            "spectrum",
            "optgap",
            "sweep",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    for id in want {
        let t0 = Instant::now();
        println!("==> {id}");
        match id {
            "fig3" => {
                let r = fig3::run(SEED);
                r.save().expect("save fig3");
                println!("{r}");
                for (b, s) in &r.series {
                    let w = fig3::plot_window(s);
                    println!("{} (10ms quanta, first 30s):", b.name());
                    println!(
                        "{}",
                        plot::ascii_chart_bounds(&w, 100, 10, Some((0.0, 1.0)))
                    );
                }
            }
            "fig4" => {
                let r = fig4::run(SEED);
                r.save().expect("save fig4");
                println!("{r}");
                for (b, s) in &r.ma100 {
                    println!("{} (100ms moving average, first 30s):", b.name());
                    let w = s.window(sim_core::SimTime::ZERO, sim_core::SimTime::from_secs(30));
                    println!("{}", plot::ascii_chart_bounds(&w, 100, 8, Some((0.0, 1.0))));
                }
            }
            "fig5" => {
                let r = fig5::run();
                r.save().expect("save fig5");
                println!("{r}");
            }
            "fig6" => {
                let r = fig6::run(3);
                r.save().expect("save fig6");
                println!("{r}");
            }
            "fig7" => {
                let r = fig7::run();
                r.save().expect("save fig7");
                println!("{r}");
                println!(
                    "{}",
                    plot::ascii_chart_bounds(&r.analytic, 100, 12, Some((0.0, 1.0)))
                );
            }
            "fig8" => {
                let r = fig8::run(SEED);
                r.save().expect("save fig8");
                println!("{r}");
                println!(
                    "{}",
                    plot::ascii_chart_bounds(&r.freq_mhz, 100, 12, Some((50.0, 210.0)))
                );
            }
            "fig9" => {
                let r = fig9::run(SEED);
                r.save().expect("save fig9");
                println!("{r}");
                let mut curve = sim_core::TimeSeries::new("decode_util_vs_mhz");
                for p in &r.points {
                    curve.push(
                        sim_core::SimTime::from_micros((p.mhz * 1000.0) as u64),
                        p.decode_utilization,
                    );
                }
                println!(
                    "{}",
                    plot::ascii_chart_bounds(&curve, 80, 12, Some((0.7, 1.0)))
                );
            }
            "table1" => {
                let r = table1::run();
                r.save().expect("save table1");
                println!("{r}");
            }
            "table2" => {
                let r = table2::run(SEED);
                r.save().expect("save table2");
                println!("{r}");
            }
            "table3" => {
                let r = table3::run();
                r.save().expect("save table3");
                println!("{r}");
            }
            "battery" => {
                let r = battery_exp::run();
                r.save().expect("save battery");
                println!("{r}");
            }
            "sa2" => {
                let r = sa2::run();
                r.save().expect("save sa2");
                println!("{r}");
            }
            "cost" => {
                let r = switch_cost::run();
                r.save().expect("save cost");
                println!("{r}");
            }
            "sweep" => {
                let mut config = sweep::SweepConfig::quick();
                if let Some(secs) = sweep_secs {
                    config.secs = secs;
                }
                let (r, stats, metrics) = sweep::run_with(&engine, &config, SEED);
                r.save().expect("save sweep");
                println!("{r}");
                print_stats(&stats);
                print_metrics(&metrics);
                cells_failed += stats.failed;
            }
            "sweep-full" => {
                let mut config = sweep::SweepConfig::full();
                if let Some(secs) = sweep_secs {
                    config.secs = secs;
                }
                let (r, stats, metrics) = sweep::run_with(&engine, &config, SEED);
                r.save().expect("save sweep");
                println!("{r}");
                print_stats(&stats);
                print_metrics(&metrics);
                cells_failed += stats.failed;
            }
            "deadline" => {
                let r = deadline_exp::run();
                r.save().expect("save deadline");
                println!("{r}");
            }
            "spectrum" => {
                let r = spectrum::run(SEED);
                r.save().expect("save spectrum");
                println!("{r}");
            }
            "modern" => {
                let r = modern::run(SEED);
                r.save().expect("save modern");
                println!("{r}");
            }
            "memprobe" => {
                let r = memprobe::run();
                r.save().expect("save memprobe");
                println!("{r}");
            }
            "oracle" => {
                let r = oracle_exp::run(SEED);
                r.save().expect("save oracle");
                println!("{r}");
            }
            "optgap" => {
                let mut cfg = optgap_cmd::OptgapConfig {
                    seed: SEED,
                    ..optgap_cmd::OptgapConfig::default()
                };
                if let Some(secs) = optgap_secs {
                    cfg.secs = secs;
                }
                let r = optgap_cmd::run(&cfg);
                r.save().expect("save optgap");
                println!("{r}");
                print_metrics(&r.metrics);
            }
            "summary" => {
                let r = summary::run(SEED);
                r.save().expect("save summary");
                println!("{r}");
            }
            "timescale" => {
                let r = timescale::run(SEED);
                r.save().expect("save timescale");
                println!("{r}");
            }
            "tracedriven" => {
                let r = tracedriven::run(SEED);
                r.save().expect("save tracedriven");
                println!("{r}");
            }
            "govil" => {
                let (r, stats, metrics) = govil_exp::run_with(&engine, SEED);
                r.save().expect("save govil");
                println!("{r}");
                print_stats(&stats);
                print_metrics(&metrics);
                cells_failed += stats.failed;
            }
            "elastic" => {
                let r = elastic::run(SEED);
                r.save().expect("save elastic");
                println!("{r}");
            }
            "ablation" => {
                let a = ablation::interval_length_with(&engine, SEED);
                a.save().expect("save ablation");
                println!("{a}");
                let v = ablation::vscale_threshold_with(&engine, SEED);
                v.save().expect("save ablation");
                println!("{v}");
                let (without, with) = ablation::java_poller_with(&engine, SEED);
                println!("Ablation: Kaffe 30ms poller (Web, AVG_3 one-one)");
                println!(
                    "  without poller: {} switches, {:.1} MHz mean, {:.1} J",
                    without.switches, without.mean_mhz, without.energy_j
                );
                println!(
                    "  with poller   : {} switches, {:.1} MHz mean, {:.1} J\n",
                    with.switches, with.mean_mhz, with.energy_j
                );
            }
            "trace" => {
                for scenario in trace_exp::SCENARIOS {
                    let out = trace_exp::export(scenario, SEED, trace_secs)
                        .expect("known trace scenario");
                    let (csv, json) = out.save().expect("save trace");
                    println!(
                        "    {scenario}: {} events from {} run(s) -> {}, {}",
                        out.events,
                        out.runs,
                        csv.display(),
                        json.display()
                    );
                }
            }
            "fleet" => {
                let mut population = fleet::PopulationConfig::new(devices.unwrap_or(1_000), SEED);
                if let Some(secs) = device_secs {
                    population.device_secs = secs;
                }
                if let Some(f) = fidelity {
                    population.fidelity = f;
                }
                // The fleet run always carries the windowed timeline;
                // it is derived observation, so the other artifacts
                // are unchanged by it.
                let fleet_engine = Engine::new(EngineConfig {
                    timeline_windows: fleet::TIMELINE_WINDOWS,
                    ..engine.config().clone()
                });
                let artifacts =
                    fleet_cmd::run_with(&fleet_engine, &population).expect("save fleet");
                let stats = &artifacts.outcome.stats;
                print!("{}", fleet::digest(&artifacts.outcome.acc.summary));
                println!(
                    "    engine: {} devices streamed on {} worker(s), {} failed -> {:.0} devices/s",
                    stats.total,
                    stats.workers,
                    stats.failed,
                    stats.devices_per_sec()
                );
                print_metrics(&artifacts.outcome.metrics);
                println!(
                    "    wrote {} (and {}, {})",
                    artifacts.summary_path.display(),
                    artifacts.csv_path.display(),
                    artifacts.timeline_path.display()
                );
                cells_failed += stats.failed as usize;
            }
            "bench" => {
                let mut cfg = bench_cmd::BenchConfig {
                    seed: SEED,
                    jobs,
                    ..bench_cmd::BenchConfig::default()
                };
                if let Some(secs) = sweep_secs {
                    cfg.grid.secs = secs;
                }
                if let Some(secs) = trace_secs {
                    cfg.trace_secs = secs;
                }
                if let Some(devices) = devices {
                    cfg.fleet_devices = devices;
                }
                if let Some(iters) = bench_iters {
                    cfg.hot_iters = iters;
                }
                if let Some(f) = fidelity {
                    cfg.fleet_fidelity = f;
                }
                // Read the baseline gate before saving: saving
                // rewrites BENCH_latest.json, which is a perfectly
                // good --baseline argument.
                let base_gate = baseline.as_ref().map(|path| {
                    std::fs::read_to_string(path)
                        .ok()
                        .and_then(|doc| bench_cmd::parse_gate(&doc))
                });
                let report = bench_cmd::run(&cfg);
                print!("{}", report.summary);
                let (numbered, latest) = report
                    .save(std::path::Path::new("."))
                    .expect("write BENCH report");
                println!(
                    "    wrote {} (and {})",
                    numbered.display(),
                    latest.display()
                );
                if let (Some(path), Some(base)) = (&baseline, base_gate) {
                    match base {
                        Some(base) => {
                            let failures = bench_cmd::compare(&report.gate, &base, bench_tolerance);
                            if failures.is_empty() {
                                println!("    gate holds vs {path} (tolerance {bench_tolerance}%)");
                            } else {
                                for failure in &failures {
                                    eprintln!("    REGRESSION {failure}");
                                }
                                gate_failed = true;
                            }
                        }
                        None => {
                            eprintln!("    no gate object readable from {path}");
                            gate_failed = true;
                        }
                    }
                }
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
        println!("    ({:.2}s)\n", t0.elapsed().as_secs_f64());
    }
    if cells_failed > 0 {
        eprintln!(
            "{cells_failed} cell(s) produced no result; completed cells are \
             cached — re-run with --resume to retry the failures"
        );
        std::process::exit(1);
    }
    if gate_failed {
        eprintln!("bench gate failed; see REGRESSION lines above");
        std::process::exit(1);
    }
}
