//! Flat per-run accounting state for simulation hot loops.
//!
//! The kernel simulator integrates time and energy over hundreds of
//! thousands of segments per second of batch work. This module keeps
//! that accounting in plain flat fields — no maps, no per-segment
//! allocation — and memoizes the pure [`PowerModel::core_power`]
//! function so uniform spans (same mode, clock and voltage for many
//! quanta) pay for one evaluation instead of one per segment.
//!
//! Nothing here changes results: [`RunTotals`] adds are the same
//! integer/float additions the run loop would perform inline, and
//! [`CorePowerCache`] returns the bit-identical [`Power`] that a fresh
//! `core_power` call would (the model's parameters are constant for the
//! duration of a run).

use sim_core::{Energy, Frequency, Power, SimDuration, Voltage};

use crate::cpu::CpuMode;
use crate::power::PowerModel;

/// Flat time/energy totals for one simulation run.
///
/// Field order mirrors the report the kernel ultimately builds; all
/// updates are plain `+=` so delivering a whole uniform span at once
/// (`n` quanta as `n × quantum`) is exactly equal to delivering its
/// quanta one at a time — integer microsecond arithmetic is associative.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTotals {
    /// Time a task (or a mid-switch stall) held the core.
    pub busy: SimDuration,
    /// Time the core napped with nothing runnable.
    pub idle: SimDuration,
    /// Portion of `busy` spent stalled in clock/voltage switches.
    pub stalled: SimDuration,
    /// Portion of `busy` spent in spin-waits.
    pub spun: SimDuration,
    /// Total system energy.
    pub energy: Energy,
    /// Core-rail energy (the paper's processor-only measurements).
    pub core_energy: Energy,
}

impl RunTotals {
    /// Fresh zeroed totals.
    pub fn new() -> Self {
        RunTotals::default()
    }
}

/// Per-mode memo for [`PowerModel::core_power`].
///
/// `core_power` is pure in `(mode, frequency, voltage)` for a fixed
/// parameter set, and run loops query it with the same arguments for
/// long stretches (the machine state only changes at policy decisions
/// and schedule changes). One entry per [`CpuMode`] keeps the common
/// alternation — `Run` work segments interleaved with `Nap` idle
/// segments at an unchanged clock — fully cached. Each entry is keyed
/// on the exact `(frequency, voltage)` pair, so a hit returns the
/// bit-identical `Power` a recomputation would produce.
///
/// The model's parameters must not change between [`CorePowerCache::get`]
/// calls — true during a simulation run, where the power model is fixed
/// at machine construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorePowerCache {
    entries: [Option<(u32, u32, Power)>; 3],
}

impl CorePowerCache {
    /// An empty cache.
    pub fn new() -> Self {
        CorePowerCache::default()
    }

    /// The core power for `(mode, f, v)`, computed through `model` on a
    /// miss and replayed from the memo on a hit.
    #[inline]
    pub fn get(&mut self, model: &PowerModel, mode: CpuMode, f: Frequency, v: Voltage) -> Power {
        let (khz, mv) = (f.as_khz(), v.as_mv());
        let slot = &mut self.entries[mode as usize];
        if let Some((k, m, p)) = *slot {
            if k == khz && m == mv {
                return p;
            }
        }
        let p = model.core_power(mode, f, v);
        *slot = Some((khz, mv, p));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ClockTable, V_HIGH, V_LOW};

    #[test]
    fn totals_accumulate_flat() {
        let mut t = RunTotals::new();
        t.busy += SimDuration::from_millis(10);
        t.busy += SimDuration::from_millis(10);
        t.spun += SimDuration::from_millis(10);
        t.idle += SimDuration::from_millis(5);
        assert_eq!(t.busy.as_micros(), 20_000);
        assert_eq!(t.spun.as_micros(), 10_000);
        assert_eq!(t.idle.as_micros(), 5_000);
        assert_eq!(t.stalled, SimDuration::ZERO);
    }

    #[test]
    fn span_delivery_equals_per_quantum_delivery() {
        // n adds of q vs one add of n*q: exact for integer microseconds.
        let q = SimDuration::from_millis(10);
        let mut tick_by_tick = RunTotals::new();
        for _ in 0..1_000 {
            tick_by_tick.busy += q;
        }
        let mut spanned = RunTotals::new();
        spanned.busy += SimDuration::from_micros(1_000 * q.as_micros());
        assert_eq!(tick_by_tick.busy, spanned.busy);
    }

    #[test]
    fn power_cache_is_bit_identical_to_model() {
        let model = PowerModel::default();
        let table = ClockTable::sa1100();
        let mut cache = CorePowerCache::new();
        for &mode in &[CpuMode::Run, CpuMode::Nap, CpuMode::Stalled] {
            for step in 0..table.len() {
                for &v in &[V_HIGH, V_LOW] {
                    let f = table.freq(step);
                    let direct = model.core_power(mode, f, v);
                    // Miss then hit: both must equal the direct call.
                    assert_eq!(cache.get(&model, mode, f, v).as_watts(), direct.as_watts());
                    assert_eq!(cache.get(&model, mode, f, v).as_watts(), direct.as_watts());
                }
            }
        }
    }

    #[test]
    fn cache_distinguishes_modes_at_equal_frequency() {
        let model = PowerModel::default();
        let table = ClockTable::sa1100();
        let mut cache = CorePowerCache::new();
        let f = table.freq(10);
        let run = cache.get(&model, CpuMode::Run, f, V_HIGH);
        let nap = cache.get(&model, CpuMode::Nap, f, V_HIGH);
        assert!(nap.as_watts() < run.as_watts());
        // Back to Run: recomputed, not served from the stale Nap entry.
        assert_eq!(
            cache.get(&model, CpuMode::Run, f, V_HIGH).as_watts(),
            run.as_watts()
        );
    }
}
