//! Span-profiler overhead: the same workload timed with the profiler
//! off and on. The issue's acceptance bar is <2 % on a warm-cache
//! sweep; `repro bench` measures it end-to-end, this bench isolates
//! the two contributions:
//!
//! - `profiler_sim`: a single 2-second MPEG simulation, where the only
//!   instrumented spans are the per-job ones — the floor;
//! - `profiler_warm_sweep`: a warm-cache grid, where every cell takes
//!   the `cache_probe`/`cache_decode` span path — the hot case the
//!   acceptance criterion names.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use engine::{Engine, EngineConfig, JobSpec, WorkloadSpec};
use experiments::sweep::{self, SweepConfig};
use policies::{Hysteresis, PolicyDesc, SpeedChange};
use workloads::Benchmark;

fn grid() -> SweepConfig {
    SweepConfig {
        benchmarks: vec![Benchmark::Mpeg, Benchmark::Web],
        ns: vec![0, 3],
        rules: vec![SpeedChange::One, SpeedChange::Peg],
        thresholds: vec![Hysteresis::BEST],
        secs: 2,
    }
}

fn bench_single_sim(c: &mut Criterion) {
    let spec = JobSpec::new(
        WorkloadSpec::Benchmark(Benchmark::Mpeg),
        PolicyDesc::best_from_paper(),
        2,
        1,
    );
    let mut g = c.benchmark_group("profiler_sim");
    g.sample_size(10);
    for profiled in [false, true] {
        g.bench_with_input(
            BenchmarkId::new("spans", profiled),
            &profiled,
            |b, &profiled| {
                obs::span::set_enabled(profiled);
                b.iter(|| black_box(spec.execute()));
                obs::span::set_enabled(false);
                let _ = obs::span::drain();
            },
        );
    }
    g.finish();
}

fn bench_warm_sweep(c: &mut Criterion) {
    let config = grid();
    let root = std::env::temp_dir().join(format!("profiler-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let eng = Engine::new(EngineConfig {
        jobs: 0,
        use_cache: true,
        state_root: Some(root.clone()),
        ..EngineConfig::hermetic()
    });
    // Prime once; every timed iteration is then all cache hits — the
    // span-per-probe path dominates.
    let (_, stats, _) = sweep::run_with(&eng, &config, 1);
    assert_eq!(stats.failed, 0);

    let cells = sweep::specs(&config, 1).len() as u64;
    let mut g = c.benchmark_group("profiler_warm_sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    for profiled in [false, true] {
        g.bench_with_input(
            BenchmarkId::new("spans", profiled),
            &profiled,
            |b, &profiled| {
                obs::span::set_enabled(profiled);
                b.iter(|| black_box(sweep::run_with(&eng, &config, 1)));
                obs::span::set_enabled(false);
                let _ = obs::span::drain();
            },
        );
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_single_sim, bench_warm_sweep);
criterion_main!(benches);
