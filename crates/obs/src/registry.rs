//! The live metrics registry: typed, process-global, lock-free on the
//! hot path.
//!
//! Simulation artifacts (CSV, `metrics.json`, traces) are deterministic
//! *post-mortem* evidence; this module is the *live* plane — counters,
//! gauges and latency histograms that engine and fleet hot paths bump
//! while a run is in flight, scraped over HTTP by
//! [`crate::exporter`]. Three rules keep it honest:
//!
//! 1. **Wall-clock side channel only.** Nothing in the registry feeds
//!    back into simulation or deterministic outputs; with telemetry off
//!    every handle is a no-op behind one relaxed atomic load.
//! 2. **Lock-free recording.** A handle is a leaked `&'static` pointing
//!    at atomics; `inc`/`add`/`observe` never take a lock. The registry
//!    mutex is touched only at registration (once per metric) and at
//!    scrape time.
//! 3. **Monotone counters, settable gauges, log-bucketed histograms** —
//!    the same taxonomy Prometheus expects, so the exporter renders
//!    without translation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Master switch. Off by default: every recording call is a single
/// relaxed load and a branch until `repro --metrics-addr` turns the
/// plane on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns live recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the live plane is recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An integer value that can go up and down (queue depths, in-flight
/// jobs).
#[derive(Debug, Default)]
pub struct Gauge {
    /// Stored as `i64` bits in a `u64` so add/sub wrap coherently.
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v as u64, Ordering::Relaxed);
        }
    }

    /// Adds `d` (may be negative via `dec`).
    pub fn add(&self, d: i64) {
        if enabled() {
            self.value.fetch_add(d as u64, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed) as i64
    }
}

/// A float-valued gauge for derived rates (jobs/s, cache hit rate),
/// written by the snapshot thread rather than hot paths.
#[derive(Debug, Default)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Logarithmic bucket count mirroring [`sim_core::LogHistogram`]:
/// 16 sub-buckets per power of two, offset so sub-microsecond values
/// still land in range.
const SUBBUCKETS: f64 = 16.0;
/// Bucket index offset: bucket 0 holds `2^(-512/16) = 2^-32` and below.
const OFFSET: i32 = 512;
/// Total atomic buckets per histogram (covers `2^-32` .. `2^32`, far
/// beyond any latency this process can observe).
const BUCKETS: usize = 1024;

/// A lock-free histogram of positive values (latencies in µs), exported
/// as Prometheus summary quantiles.
///
/// Same geometric bucketing as [`sim_core::LogHistogram`] (16 buckets
/// per power of two, ~±2% quantile error) but over a fixed array of
/// atomics so concurrent `observe` never locks. The sum is kept in
/// 1/1024ths so it survives integer atomics; good to ~0.1% — plenty
/// for a live dashboard.
pub struct LiveHistogram {
    count: AtomicU64,
    /// Σ value, scaled by 1024 and rounded.
    sum_1024: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LiveHistogram {
    fn default() -> Self {
        LiveHistogram {
            count: AtomicU64::new(0),
            sum_1024: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl LiveHistogram {
    fn index_of(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        let idx = (v.log2() * SUBBUCKETS).floor() as i32 + OFFSET;
        idx.clamp(0, (BUCKETS - 1) as i32) as usize
    }

    /// Geometric midpoint of bucket `i` — the value a quantile lookup
    /// reports.
    fn midpoint(i: usize) -> f64 {
        ((i as f64 - OFFSET as f64 + 0.5) / SUBBUCKETS).exp2()
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() && v > 0.0 {
            self.sum_1024
                .fetch_add((v * 1024.0).round() as u64, Ordering::Relaxed);
        }
        self.buckets[Self::index_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate Σ of observed values.
    pub fn sum(&self) -> f64 {
        self.sum_1024.load(Ordering::Relaxed) as f64 / 1024.0
    }

    /// The approximate `q`-quantile (`0 < q <= 1`), or `None` when
    /// empty. Reads a live snapshot; concurrent observes may skew the
    /// rank by a few counts, which is fine for monitoring.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::midpoint(i));
            }
        }
        // A racing observe bumped count before its bucket; report the
        // highest occupied bucket.
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, b)| b.load(Ordering::Relaxed) > 0)
            .map(|(i, _)| Self::midpoint(i))
    }
}

impl std::fmt::Debug for LiveHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// The kinds a registered metric can have.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    FloatGauge(&'static FloatGauge),
    Histogram(&'static LiveHistogram),
}

struct Entry {
    /// Full exposition name, label block included
    /// (`engine_worker_jobs_total{worker="3"}`).
    name: String,
    help: &'static str,
    kind: Kind,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// The metric-family part of an exposition name: everything before the
/// label block.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Registration is idempotent by name: a same-name hit returns the
/// existing handle; a cross-kind collision is a programming error
/// worth failing loudly on.
macro_rules! register {
    ($name:expr, $help:expr, $ty:ty, $variant:ident) => {{
        let mut entries = registry().lock().expect("metrics registry lock");
        if let Some(e) = entries.iter().find(|e| e.name == $name) {
            match e.kind {
                Kind::$variant(handle) => return handle,
                _ => panic!("metric `{}` already registered as a different kind", $name),
            }
        }
        let handle: &'static $ty = Box::leak(Box::new(<$ty>::default()));
        entries.push(Entry {
            name: $name.to_string(),
            help: $help,
            kind: Kind::$variant(handle),
        });
        handle
    }};
}

/// Registers (or fetches) a counter by exposition name.
pub fn counter(name: &str, help: &'static str) -> &'static Counter {
    register!(name, help, Counter, Counter)
}

/// Registers (or fetches) an integer gauge.
pub fn gauge(name: &str, help: &'static str) -> &'static Gauge {
    register!(name, help, Gauge, Gauge)
}

/// Registers (or fetches) a float gauge.
pub fn float_gauge(name: &str, help: &'static str) -> &'static FloatGauge {
    register!(name, help, FloatGauge, FloatGauge)
}

/// Registers (or fetches) a latency histogram.
pub fn histogram(name: &str, help: &'static str) -> &'static LiveHistogram {
    register!(name, help, LiveHistogram, Histogram)
}

/// Looks up a counter that may not have been registered yet (the
/// snapshot thread derives rates from counters hot paths register
/// lazily).
pub fn find_counter(name: &str) -> Option<&'static Counter> {
    let entries = registry().lock().expect("metrics registry lock");
    entries.iter().find(|e| e.name == name).and_then(|e| {
        if let Kind::Counter(c) = e.kind {
            Some(c)
        } else {
            None
        }
    })
}

/// Renders every registered metric in Prometheus text exposition format
/// 0.0.4. Families are sorted by name; `# HELP`/`# TYPE` headers are
/// emitted once per family; histograms render as summaries with
/// `quantile` labels plus `_sum`/`_count`.
pub fn render_prometheus() -> String {
    use std::fmt::Write as _;
    let entries = registry().lock().expect("metrics registry lock");
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        base_name(&entries[a].name)
            .cmp(base_name(&entries[b].name))
            .then(entries[a].name.cmp(&entries[b].name))
    });
    let mut out = String::new();
    let mut last_family = "";
    for &i in &order {
        let e = &entries[i];
        let family = base_name(&e.name);
        if family != last_family {
            let kind = match e.kind {
                Kind::Counter(_) => "counter",
                Kind::Gauge(_) | Kind::FloatGauge(_) => "gauge",
                Kind::Histogram(_) => "summary",
            };
            let _ = writeln!(out, "# HELP {family} {}", e.help);
            let _ = writeln!(out, "# TYPE {family} {kind}");
            last_family = family;
        }
        match e.kind {
            Kind::Counter(c) => {
                let _ = writeln!(out, "{} {}", e.name, c.get());
            }
            Kind::Gauge(g) => {
                let _ = writeln!(out, "{} {}", e.name, g.get());
            }
            Kind::FloatGauge(g) => {
                let _ = writeln!(out, "{} {}", e.name, format_float(g.get()));
            }
            Kind::Histogram(h) => {
                for q in [0.5, 0.9, 0.99] {
                    let v = h.quantile(q).unwrap_or(0.0);
                    let _ = writeln!(out, "{family}{{quantile=\"{q}\"}} {}", format_float(v));
                }
                let _ = writeln!(out, "{family}_sum {}", format_float(h.sum()));
                let _ = writeln!(out, "{family}_count {}", h.count());
            }
        }
    }
    out
}

/// Prometheus float formatting: plain decimal, `NaN`-safe.
fn format_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Serializes tests that flip the process-global recording gate
/// (shared with the exporter's tests, which also enable it).
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::test_serial as serial;

    #[test]
    fn disabled_registry_records_nothing() {
        let _guard = serial();
        set_enabled(false);
        let c = counter("test_disabled_total", "t");
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 0, "disabled counter stays zero");
        let h = histogram("test_disabled_us", "t");
        h.observe(10.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn counters_gauges_and_handles_are_idempotent() {
        let _guard = serial();
        set_enabled(true);
        let c = counter("test_jobs_total", "jobs");
        let c2 = counter("test_jobs_total", "jobs");
        assert!(std::ptr::eq(c, c2), "same name, same handle");
        c.inc();
        c2.add(2);
        assert_eq!(c.get(), 3);

        let g = gauge("test_depth", "queue depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-4);
        assert_eq!(g.get(), -4);

        let f = float_gauge("test_rate", "rate");
        f.set(12.25);
        assert_eq!(f.get(), 12.25);
        set_enabled(false);
    }

    #[test]
    fn histogram_quantiles_track_the_distribution() {
        let _guard = serial();
        set_enabled(true);
        let h = histogram("test_latency_us", "latency");
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).expect("data");
        let p99 = h.quantile(0.99).expect("data");
        // Geometric buckets: ±~4.4% per bucket edge.
        assert!((p50 / 500.0 - 1.0).abs() < 0.1, "p50 = {p50}");
        assert!((p99 / 990.0 - 1.0).abs() < 0.1, "p99 = {p99}");
        assert!(p50 <= p99);
        let sum = h.sum();
        assert!((sum / 500_500.0 - 1.0).abs() < 0.01, "sum = {sum}");
        set_enabled(false);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let _guard = serial();
        set_enabled(true);
        counter("test_render_total", "a counter").add(7);
        gauge("test_render_depth", "a gauge").set(3);
        let h = histogram("test_render_us", "a histogram");
        h.observe(100.0);
        let per_worker = counter("test_render_worker_total{worker=\"1\"}", "per worker");
        per_worker.add(2);
        counter("test_render_worker_total{worker=\"0\"}", "per worker").add(1);
        let text = render_prometheus();
        assert!(text.contains("# TYPE test_render_total counter"));
        assert!(text.contains("test_render_total 7"));
        assert!(text.contains("# TYPE test_render_depth gauge"));
        assert!(text.contains("test_render_depth 3"));
        assert!(text.contains("# TYPE test_render_us summary"));
        assert!(text.contains("test_render_us{quantile=\"0.5\"}"));
        assert!(text.contains("test_render_us_count 1"));
        // One TYPE header per family even with labeled children, and
        // the children sort within the family.
        assert_eq!(text.matches("# TYPE test_render_worker_total").count(), 1);
        let w0 = text.find("worker=\"0\"").expect("worker 0");
        let w1 = text.find("worker=\"1\"").expect("worker 1");
        assert!(w0 < w1);
        // Every non-comment line is `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().expect("metric name");
            let value = parts.next().expect("metric value");
            assert!(parts.next().is_none(), "extra tokens in `{line}`");
            assert!(!name.is_empty());
            assert!(
                value.parse::<f64>().is_ok() || value == "NaN",
                "unparseable value in `{line}`"
            );
        }
        set_enabled(false);
    }

    #[test]
    fn bucket_index_handles_extremes() {
        assert_eq!(LiveHistogram::index_of(0.0), 0);
        assert_eq!(LiveHistogram::index_of(-5.0), 0);
        assert_eq!(LiveHistogram::index_of(f64::NAN), 0);
        assert_eq!(LiveHistogram::index_of(f64::INFINITY), 0);
        assert_eq!(LiveHistogram::index_of(f64::MAX), BUCKETS - 1);
        // Midpoint of a value's bucket is within one sub-bucket ratio.
        for v in [0.5, 1.0, 3.0, 1e6] {
            let m = LiveHistogram::midpoint(LiveHistogram::index_of(v));
            assert!(
                (m / v).log2().abs() <= 1.0 / SUBBUCKETS + 1e-9,
                "v={v} m={m}"
            );
        }
    }
}
