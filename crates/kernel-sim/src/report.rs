//! The output of a simulated run.

use sim_core::{Energy, SimDuration, TimeSeries};

use itsy_hw::StepIndex;

use crate::log::{DeadlineLog, SchedLog};

/// Everything a run produces: traces, logs, totals.
#[derive(Debug)]
pub struct KernelReport {
    /// Per-quantum CPU utilization (non-idle time / quantum), sampled at
    /// each timer tick — the policy's own input, and the data behind
    /// Figures 3 and 4.
    pub utilization: TimeSeries,
    /// Clock frequency in MHz at each timer tick — Figure 8's series.
    pub freq_mhz: TimeSeries,
    /// Per-quantum executed work as a fraction of a *full-speed*
    /// quantum — the Weiser-style work trace the oracle baselines
    /// consume.
    pub work_fraction: TimeSeries,
    /// Instantaneous system power (watts) as a step function: a sample
    /// at the start of every homogeneous segment plus a final sample at
    /// the end of the run. The DAQ resamples this at 5 kHz.
    pub power_w: TimeSeries,
    /// Total non-idle time (includes clock-change stalls).
    pub busy: SimDuration,
    /// Total idle (nap) time.
    pub idle: SimDuration,
    /// Portion of `busy` spent stalled in clock changes.
    pub stalled: SimDuration,
    /// Portion of `busy` spent in application spin loops (busy-waiting
    /// on wall-clock time rather than doing clock-dependent work).
    pub spun: SimDuration,
    /// Total energy drawn.
    pub energy: Energy,
    /// Portion of `energy` drawn by the processor core — the only part
    /// voltage scaling reduces ("voltage scaling only reduces the power
    /// used by the processor").
    pub core_energy: Energy,
    /// Scheduler activity log.
    pub sched_log: SchedLog,
    /// Deadline outcomes reported by tasks.
    pub deadlines: DeadlineLog,
    /// Structured event trace (empty unless [`KernelConfig::trace`]
    /// was set).
    ///
    /// [`KernelConfig::trace`]: crate::KernelConfig
    pub trace: obs::Trace,
    /// Number of clock-step changes the policy caused.
    pub clock_switches: u64,
    /// Number of voltage changes the policy caused.
    pub voltage_switches: u64,
    /// Clock step at the end of the run.
    pub final_step: StepIndex,
    /// Per-task CPU time: `(pid, label, busy time)` — the Unix-style
    /// process accounting the paper's logging module enabled.
    pub per_task_cpu: Vec<(crate::task::Pid, String, SimDuration)>,
    /// Battery charge remaining at the end (fraction), if a battery was
    /// attached.
    pub battery_remaining: Option<f64>,
    /// Simulated wall-clock length of the run.
    pub elapsed: SimDuration,
}

impl KernelReport {
    /// Mean utilization over the whole run.
    pub fn mean_utilization(&self) -> f64 {
        self.utilization.mean().unwrap_or(0.0)
    }

    /// Average power over the run.
    pub fn mean_power_w(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.energy.as_joules() / self.elapsed.as_secs_f64()
        }
    }

    /// Busy + idle must equal elapsed time; exposed for invariant tests.
    pub fn time_accounted(&self) -> SimDuration {
        self.busy + self.idle
    }

    /// Peripheral (non-core) energy.
    pub fn peripheral_energy(&self) -> Energy {
        self.energy - self.core_energy
    }

    /// CPU time of the task with the given label, if it exists.
    pub fn cpu_time_of(&self, label: &str) -> Option<SimDuration> {
        self.per_task_cpu
            .iter()
            .find(|(_, l, _)| l == label)
            .map(|&(_, _, t)| t)
    }

    /// Sum of per-task CPU time; equals `busy` minus clock-change
    /// stalls (stalls are non-idle but belong to no task).
    pub fn per_task_total(&self) -> SimDuration {
        self.per_task_cpu
            .iter()
            .fold(SimDuration::ZERO, |acc, &(_, _, t)| acc + t)
    }
}
