//! # itsy-dvs
//!
//! A from-scratch reproduction of *Policies for Dynamic Clock Scheduling*
//! (Grunwald, Morrey, Levis, Neufeld, Farkas — OSDI 2000): interval-based
//! dynamic clock/voltage scheduling policies evaluated on a simulated
//! Itsy pocket computer (StrongARM SA-1100) running a Linux-2.0-style
//! scheduler.
//!
//! This facade crate re-exports the workspace crates so applications can
//! depend on a single name:
//!
//! - [`sim`] — discrete-event engine, time and quantity types
//! - [`hw`] — the Itsy hardware model (clock steps, power, memory, battery)
//! - [`kernel`] — the simulated kernel (scheduler, timer, policy hook)
//! - [`apps`] — the paper's four workloads plus synthetic ones
//! - [`dvs`] — the clock-scheduling policies (the paper's subject)
//! - [`measure`] — the simulated DAQ measurement harness
//! - [`signal`] — Fourier/filter analysis from §5.3
//! - [`repro`] — one module per table/figure in the paper
//! - [`engine`] — the parallel, cache-aware batch executor
//! - [`obs`] — structured events, metrics and deterministic trace export
//!
//! # Examples
//!
//! The paper's headline configuration in a few lines:
//!
//! ```
//! use itsy_dvs::apps::Benchmark;
//! use itsy_dvs::dvs::IntervalScheduler;
//! use itsy_dvs::hw::ClockTable;
//! use itsy_dvs::kernel::{Kernel, KernelConfig, Machine};
//! use itsy_dvs::sim::SimDuration;
//!
//! let mut kernel = Kernel::new(
//!     Machine::itsy(10, Benchmark::Mpeg.devices()),
//!     KernelConfig {
//!         duration: SimDuration::from_secs(5),
//!         ..KernelConfig::default()
//!     },
//! );
//! Benchmark::Mpeg.spawn_into(&mut kernel, 42);
//! kernel.install_policy(Box::new(IntervalScheduler::best_from_paper(
//!     ClockTable::sa1100(),
//! )));
//! let report = kernel.run();
//! assert_eq!(report.deadlines.misses(SimDuration::from_millis(100)), 0);
//! assert!(report.clock_switches > 0);
//! ```
//!
//! See `examples/quickstart.rs` for a longer tour.

pub use analysis as signal;
pub use daq as measure;
pub use engine;
pub use experiments as repro;
pub use itsy_hw as hw;
pub use kernel_sim as kernel;
pub use obs;
pub use policies as dvs;
pub use sim_core as sim;
pub use workloads as apps;
