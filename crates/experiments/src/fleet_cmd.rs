//! `repro fleet`: population simulation over the streaming engine.
//!
//! A thin CLI shim over [`fleet::run`]: builds the population from
//! `--devices`/`--seed`/`--device-secs`, streams it through the
//! engine, prints the sketch digest, and persists the population
//! summary under `results/fleet/`.
//!
//! The saved `population_summary.txt` is the [`sim_core::FleetSummary`]
//! canonical encoding — the file CI byte-diffs across `--jobs` counts
//! to prove the aggregation is partition-independent. `fleet.csv` is a
//! friendlier per-metric table (count/mean/percentiles) for plotting,
//! and `fleet_timeline.csv` unrolls the windowed timeline — one row per
//! (window, metric) — so energy, deadline misses and battery drain can
//! be plotted over simulated time. All three are pure functions of the
//! merged sketches, hence byte-identical at any `--jobs`.

use std::io;
use std::path::{Path, PathBuf};

use engine::Engine;
use fleet::{FleetAccum, FleetOutcome, PopulationConfig};
use sim_core::FleetSummary;

use crate::report;

/// What `repro fleet` leaves on disk.
pub struct FleetArtifacts {
    /// The run itself (summary, stats, failures, metrics, profile).
    pub outcome: FleetOutcome,
    /// Canonical summary bytes (`population_summary.txt`).
    pub summary_path: PathBuf,
    /// Per-metric digest table (`fleet.csv`).
    pub csv_path: PathBuf,
    /// Windowed timeline table (`fleet_timeline.csv`).
    pub timeline_path: PathBuf,
}

/// Runs the population and writes the artifacts under
/// `results/fleet/` (honoring `REPRO_RESULTS_DIR`).
pub fn run_with(engine: &Engine, population: &PopulationConfig) -> io::Result<FleetArtifacts> {
    let outcome = fleet::run(engine, "fleet", population);
    let dir = report::results_dir().join("fleet");
    let (summary_path, csv_path, timeline_path) = save(&dir, &outcome.acc)?;
    Ok(FleetArtifacts {
        outcome,
        summary_path,
        csv_path,
        timeline_path,
    })
}

/// Writes `population_summary.txt` (canonical bytes), `fleet.csv`
/// (per-metric digest) and `fleet_timeline.csv` (windowed timeline)
/// into `dir`, returning the three paths.
pub fn save(dir: &Path, acc: &FleetAccum) -> io::Result<(PathBuf, PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let summary_path = dir.join("population_summary.txt");
    std::fs::write(&summary_path, acc.summary.encode())?;
    let csv_path = dir.join("fleet.csv");
    std::fs::write(&csv_path, csv(&acc.summary))?;
    let timeline_path = dir.join("fleet_timeline.csv");
    std::fs::write(&timeline_path, timeline_csv(acc))?;
    Ok((summary_path, csv_path, timeline_path))
}

/// Renders the per-metric digest table as CSV.
pub fn csv(summary: &FleetSummary) -> String {
    let mut out = String::from("metric,count,mean,min,p50,p90,p99,max\n");
    for name in summary.metric_names() {
        let h = summary.metric(name).expect("listed metric exists");
        out.push_str(&format!(
            "{name},{},{},{},{},{},{},{}\n",
            h.count(),
            h.mean().unwrap_or(0.0),
            h.min().unwrap_or(0.0),
            h.percentile(0.5).unwrap_or(0.0),
            h.percentile(0.9).unwrap_or(0.0),
            h.percentile(0.99).unwrap_or(0.0),
            h.max().unwrap_or(0.0),
        ));
    }
    out
}

/// Renders the windowed timeline as CSV: one row per (window, metric),
/// with the same stats columns as `fleet.csv` plus the window's
/// sim-time bounds. Empty (header-only) when the run had no timeline.
pub fn timeline_csv(acc: &FleetAccum) -> String {
    let mut out = String::from("window,start_us,end_us,metric,count,mean,min,p50,p90,p99,max\n");
    for (i, win) in acc.windows.iter().enumerate() {
        for name in win.summary.metric_names() {
            let h = win.summary.metric(name).expect("listed metric exists");
            out.push_str(&format!(
                "{i},{},{},{name},{},{},{},{},{},{},{}\n",
                win.start_us,
                win.end_us,
                h.count(),
                h.mean().unwrap_or(0.0),
                h.min().unwrap_or(0.0),
                h.percentile(0.5).unwrap_or(0.0),
                h.percentile(0.9).unwrap_or(0.0),
                h.percentile(0.99).unwrap_or(0.0),
                h.max().unwrap_or(0.0),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::EngineConfig;

    fn run_outcome(windows: u32) -> FleetOutcome {
        let engine = Engine::new(EngineConfig {
            timeline_windows: windows,
            ..EngineConfig::hermetic()
        });
        let population = PopulationConfig::new(6, 11);
        fleet::run(&engine, "fleet-cmd-test", &population)
    }

    #[test]
    fn saved_summary_round_trips_and_csv_covers_every_metric() {
        let outcome = run_outcome(0);

        let dir = std::env::temp_dir().join(format!("fleet-cmd-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (summary_path, csv_path, timeline_path) =
            save(&dir, &outcome.acc).expect("save artifacts");

        let bytes = std::fs::read_to_string(&summary_path).expect("summary written");
        let decoded = FleetSummary::decode(&bytes).expect("canonical bytes decode");
        assert_eq!(decoded, outcome.acc.summary, "file round-trips the summary");

        let table = std::fs::read_to_string(&csv_path).expect("csv written");
        assert!(table.starts_with("metric,count,"));
        for name in outcome.acc.summary.metric_names() {
            assert!(table.contains(name), "csv missing {name}");
        }

        // Without a timeline the CSV still exists, header-only.
        let timeline = std::fs::read_to_string(&timeline_path).expect("timeline written");
        assert_eq!(timeline.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeline_csv_lists_every_window_and_metric() {
        let outcome = run_outcome(fleet::TIMELINE_WINDOWS);
        let table = timeline_csv(&outcome.acc);
        assert!(table.starts_with("window,start_us,end_us,metric,"));
        let rows = table.lines().count() - 1;
        let per_window: usize = outcome.acc.windows[0].summary.metric_names().count();
        assert_eq!(rows, fleet::TIMELINE_WINDOWS as usize * per_window);
        for needle in ["energy_j", "misses", "utilization", "battery_drain_pct"] {
            assert!(table.contains(needle), "timeline missing {needle}");
        }
        // The timeline, like every fleet artifact, is jobs-independent.
        let four = {
            let engine = Engine::new(EngineConfig {
                jobs: 4,
                timeline_windows: fleet::TIMELINE_WINDOWS,
                ..EngineConfig::hermetic()
            });
            fleet::run(&engine, "fleet-cmd-test", &PopulationConfig::new(6, 11))
        };
        assert_eq!(table, timeline_csv(&four.acc), "jobs=1 vs jobs=4");
    }
}
