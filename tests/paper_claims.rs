//! The paper's headline claims, checked end-to-end through the facade.
//!
//! These are the sentences a reader would quote from the paper; each
//! test regenerates the evidence.

use itsy_dvs::repro;
use itsy_dvs::sim::SimDuration;

/// "currently proposed algorithms consistently fail to achieve their
/// goal of saving power while not causing user applications to change
/// their interactive behavior" — even the best policy's saving is small
/// next to what the right constant speed achieves.
#[test]
fn heuristics_leave_most_of_the_energy_on_the_table() {
    let t2 = repro::table2::run(1);
    let constant_top = t2.mean(0);
    let constant_right = t2.mean(1); // 132.7 MHz
    let best_policy = t2.mean(3);
    let policy_saving = constant_top - best_policy;
    let oracle_saving = constant_top - constant_right;
    assert!(policy_saving > 0.0);
    assert!(
        policy_saving < 0.5 * oracle_saving,
        "the heuristic captured {policy_saving:.1}J of the {oracle_saving:.1}J available"
    );
}

/// "the AVG_N algorithm can not settle on the clock speed that
/// maximizes CPU utilization" — its filtered output oscillates forever
/// on a periodic load.
#[test]
fn avg_n_cannot_settle() {
    let f7 = repro::fig7::run();
    assert!(f7.analytic_band.swing() > 0.15);
    assert!(f7.empirical_band.swing() > 0.15);
}

/// "Each application was able to run at 132MHz and still meet any user
/// interaction constraints."
#[test]
fn everything_runs_at_132mhz() {
    use itsy_dvs::apps::Benchmark;
    use itsy_dvs::kernel::{Kernel, KernelConfig, Machine};
    for b in Benchmark::ALL {
        let mut kernel = Kernel::new(
            Machine::itsy(5, b.devices()),
            KernelConfig {
                duration: SimDuration::from_secs(20),
                ..KernelConfig::default()
            },
        );
        b.spawn_into(&mut kernel, 3);
        let r = kernel.run();
        assert_eq!(
            r.deadlines.misses(SimDuration::from_millis(100)),
            0,
            "{} at 132.7 MHz missed (worst {})",
            b.name(),
            r.deadlines.max_lateness()
        );
    }
}

/// "Clock scaling took approximately 200 microseconds ... we would be
/// able to change the clock or voltage on every scheduling decision
/// with less than 2% overhead."
#[test]
fn switch_overhead_is_negligible() {
    let c = repro::switch_cost::run();
    assert!(c.quantum_overhead() <= 0.025);
}

/// "The policy causes many voltage and clock changes" — Figure 8's
/// best policy flaps between the extremes.
#[test]
fn best_policy_flaps() {
    let f8 = repro::fig8::run(1);
    assert!(f8.clock_switches > 30);
    assert!(f8.fraction_at_59 + f8.fraction_at_206 > 0.95);
    assert_eq!(f8.misses, 0);
}

/// "the processor utilization does not always vary linearly with clock
/// frequency" — the memory-induced plateau.
#[test]
fn utilization_is_nonlinear_in_frequency() {
    let f9 = repro::fig9::run(1);
    assert!(f9.plateau_drop().abs() < 0.02);
    // While the curve overall drops by ~20 points.
    let total_drop = f9.decode_at(5) - f9.decode_at(10);
    assert!(total_drop > 0.1, "total drop = {total_drop}");
}

/// Splits one exported CSV line into `(run, event, detail)`.
fn csv_row(line: &str) -> (&str, &str, &str) {
    let mut it = line.splitn(5, ',');
    let _time = it.next().unwrap();
    let run = it.next().unwrap();
    let _seq = it.next().unwrap();
    let event = it.next().unwrap();
    let detail = it.next().unwrap();
    (run, event, detail)
}

/// Reads `key=value` out of an event's detail column.
fn detail_field<'a>(detail: &'a str, key: &str) -> &'a str {
    detail
        .split(' ')
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("{key} in {detail}"))
}

/// The AVG_N oscillation claim, checked against the exported event
/// trace rather than the analytic model: on the 9/1 square wave the
/// predictor's weighted output keeps swinging and the policy keeps
/// issuing speed changes in *both* directions — it never settles.
#[test]
fn avg_n_oscillates_in_the_exported_trace() {
    let out = repro::trace_exp::export("avgn", 1, Some(10)).expect("known scenario");
    let decisions: Vec<&str> = out
        .csv
        .lines()
        .skip(1)
        .filter(|l| csv_row(l).1 == "policy")
        .collect();
    assert!(decisions.len() > 100, "one decision per quantum");
    // Ignore the first second of warm-up; judge the steady state.
    let tail = &decisions[100..];
    let weighted: Vec<f64> = tail
        .iter()
        .map(|l| detail_field(csv_row(l).2, "weighted").parse().unwrap())
        .collect();
    let lo = weighted.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = weighted.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi - lo > 0.15, "filtered output settled: swing {}", hi - lo);
    let (mut ups, mut downs) = (0u32, 0u32);
    for l in tail {
        let d = csv_row(l).2;
        let from: u64 = detail_field(d, "from_step").parse().unwrap();
        if let Ok(to) = detail_field(d, "to_step").parse::<u64>() {
            if to > from {
                ups += 1;
            } else if to < from {
                downs += 1;
            }
        }
    }
    assert!(
        ups >= 5 && downs >= 5,
        "policy settled: {ups} raises, {downs} lowers in steady state"
    );
}

/// Figure 8's claim, checked against the exported event trace: the
/// best policy "only select[s] 59Mhz or 206MHz clock settings and
/// changes clock settings frequently".
#[test]
fn best_policy_pegs_between_extremes_in_the_exported_trace() {
    let out = repro::trace_exp::export("fig8", 1, None).expect("known scenario");
    let mut switches = 0u32;
    let mut targets = std::collections::BTreeSet::new();
    for line in out.csv.lines().skip(1) {
        let (run, event, detail) = csv_row(line);
        assert_eq!(run, "mpeg");
        if event == "clock" {
            switches += 1;
            targets.insert(detail_field(detail, "to_khz").to_string());
        }
    }
    assert!(switches > 30, "changes clock frequently: {switches} in 30s");
    // After leaving the initial 206.4 MHz step the policy pegs: every
    // transition lands on an extreme of the SA-1100 table.
    let expected: std::collections::BTreeSet<String> =
        ["59000".to_string(), "206400".to_string()].into();
    assert_eq!(targets, expected, "peg-peg never picks a middle step");
}
