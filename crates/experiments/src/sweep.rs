//! The §5.3 "comprehensive study": AVG_N × speed-setting × thresholds
//! across the workloads.
//!
//! "We conducted a comprehensive study and varied the value of N from 0
//! (the PAST policy) to 10 with each combination of the speed-setting
//! policies." The conclusions this sweep must reproduce:
//!
//! - "Although a given set of parameters can result in optimal
//!   performance for a single application, these tuned parameters will
//!   probably not work for other applications": Pering's 70 %/50 %
//!   thresholds save substantial energy on a light workload (Web) but
//!   nothing on MPEG, whose ~75 % utilization at full speed sits above
//!   the 70 % upper bound, so the clock never comes down;
//! - slow-reacting combinations (large N, one-step-up from a pegged-down
//!   clock) miss deadlines;
//! - the AVG_N policy "can be easily designed to ensure that very few
//!   deadlines will be missed, but this results in minimal energy
//!   savings".

use core::fmt;

use engine::{BatchStats, Engine, EngineConfig, JobSpec, WorkloadSpec};
use obs::RunMetrics;
use policies::{Hysteresis, PolicyDesc, PredictorDesc, SpeedChange};
use workloads::Benchmark;

use crate::report;

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Workload.
    pub benchmark: Benchmark,
    /// AVG decay (0 = PAST).
    pub n: u32,
    /// Scale-up rule.
    pub up: SpeedChange,
    /// Scale-down rule.
    pub down: SpeedChange,
    /// Hysteresis band.
    pub thresholds: Hysteresis,
    /// Run energy, joules.
    pub energy_j: f64,
    /// Deadline misses beyond tolerance.
    pub misses: usize,
    /// Clock switches.
    pub switches: u64,
}

/// The sweep plus per-workload constant-top-speed baselines.
pub struct Sweep {
    /// All completed cells.
    pub cells: Vec<SweepCell>,
    /// `(benchmark, energy at constant 206.4 MHz)` baselines.
    pub baselines: Vec<(Benchmark, f64)>,
    /// Seconds simulated per cell.
    pub secs: u64,
    /// Failure reports for cells that produced no result. A sweep
    /// degrades cell-by-cell: one bad cell costs one row, not the
    /// grid. Empty on healthy runs.
    pub failed: Vec<String>,
}

/// Parameters of a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workloads to cover.
    pub benchmarks: Vec<Benchmark>,
    /// N values.
    pub ns: Vec<u32>,
    /// Speed rules (used for both up and down, crossed).
    pub rules: Vec<SpeedChange>,
    /// Threshold pairs.
    pub thresholds: Vec<Hysteresis>,
    /// Seconds per run.
    pub secs: u64,
}

impl SweepConfig {
    /// A small sweep for tests and quick runs.
    pub fn quick() -> Self {
        SweepConfig {
            benchmarks: vec![Benchmark::Mpeg, Benchmark::Web],
            ns: vec![0, 3, 9],
            rules: vec![SpeedChange::One, SpeedChange::Peg],
            thresholds: vec![Hysteresis::PERING, Hysteresis::BEST],
            secs: 15,
        }
    }

    /// The paper's full grid: N ∈ 0..=10, all rule pairs, both
    /// threshold sets, all four workloads.
    pub fn full() -> Self {
        SweepConfig {
            benchmarks: Benchmark::ALL.to_vec(),
            ns: (0..=10).collect(),
            rules: vec![SpeedChange::One, SpeedChange::Double, SpeedChange::Peg],
            thresholds: vec![Hysteresis::PERING, Hysteresis::BEST],
            secs: 30,
        }
    }
}

/// The grid's job specs: per-workload constant-top baselines first,
/// then every sweep cell, in deterministic grid order.
pub fn specs(config: &SweepConfig, seed: u64) -> Vec<JobSpec> {
    let mut specs: Vec<JobSpec> = config
        .benchmarks
        .iter()
        .map(|&b| {
            JobSpec::new(
                WorkloadSpec::Benchmark(b),
                PolicyDesc::constant_top(),
                config.secs,
                seed,
            )
        })
        .collect();
    for &b in &config.benchmarks {
        for &n in &config.ns {
            for &up in &config.rules {
                for &down in &config.rules {
                    for &th in &config.thresholds {
                        specs.push(JobSpec::new(
                            WorkloadSpec::Benchmark(b),
                            PolicyDesc::interval(PredictorDesc::AvgN(n), th, up, down),
                            config.secs,
                            seed,
                        ));
                    }
                }
            }
        }
    }
    specs
}

/// Runs the sweep on an explicit engine (the `repro` binary passes one
/// configured from `--jobs` / `--resume` / `--no-cache`).
pub fn run_with(eng: &Engine, config: &SweepConfig, seed: u64) -> (Sweep, BatchStats, RunMetrics) {
    let specs = {
        let _s = obs::span::enter("build_specs");
        specs(config, seed)
    };
    let outcome = eng.run_batch("sweep", &specs);

    let _collect_span = obs::span::enter("collect_results");
    let n_base = config.benchmarks.len();
    let mut failed: Vec<String> = Vec::new();
    let mut baselines: Vec<(Benchmark, f64)> = Vec::new();
    for (&b, r) in config.benchmarks.iter().zip(&outcome.results) {
        match r {
            Ok(r) => baselines.push((b, r.energy_j)),
            Err(f) => failed.push(format!("baseline for {}: {f}", b.name())),
        }
    }
    let mut results = outcome.results[n_base..].iter();
    let mut cells = Vec::with_capacity(specs.len() - n_base);
    let mut dropped_for_baseline = 0usize;
    for &b in &config.benchmarks {
        let has_baseline = baselines.iter().any(|(x, _)| *x == b);
        for &n in &config.ns {
            for &up in &config.rules {
                for &down in &config.rules {
                    for &th in &config.thresholds {
                        match results.next().expect("one result per cell") {
                            Ok(r) if has_baseline => cells.push(SweepCell {
                                benchmark: b,
                                n,
                                up,
                                down,
                                thresholds: th,
                                energy_j: r.energy_j,
                                misses: r.misses as usize,
                                switches: r.clock_switches,
                            }),
                            // Savings are relative to the baseline; a
                            // cell without one has no row.
                            Ok(_) => dropped_for_baseline += 1,
                            Err(f) => failed.push(f.to_string()),
                        }
                    }
                }
            }
        }
    }
    if dropped_for_baseline > 0 {
        failed.push(format!(
            "{dropped_for_baseline} completed cell(s) dropped because their \
             workload's baseline failed"
        ));
    }

    (
        Sweep {
            cells,
            baselines,
            secs: config.secs,
            failed,
        },
        outcome.stats,
        outcome.metrics,
    )
}

/// Runs the sweep in memory on all cores (no cache, no journal).
pub fn run(config: &SweepConfig, seed: u64) -> Sweep {
    run_with(&Engine::new(EngineConfig::in_memory()), config, seed).0
}

impl Sweep {
    /// Baseline energy for a benchmark.
    pub fn baseline(&self, b: Benchmark) -> f64 {
        self.baselines
            .iter()
            .find(|(x, _)| *x == b)
            .map(|(_, e)| *e)
            .expect("baseline present")
    }

    /// Relative energy saving of a cell vs the constant-top baseline.
    pub fn saving(&self, cell: &SweepCell) -> f64 {
        1.0 - cell.energy_j / self.baseline(cell.benchmark)
    }

    /// The best (largest-saving) zero-miss cell for a benchmark.
    pub fn best_safe(&self, b: Benchmark) -> Option<&SweepCell> {
        self.cells
            .iter()
            .filter(|c| c.benchmark == b && c.misses == 0)
            .min_by(|a, c| a.energy_j.total_cmp(&c.energy_j))
    }

    /// All cells as one CSV document — what [`save`](Self::save)
    /// writes. Public so tests can compare sweeps byte-for-byte
    /// without touching the results directory.
    pub fn csv(&self) -> String {
        report::csv_doc(
            &[
                "benchmark",
                "n",
                "up",
                "down",
                "up_thresh",
                "down_thresh",
                "energy_j",
                "saving",
                "misses",
                "switches",
            ],
            &self
                .cells
                .iter()
                .map(|c| {
                    vec![
                        c.benchmark.name().to_string(),
                        c.n.to_string(),
                        c.up.label().to_string(),
                        c.down.label().to_string(),
                        format!("{}", c.thresholds.up),
                        format!("{}", c.thresholds.down),
                        format!("{:.3}", c.energy_j),
                        format!("{:.4}", self.saving(c)),
                        c.misses.to_string(),
                        c.switches.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Writes all cells as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        report::save_csv("sweep", "policy_sweep", &self.csv()).map(|_| ())
    }
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Policy sweep: {} cells, {}s each (energy vs constant 206.4 MHz)",
            self.cells.len(),
            self.secs
        )?;
        let mut rows = Vec::new();
        for &(b, base) in &self.baselines {
            let best = self.best_safe(b);
            rows.push(vec![
                b.name().to_string(),
                format!("{base:.1} J"),
                match best {
                    Some(c) => format!(
                        "AVG_{} {}-{} {} -> {:.1} J ({:+.1}%)",
                        c.n,
                        c.up.label(),
                        c.down.label(),
                        c.thresholds,
                        c.energy_j,
                        -self.saving(c) * 100.0
                    ),
                    None => "no zero-miss cell".to_string(),
                },
            ]);
        }
        f.write_str(&report::render_table(
            &["workload", "constant-top energy", "best zero-miss policy"],
            &rows,
        ))?;
        if !self.failed.is_empty() {
            writeln!(
                f,
                "WARNING: {} cell(s) produced no result:",
                self.failed.len()
            )?;
            for msg in &self.failed {
                writeln!(f, "  {msg}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> &'static Sweep {
        use std::sync::OnceLock;
        static CELL: OnceLock<Sweep> = OnceLock::new();
        CELL.get_or_init(|| run(&SweepConfig::quick(), 1))
    }

    #[test]
    fn pering_thresholds_do_not_transfer_from_web_to_mpeg() {
        // "Although a given set of parameters can result in optimal
        // performance for a single application, these tuned parameters
        // will probably not work for other applications": the 70%/50%
        // bounds save a lot on the light Web workload but only scraps
        // on MPEG, whose utilization at full speed straddles the 70%
        // bound.
        let s = sweep();
        let best = |b: Benchmark| {
            s.cells
                .iter()
                .filter(|c| c.benchmark == b && c.thresholds == Hysteresis::PERING && c.misses == 0)
                .map(|c| s.saving(c))
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let web = best(Benchmark::Web);
        let mpeg = best(Benchmark::Mpeg);
        assert!(
            web > 0.10,
            "best zero-miss Web saving = {:.1}%",
            web * 100.0
        );
        assert!(
            mpeg < web / 2.0,
            "MPEG saving {:.1}% not far below Web {:.1}%",
            mpeg * 100.0,
            web * 100.0
        );
    }

    #[test]
    fn pering_thresholds_save_a_lot_on_web() {
        // The same parameters are great for a light workload — "tuned
        // parameters will probably not work for other applications".
        let s = sweep();
        let best_web = s
            .cells
            .iter()
            .filter(|c| {
                c.benchmark == Benchmark::Web && c.thresholds == Hysteresis::PERING && c.misses == 0
            })
            .map(|c| s.saving(c))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_web > 0.10,
            "best Web saving = {:.1}%",
            best_web * 100.0
        );
    }

    #[test]
    fn some_safe_policy_saves_energy_on_mpeg() {
        let s = sweep();
        let best = s.best_safe(Benchmark::Mpeg).expect("a zero-miss cell");
        assert!(
            s.saving(best) > 0.01,
            "best MPEG saving = {:.2}%",
            s.saving(best) * 100.0
        );
    }

    #[test]
    fn sluggish_scale_up_misses_deadlines_somewhere() {
        // One-step-up from a pegged-down clock with a laggy average is
        // the classic deadline killer.
        let s = sweep();
        let miss_total: usize = s
            .cells
            .iter()
            .filter(|c| {
                c.benchmark == Benchmark::Mpeg
                    && c.up == SpeedChange::One
                    && c.down == SpeedChange::Peg
                    && c.thresholds == Hysteresis::BEST
            })
            .map(|c| c.misses)
            .sum();
        assert!(miss_total > 0, "no misses from one-up/peg-down cells");
    }

    #[test]
    fn all_cells_present() {
        let s = sweep();
        let cfg = SweepConfig::quick();
        let expect = cfg.benchmarks.len()
            * cfg.ns.len()
            * cfg.rules.len()
            * cfg.rules.len()
            * cfg.thresholds.len();
        assert_eq!(s.cells.len(), expect);
    }
}
