//! Property-based tests of the workload infrastructure.

use proptest::prelude::*;

use itsy_hw::Work;
use sim_core::{SimDuration, SimTime};
use workloads::trace::generate_interactive_trace;
use workloads::{InputTrace, MpegConfig};

proptest! {
    /// The text trace format round-trips arbitrary traces.
    #[test]
    fn trace_text_round_trip(
        events in proptest::collection::vec(
            (0u64..1_000_000, 0.0f64..1e9, 0.0f64..1e6, 0.0f64..1e6, 0u64..1_000_000),
            0..50,
        ),
    ) {
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.0);
        let mut trace = InputTrace::new();
        for (at, cpu, refs, lines, resp) in sorted {
            trace.record(
                SimTime::from_micros(at),
                Work::new(cpu, refs, lines),
                SimDuration::from_micros(resp),
            );
        }
        let back = InputTrace::from_text(&trace.to_text()).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Generated interactive traces respect their gap and work bounds
    /// for arbitrary parameters.
    #[test]
    fn generated_trace_bounds(
        seed in any::<u64>(),
        gap_lo in 100u64..1_000,
        gap_extra in 1u64..2_000,
        span_secs in 1u64..20,
    ) {
        let mut rng = sim_core::Rng::new(seed);
        let trace = generate_interactive_trace(
            &mut rng,
            SimDuration::from_secs(span_secs),
            (gap_lo, gap_lo + gap_extra),
            (1.0, 5.0),
            0.3,
            SimDuration::from_millis(300),
        );
        prop_assert!(trace.span() <= SimDuration::from_secs(span_secs));
        let times: Vec<u64> = trace.events().iter().map(|e| e.at_us).collect();
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            prop_assert!(gap >= gap_lo * 1_000);
            prop_assert!(gap <= (gap_lo + gap_extra) * 1_000);
        }
    }

    /// MPEG frame demand stays positive and near its configured mean
    /// for any seed.
    #[test]
    fn mpeg_demand_sane_for_any_seed(seed in any::<u64>()) {
        use kernel_sim::{Kernel, KernelConfig, Machine};
        let mut k = Kernel::new(
            Machine::itsy(10, itsy_hw::DeviceSet::AV),
            KernelConfig {
                duration: SimDuration::from_secs(3),
                record_power: false,
                log_sched: false,
                ..KernelConfig::default()
            },
        );
        for t in workloads::MpegWorkload::new(MpegConfig::default(), seed).into_tasks() {
            k.spawn(t);
        }
        let r = k.run();
        let u = r.mean_utilization();
        prop_assert!((0.55..=0.95).contains(&u), "seed {seed}: utilization {u}");
        prop_assert_eq!(r.time_accounted(), SimDuration::from_secs(3));
    }
}

/// Distinct benchmarks produce distinct utilization signatures.
#[test]
fn benchmarks_are_distinguishable() {
    use kernel_sim::{Kernel, KernelConfig, Machine};
    use workloads::Benchmark;
    // Signature: (mean utilization, fraction of saturated quanta).
    let mut sigs = Vec::new();
    for b in Benchmark::ALL {
        let mut k = Kernel::new(
            Machine::itsy(10, b.devices()),
            KernelConfig {
                duration: SimDuration::from_secs(60),
                record_power: false,
                log_sched: false,
                ..KernelConfig::default()
            },
        );
        b.spawn_into(&mut k, 5);
        let r = k.run();
        let vals = r.utilization.values();
        let saturated = vals.iter().filter(|&&u| u > 0.95).count() as f64 / vals.len() as f64;
        sigs.push((b.name(), r.mean_utilization(), saturated));
    }
    for i in 0..sigs.len() {
        for j in i + 1..sigs.len() {
            let mean_gap = (sigs[i].1 - sigs[j].1).abs();
            let sat_gap = (sigs[i].2 - sigs[j].2).abs();
            assert!(
                mean_gap > 0.05 || sat_gap > 0.05,
                "{} and {} look identical ({:?})",
                sigs[i].0,
                sigs[j].0,
                sigs
            );
        }
    }
}

proptest! {
    /// Job sets derived from any recorded work trace are feasible on
    /// the Itsy: per-interval work is at most one full-speed interval,
    /// so no critical interval can demand more than the top clock, and
    /// the step-quantized optimum schedules them without deadline
    /// misses.
    #[test]
    fn derived_job_sets_fit_the_itsy_steps(
        work in proptest::collection::vec(0.0f64..=1.0, 1..200),
        chunk in 1usize..20,
        slack in 0.0f64..30.0,
    ) {
        use policies::scaling::{edf_feasible, itsy_step_speeds, yds, yds_on_steps, Job, JobSet};

        let jobs = workloads::jobs::from_work_trace(&work, chunk, slack);
        let set = JobSet::new(
            jobs.iter()
                .map(|j| Job::new(j.release, j.deadline, j.work))
                .collect(),
        );
        let total: f64 = jobs.iter().map(|j| j.work).sum();
        prop_assert!((set.total_work() - total).abs() < 1e-9, "derivation conserves work");
        let opt = yds(&set);
        prop_assert!(
            opt.max_speed <= 1.0 + 1e-9,
            "derived sets never need more than the top clock: {}",
            opt.max_speed
        );
        let q = yds_on_steps(&set, &itsy_step_speeds());
        prop_assert!(q.feasible);
        prop_assert!(edf_feasible(&set, &q.segments));
    }
}
