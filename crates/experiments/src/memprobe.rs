//! An lmbench-style memory-latency probe, run *inside* the simulation.
//!
//! Table 3 was measured on the Itsy by timing loops that read
//! individual words and full cache lines. This experiment does the
//! same against the simulated machine: a task issues a known number of
//! memory references, the kernel reports the busy time, and dividing by
//! the reference count and the clock period recovers the per-reference
//! cycle cost — which must round back to the Table 3 entries. It
//! end-to-end validates the work-execution path (work splitting across
//! quanta, rounding, accounting) rather than just the lookup table.

use core::fmt;

use itsy_hw::{ClockTable, DeviceSet, MemoryTiming, Work};
use kernel_sim::{task::FnBehavior, Kernel, KernelConfig, Machine, TaskAction};
use sim_core::SimDuration;

use crate::report;

/// Probe outcome for one clock step.
#[derive(Debug, Clone, Copy)]
pub struct ProbePoint {
    /// Clock step.
    pub step: usize,
    /// Frequency, MHz.
    pub mhz: f64,
    /// Measured cycles per individual word read.
    pub word_cycles: f64,
    /// Measured cycles per cache-line read.
    pub line_cycles: f64,
    /// The Table 3 ground truth.
    pub expect: (u32, u32),
}

/// The probe sweep.
pub struct MemProbe {
    /// One point per clock step.
    pub points: Vec<ProbePoint>,
}

/// References issued per probe run (enough to amortise rounding).
pub const REFS: f64 = 2_000_000.0;

fn measure(step: usize, work: Work) -> f64 {
    let mut kernel = Kernel::new(
        Machine::itsy(step, DeviceSet::NONE),
        KernelConfig {
            duration: SimDuration::from_secs(60),
            record_power: false,
            log_sched: false,
            ..KernelConfig::default()
        },
    );
    let mut issued = false;
    kernel.spawn(Box::new(FnBehavior::new("memprobe", move |_ctx| {
        if issued {
            TaskAction::Exit
        } else {
            issued = true;
            TaskAction::Compute(work)
        }
    })));
    let r = kernel.run();
    assert!(
        r.busy < SimDuration::from_secs(60),
        "probe did not finish; raise the run length"
    );
    r.busy.as_secs_f64()
}

/// Probes every clock step.
pub fn run() -> MemProbe {
    let table = ClockTable::sa1100();
    let truth = MemoryTiming::sa1100_edo();
    let points = (0..table.len())
        .map(|step| {
            let hz = table.freq(step).as_hz() as f64;
            // Word-read loop: REFS individual references, no other work.
            let t_words = measure(step, Work::new(0.0, REFS, 0.0));
            // Cache-line loop.
            let t_lines = measure(step, Work::new(0.0, 0.0, REFS));
            ProbePoint {
                step,
                mhz: table.freq(step).as_mhz_f64(),
                word_cycles: t_words * hz / REFS,
                line_cycles: t_lines * hz / REFS,
                expect: (truth.word_cycles(step), truth.line_cycles(step)),
            }
        })
        .collect();
    MemProbe { points }
}

impl MemProbe {
    /// The largest relative error of any measurement vs Table 3.
    pub fn worst_error(&self) -> f64 {
        self.points
            .iter()
            .flat_map(|p| {
                [
                    (p.word_cycles - p.expect.0 as f64).abs() / p.expect.0 as f64,
                    (p.line_cycles - p.expect.1 as f64).abs() / p.expect.1 as f64,
                ]
            })
            .fold(0.0, f64::max)
    }

    /// Writes the probe results as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &[
                "step",
                "mhz",
                "word_cycles",
                "line_cycles",
                "expect_word",
                "expect_line",
            ],
            &self
                .points
                .iter()
                .map(|p| {
                    vec![
                        p.step.to_string(),
                        format!("{}", p.mhz),
                        format!("{:.3}", p.word_cycles),
                        format!("{:.3}", p.line_cycles),
                        p.expect.0.to_string(),
                        p.expect.1.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("memprobe", "measured_cycles", &doc).map(|_| ())
    }
}

impl fmt::Display for MemProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Memory probe: measured access cycles vs Table 3 ({} refs per point)",
            REFS as u64
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}", p.mhz),
                    format!("{:.2} (expect {})", p.word_cycles, p.expect.0),
                    format!("{:.2} (expect {})", p.line_cycles, p.expect.1),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &["MHz", "cycles/word", "cycles/line"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_recovers_table3_within_a_cycle_fraction() {
        let p = run();
        assert!(
            p.worst_error() < 0.01,
            "worst relative error = {:.4}",
            p.worst_error()
        );
        for point in &p.points {
            assert!(
                (point.word_cycles - point.expect.0 as f64).abs() < 0.2,
                "step {}: {} vs {}",
                point.step,
                point.word_cycles,
                point.expect.0
            );
        }
    }

    #[test]
    fn probe_sees_the_162_to_177_jump() {
        let p = run();
        let jump = p.points[8].word_cycles - p.points[7].word_cycles;
        assert!((jump - 3.0).abs() < 0.1, "jump = {jump}");
    }
}
