//! The SA-1100 clock-step table and supply voltages.
//!
//! The SA-1100 core clock is an integer multiple of a 14.7456 MHz crystal
//! (steps 4× through 14×), giving the eleven frequencies the paper lists
//! in Table 3: 59.0, 73.7, 88.5, 103.2, 118.0, 132.7, 147.5, 162.2,
//! 176.9, 191.7 and 206.4 MHz. We store the same rounded kHz values the
//! paper reports.

use core::fmt;

use serde::{Deserialize, Serialize};
use sim_core::{Frequency, Voltage};

/// Stock core supply of the Itsy v1.5.
pub const V_HIGH: Voltage = Voltage::from_mv(1_500);

/// The below-spec supply the authors' modified units could select.
/// Safe only at moderate clock speeds; reduces core power by ~15 %.
pub const V_LOW: Voltage = Voltage::from_mv(1_230);

/// Index into a [`ClockTable`]. Step 0 is the slowest clock.
pub type StepIndex = usize;

/// An ordered table of discrete clock steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockTable {
    steps_khz: Vec<u32>,
}

impl ClockTable {
    /// The SA-1100 table used throughout the paper (11 steps,
    /// 59.0–206.4 MHz).
    ///
    /// # Examples
    ///
    /// ```
    /// use itsy_hw::ClockTable;
    ///
    /// let table = ClockTable::sa1100();
    /// assert_eq!(table.len(), 11);
    /// assert_eq!(table.freq(table.fastest()).as_khz(), 206_400);
    /// ```
    pub fn sa1100() -> Self {
        ClockTable {
            steps_khz: vec![
                59_000, 73_700, 88_500, 103_200, 118_000, 132_700, 147_500, 162_200, 176_900,
                191_700, 206_400,
            ],
        }
    }

    /// Builds a table from arbitrary step frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, contains zero, or is not strictly
    /// increasing.
    pub fn from_khz(steps: &[u32]) -> Self {
        assert!(!steps.is_empty(), "clock table must have at least one step");
        assert!(steps[0] > 0, "clock step of 0 kHz");
        assert!(
            steps.windows(2).all(|w| w[0] < w[1]),
            "clock steps must be strictly increasing"
        );
        ClockTable {
            steps_khz: steps.to_vec(),
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps_khz.len()
    }

    /// Always false; a table has at least one step.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The frequency of step `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn freq(&self, idx: StepIndex) -> Frequency {
        Frequency::from_khz(self.steps_khz[idx])
    }

    /// Index of the slowest step (always 0).
    pub fn slowest(&self) -> StepIndex {
        0
    }

    /// Index of the fastest step.
    pub fn fastest(&self) -> StepIndex {
        self.steps_khz.len() - 1
    }

    /// Clamps an index into the valid range.
    pub fn clamp(&self, idx: isize) -> StepIndex {
        idx.clamp(0, self.fastest() as isize) as StepIndex
    }

    /// The smallest step whose frequency is at least `f`, or the fastest
    /// step if no step is fast enough.
    ///
    /// This is the quantisation rule of the Figure 5 "simple averaging"
    /// policy: predict required MHz, then round up to a real step.
    pub fn step_at_least(&self, f: Frequency) -> StepIndex {
        self.steps_khz
            .iter()
            .position(|&khz| khz >= f.as_khz())
            .unwrap_or(self.fastest())
    }

    /// Iterates over `(index, frequency)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StepIndex, Frequency)> + '_ {
        self.steps_khz
            .iter()
            .enumerate()
            .map(|(i, &khz)| (i, Frequency::from_khz(khz)))
    }
}

impl fmt::Display for ClockTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mhz: Vec<String> = self
            .steps_khz
            .iter()
            .map(|&k| format!("{:.1}", k as f64 / 1000.0))
            .collect();
        write!(f, "[{}] MHz", mhz.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sa1100_table_matches_paper() {
        let t = ClockTable::sa1100();
        assert_eq!(t.len(), 11);
        assert_eq!(t.freq(0), Frequency::from_khz(59_000));
        assert_eq!(t.freq(5), Frequency::from_khz(132_700));
        assert_eq!(t.freq(10), Frequency::from_khz(206_400));
        assert_eq!(t.slowest(), 0);
        assert_eq!(t.fastest(), 10);
    }

    #[test]
    fn sa1100_steps_are_crystal_multiples() {
        // Each step is ~14.7456 MHz apart (the table stores the rounded
        // values the paper reports, so allow 100 kHz of rounding).
        let t = ClockTable::sa1100();
        for w in (0..t.len()).collect::<Vec<_>>().windows(2) {
            let delta = t.freq(w[1]).as_khz() as i64 - t.freq(w[0]).as_khz() as i64;
            assert!((delta - 14_746).abs() < 100, "delta = {delta}");
        }
    }

    #[test]
    fn step_at_least_rounds_up() {
        let t = ClockTable::sa1100();
        // 154.5 MHz (the Figure 5 example) rounds up to 162.2 MHz.
        assert_eq!(t.step_at_least(Frequency::from_khz(154_500)), 7);
        assert_eq!(t.freq(7), Frequency::from_khz(162_200));
        // 103.0 MHz rounds up to 103.2 MHz.
        assert_eq!(t.step_at_least(Frequency::from_khz(103_000)), 3);
        // Below the slowest step: step 0.
        assert_eq!(t.step_at_least(Frequency::from_khz(1)), 0);
        // Above the fastest step: pegged at the fastest.
        assert_eq!(t.step_at_least(Frequency::from_khz(999_999)), 10);
    }

    #[test]
    fn clamp_bounds() {
        let t = ClockTable::sa1100();
        assert_eq!(t.clamp(-3), 0);
        assert_eq!(t.clamp(4), 4);
        assert_eq!(t.clamp(25), 10);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_table_rejected() {
        let _ = ClockTable::from_khz(&[100, 50]);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_table_rejected() {
        let _ = ClockTable::from_khz(&[]);
    }

    #[test]
    fn display_lists_mhz() {
        let t = ClockTable::from_khz(&[59_000, 206_400]);
        assert_eq!(format!("{t}"), "[59.0, 206.4] MHz");
    }
}
