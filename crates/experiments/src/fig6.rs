//! Figure 6: the Fourier transform of a decaying exponential.
//!
//! `|X(ω)| = 1/√(ω² + α²)`: the AVG_N smoothing kernel "attenuates,
//! but does not eliminate, higher frequency elements. If the input
//! signal oscillates, the output will oscillate as well."

use core::fmt;

use analysis::{avg_n_alpha, decaying_exp_spectrum};
use sim_core::{SimTime, TimeSeries};

use crate::report;

/// The spectrum curve plus its interpretation for a given AVG_N.
pub struct Fig6 {
    /// `(ω, |X(ω)|)` over the plotted range, stored with ω·1000 as the
    /// series "time" axis (ω is dimensionless in the figure).
    pub spectrum: TimeSeries,
    /// The decay rate plotted.
    pub alpha: f64,
    /// The N whose 10 ms-interval kernel this α corresponds to.
    pub n: u32,
}

/// Computes the spectrum for the kernel of `AVG_n` at 10 ms intervals,
/// normalised the way the figure plots it (ω in kernel-decay units).
pub fn run(n: u32) -> Fig6 {
    // Express alpha per-interval (dt = 1 interval), matching the
    // figure's dimensionless axis (0..15).
    let alpha = avg_n_alpha(n, 1.0);
    let mut spectrum = TimeSeries::new(format!("spectrum_avg{n}"));
    let mut omega = 0.0;
    while omega <= 15.0 {
        spectrum.push(
            SimTime::from_micros((omega * 1000.0) as u64),
            decaying_exp_spectrum(alpha, omega),
        );
        omega += 0.05;
    }
    Fig6 { spectrum, alpha, n }
}

impl Fig6 {
    /// Attenuation (relative to DC) at frequency `omega`.
    pub fn relative_attenuation(&self, omega: f64) -> f64 {
        decaying_exp_spectrum(self.alpha, omega) / decaying_exp_spectrum(self.alpha, 0.0)
    }

    /// Writes the curve as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        report::save_series("fig6", &[&self.spectrum]).map(|_| ())
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: |X(w)| = 1/sqrt(w^2 + a^2) for AVG_{} (a = {:.3}/interval)",
            self.n, self.alpha
        )?;
        let rows: Vec<Vec<String>> = [0.0, 1.0, 2.0, 5.0, 10.0, 15.0]
            .iter()
            .map(|&w| {
                vec![
                    format!("{w:.1}"),
                    format!("{:.4}", decaying_exp_spectrum(self.alpha, w)),
                    format!("{:.1}%", self.relative_attenuation(w) * 100.0),
                ]
            })
            .collect();
        f.write_str(&report::render_table(&["w", "|X(w)|", "vs DC"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_shape_matches_figure() {
        let fig = run(3);
        let vals = fig.spectrum.values();
        // Monotone decreasing, strictly positive everywhere.
        for w in vals.windows(2) {
            assert!(w[1] < w[0]);
            assert!(w[1] > 0.0);
        }
        // DC value is 1/alpha.
        assert!((vals[0] - 1.0 / fig.alpha).abs() < 1e-9);
    }

    #[test]
    fn high_frequencies_survive() {
        // The crux: even at the top of the plotted range the response
        // is meaningfully non-zero, so oscillating inputs produce
        // oscillating outputs.
        let fig = run(3);
        assert!(fig.relative_attenuation(15.0) > 0.01);
    }

    #[test]
    fn larger_n_means_smaller_alpha_and_sharper_rolloff() {
        let f3 = run(3);
        let f9 = run(9);
        assert!(f9.alpha < f3.alpha);
        assert!(f9.relative_attenuation(5.0) < f3.relative_attenuation(5.0));
    }
}
