//! Flat per-run accounting state for simulation hot loops.
//!
//! The kernel simulator integrates time and energy over hundreds of
//! thousands of segments per second of batch work. This module keeps
//! that accounting in plain flat fields — no maps, no per-segment
//! allocation — and memoizes the pure [`PowerModel::core_power`]
//! function so uniform spans (same mode, clock and voltage for many
//! quanta) pay for one evaluation instead of one per segment.
//!
//! Nothing here changes results: [`RunTotals`] adds are the same
//! integer/float additions the run loop would perform inline, and
//! [`CorePowerCache`] returns the bit-identical [`Power`] that a fresh
//! `core_power` call would (the model's parameters are constant for the
//! duration of a run).

use sim_core::{Energy, Frequency, KahanSum, Power, SimDuration, Voltage};

use crate::cpu::CpuMode;
use crate::power::PowerModel;

/// Flat time/energy totals for one simulation run.
///
/// Field order mirrors the report the kernel ultimately builds; all
/// updates are plain `+=` so delivering a whole uniform span at once
/// (`n` quanta as `n × quantum`) is exactly equal to delivering its
/// quanta one at a time — integer microsecond arithmetic is associative.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTotals {
    /// Time a task (or a mid-switch stall) held the core.
    pub busy: SimDuration,
    /// Time the core napped with nothing runnable.
    pub idle: SimDuration,
    /// Portion of `busy` spent stalled in clock/voltage switches.
    pub stalled: SimDuration,
    /// Portion of `busy` spent in spin-waits.
    pub spun: SimDuration,
    /// Total system energy.
    pub energy: Energy,
    /// Core-rail energy (the paper's processor-only measurements).
    pub core_energy: Energy,
}

impl RunTotals {
    /// Fresh zeroed totals.
    pub fn new() -> Self {
        RunTotals::default()
    }
}

/// Compensated system + core-rail energy accumulator for summary runs.
///
/// The reference loop accumulates energy as one plain `+=` per segment,
/// so its total carries O(n·ε) rounding. A summary run instead adds one
/// closed-form `P·span` product per uniform span, and keeps both rails
/// in Neumaier-compensated sums ([`KahanSum`]) so the final total is
/// within 2ε of the correctly-rounded sum of its span terms regardless
/// of run length. For a constant-power span the single product *is* the
/// correctly-rounded span energy; the only divergence from the
/// reference total is the reference's own accumulation error.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanEnergy {
    energy: KahanSum,
    core: KahanSum,
}

impl SpanEnergy {
    /// Zeroed accumulator.
    pub fn new() -> Self {
        SpanEnergy::default()
    }

    /// Adds `span` at constant system power `p` / core power `core_p`.
    #[inline]
    pub fn add(&mut self, p: Power, core_p: Power, span: SimDuration) {
        self.energy.add(p.over(span).as_joules());
        self.core.add(core_p.over(span).as_joules());
    }

    /// Compensated system-energy total.
    pub fn energy(&self) -> Energy {
        Energy::from_joules(self.energy.value())
    }

    /// Compensated core-rail total.
    pub fn core_energy(&self) -> Energy {
        Energy::from_joules(self.core.value())
    }

    /// Writes both totals into `totals`, replacing whatever partial
    /// sums it held (summary runs route *all* energy through `self`).
    pub fn commit(&self, totals: &mut RunTotals) {
        totals.energy = self.energy();
        totals.core_energy = self.core_energy();
    }
}

/// Per-mode memo for [`PowerModel::core_power`].
///
/// `core_power` is pure in `(mode, frequency, voltage)` for a fixed
/// parameter set, and run loops query it with the same arguments for
/// long stretches (the machine state only changes at policy decisions
/// and schedule changes). One entry per [`CpuMode`] keeps the common
/// alternation — `Run` work segments interleaved with `Nap` idle
/// segments at an unchanged clock — fully cached. Each entry is keyed
/// on the exact `(frequency, voltage)` pair, so a hit returns the
/// bit-identical `Power` a recomputation would produce.
///
/// The model's parameters must not change between [`CorePowerCache::get`]
/// calls — true during a simulation run, where the power model is fixed
/// at machine construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorePowerCache {
    entries: [Option<(u32, u32, Power)>; 3],
}

impl CorePowerCache {
    /// An empty cache.
    pub fn new() -> Self {
        CorePowerCache::default()
    }

    /// The core power for `(mode, f, v)`, computed through `model` on a
    /// miss and replayed from the memo on a hit.
    #[inline]
    pub fn get(&mut self, model: &PowerModel, mode: CpuMode, f: Frequency, v: Voltage) -> Power {
        let (khz, mv) = (f.as_khz(), v.as_mv());
        let slot = &mut self.entries[mode as usize];
        if let Some((k, m, p)) = *slot {
            if k == khz && m == mv {
                return p;
            }
        }
        let p = model.core_power(mode, f, v);
        *slot = Some((khz, mv, p));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ClockTable, V_HIGH, V_LOW};

    #[test]
    fn totals_accumulate_flat() {
        let mut t = RunTotals::new();
        t.busy += SimDuration::from_millis(10);
        t.busy += SimDuration::from_millis(10);
        t.spun += SimDuration::from_millis(10);
        t.idle += SimDuration::from_millis(5);
        assert_eq!(t.busy.as_micros(), 20_000);
        assert_eq!(t.spun.as_micros(), 10_000);
        assert_eq!(t.idle.as_micros(), 5_000);
        assert_eq!(t.stalled, SimDuration::ZERO);
    }

    #[test]
    fn span_delivery_equals_per_quantum_delivery() {
        // n adds of q vs one add of n*q: exact for integer microseconds.
        let q = SimDuration::from_millis(10);
        let mut tick_by_tick = RunTotals::new();
        for _ in 0..1_000 {
            tick_by_tick.busy += q;
        }
        let mut spanned = RunTotals::new();
        spanned.busy += SimDuration::from_micros(1_000 * q.as_micros());
        assert_eq!(tick_by_tick.busy, spanned.busy);
    }

    #[test]
    fn span_energy_is_exact_for_constant_power_spans() {
        // One closed-form product per span: for a constant-power run
        // the committed total is the correctly-rounded P·T.
        let p = Power::from_watts(0.33);
        let core = Power::from_watts(0.21);
        let span = SimDuration::from_millis(250);
        let mut acc = SpanEnergy::new();
        acc.add(p, core, span);
        assert_eq!(acc.energy().as_joules(), p.over(span).as_joules());
        assert_eq!(acc.core_energy().as_joules(), core.over(span).as_joules());
    }

    #[test]
    fn span_energy_commit_replaces_totals() {
        let mut acc = SpanEnergy::new();
        acc.add(
            Power::from_watts(1.0),
            Power::from_watts(0.5),
            SimDuration::from_secs(2),
        );
        let mut totals = RunTotals::new();
        totals.energy += Energy::from_joules(123.0); // stale partial sum
        acc.commit(&mut totals);
        assert_eq!(totals.energy.as_joules(), 2.0);
        assert_eq!(totals.core_energy.as_joules(), 1.0);
    }

    #[test]
    fn span_energy_stays_within_2eps_of_exact_sum() {
        // Many uneven spans: the compensated total must track the
        // mathematically exact sum to within 2ε relative error, far
        // tighter than naive accumulation guarantees at this length.
        let mut acc = SpanEnergy::new();
        let mut exact = 0.0f64; // accumulate in pairs to stay well-conditioned
        let mut terms = Vec::new();
        for i in 0..100_000u64 {
            let w = 0.1 + (i % 17) as f64 * 0.013;
            let us = 1 + (i % 29);
            let p = Power::from_watts(w);
            let d = SimDuration::from_micros(us);
            acc.add(p, p, d);
            terms.push(p.over(d).as_joules());
        }
        // Pairwise summation as the "exact" oracle (error O(log n · ε)).
        fn pairwise(xs: &[f64]) -> f64 {
            match xs.len() {
                0 => 0.0,
                1 => xs[0],
                n => pairwise(&xs[..n / 2]) + pairwise(&xs[n / 2..]),
            }
        }
        exact += pairwise(&terms);
        let got = acc.energy().as_joules();
        assert!(
            (got - exact).abs() <= 4.0 * f64::EPSILON * exact.abs(),
            "compensated sum drifted: got {got}, exact {exact}"
        );
    }

    #[test]
    fn power_cache_is_bit_identical_to_model() {
        let model = PowerModel::default();
        let table = ClockTable::sa1100();
        let mut cache = CorePowerCache::new();
        for &mode in &[CpuMode::Run, CpuMode::Nap, CpuMode::Stalled] {
            for step in 0..table.len() {
                for &v in &[V_HIGH, V_LOW] {
                    let f = table.freq(step);
                    let direct = model.core_power(mode, f, v);
                    // Miss then hit: both must equal the direct call.
                    assert_eq!(cache.get(&model, mode, f, v).as_watts(), direct.as_watts());
                    assert_eq!(cache.get(&model, mode, f, v).as_watts(), direct.as_watts());
                }
            }
        }
    }

    #[test]
    fn cache_distinguishes_modes_at_equal_frequency() {
        let model = PowerModel::default();
        let table = ClockTable::sa1100();
        let mut cache = CorePowerCache::new();
        let f = table.freq(10);
        let run = cache.get(&model, CpuMode::Run, f, V_HIGH);
        let nap = cache.get(&model, CpuMode::Nap, f, V_HIGH);
        assert!(nap.as_watts() < run.as_watts());
        // Back to Run: recomputed, not served from the stale Nap entry.
        assert_eq!(
            cache.get(&model, CpuMode::Run, f, V_HIGH).as_watts(),
            run.as_watts()
        );
    }
}
