//! Two-channel acquisition: the paper's actual measurement circuit.
//!
//! §4.1, footnote 1: "The supply current was measured by measuring the
//! voltage drop across a high precision small-valued resistor of a
//! known resistance (0.02 Ω). The current was then calculated by
//! dividing the voltage by the resistance." The DAQ digitised *two*
//! signals — the supply voltage and the sense-resistor drop — and the
//! analysis multiplied them into power.
//!
//! [`TwoChannelDaq`] reproduces that chain: the simulator's power trace
//! is converted to a current draw at the supply voltage, both channels
//! are sampled with independent noise and ADC quantisation, and
//! [`TwoChannelCapture::power_profile`] reconstructs power exactly the
//! way the paper's host software did.

use sim_core::{Rng, SimDuration, SimTime, TimeSeries};

use crate::profile::PowerProfile;
use crate::sampler::DaqConfig;

/// The measurement circuit and channel configuration.
#[derive(Debug, Clone)]
pub struct TwoChannelDaq {
    /// Sense resistor, ohms (0.02 Ω on the instrumented Itsys).
    pub sense_ohms: f64,
    /// Nominal supply voltage, volts (the Itsy's bench supply: 3.1 V).
    pub supply_volts: f64,
    /// Full-scale reading of the sense channel, volts. The drop is
    /// tens of millivolts, so the channel uses a small range.
    pub sense_full_scale_v: f64,
    /// Shared rate/resolution/noise configuration.
    pub config: DaqConfig,
}

impl Default for TwoChannelDaq {
    fn default() -> Self {
        TwoChannelDaq {
            sense_ohms: 0.02,
            supply_volts: 3.1,
            sense_full_scale_v: 0.1,
            config: DaqConfig::default(),
        }
    }
}

/// Raw two-channel samples.
#[derive(Debug, Clone)]
pub struct TwoChannelCapture {
    /// Supply-voltage samples, volts.
    pub supply_v: Vec<f64>,
    /// Sense-drop samples, volts.
    pub sense_v: Vec<f64>,
    /// Sense resistance used, ohms.
    pub sense_ohms: f64,
    dt: SimDuration,
}

impl TwoChannelDaq {
    /// Creates the circuit model.
    pub fn new(config: DaqConfig) -> Self {
        TwoChannelDaq {
            config,
            ..TwoChannelDaq::default()
        }
    }

    fn quantise(v: f64, full_scale: f64, bits: u8) -> f64 {
        let lsb = full_scale / ((1u64 << bits) - 1) as f64;
        (v.clamp(0.0, full_scale) / lsb).round() * lsb
    }

    /// Captures `[trigger, until)` of the simulator's power trace as the
    /// DAQ saw it: per-sample current through the sense resistor and
    /// the (slightly sagging) supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes `trigger`.
    pub fn capture(
        &self,
        power_trace: &TimeSeries,
        trigger: SimTime,
        until: SimTime,
        rng: &mut Rng,
    ) -> TwoChannelCapture {
        assert!(until >= trigger, "capture window inverted");
        let dt = SimDuration::from_micros(1_000_000 / self.config.sample_hz as u64);
        let n = until.duration_since(trigger).as_micros() / dt.as_micros();
        let points: Vec<(SimTime, f64)> = power_trace.iter().collect();
        let mut cursor = 0usize;
        let mut supply = Vec::with_capacity(n as usize);
        let mut sense = Vec::with_capacity(n as usize);
        for i in 0..n {
            let t = trigger + SimDuration::from_micros(i * dt.as_micros());
            while cursor + 1 < points.len() && points[cursor + 1].0 <= t {
                cursor += 1;
            }
            let true_w = if points.is_empty() || points[0].0 > t {
                0.0
            } else {
                points[cursor].1
            };
            // Current at the supply; the rail sags by I*R across the
            // sense resistor (the Itsy sees supply - drop).
            let current = true_w / self.supply_volts;
            let drop = current * self.sense_ohms;
            let noisy_supply =
                self.supply_volts * (1.0 + self.config.noise_rel * 0.1 * rng.gaussian());
            let noisy_drop = drop * (1.0 + self.config.noise_rel * rng.gaussian());
            supply.push(Self::quantise(noisy_supply, 5.0, self.config.adc_bits));
            sense.push(Self::quantise(
                noisy_drop,
                self.sense_full_scale_v,
                self.config.adc_bits,
            ));
        }
        TwoChannelCapture {
            supply_v: supply,
            sense_v: sense,
            sense_ohms: self.sense_ohms,
            dt,
        }
    }
}

impl TwoChannelCapture {
    /// Number of samples per channel.
    pub fn len(&self) -> usize {
        self.sense_v.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.sense_v.is_empty()
    }

    /// Per-sample current, amps (`V_drop / R`).
    pub fn current_a(&self) -> Vec<f64> {
        self.sense_v.iter().map(|v| v / self.sense_ohms).collect()
    }

    /// Reconstructs the power profile the way the paper's host software
    /// did: `P_i = V_i · I_i`.
    pub fn power_profile(&self) -> PowerProfile {
        let samples = self
            .supply_v
            .iter()
            .zip(&self.sense_v)
            .map(|(&v, &drop)| v * (drop / self.sense_ohms))
            .collect();
        PowerProfile::new(samples, self.dt)
    }

    /// Energy burnt in the sense resistor itself (`I²R`) over the
    /// capture — the instrumentation overhead, which must be negligible.
    pub fn sense_resistor_energy_j(&self) -> f64 {
        let dt_s = self.dt.as_secs_f64();
        self.current_a()
            .iter()
            .map(|i| i * i * self.sense_ohms * dt_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_trace() -> TimeSeries {
        let mut t = TimeSeries::new("watts");
        t.push(SimTime::ZERO, 1.5);
        t.push(SimTime::from_secs(1), 1.5);
        t
    }

    fn noiseless() -> TwoChannelDaq {
        TwoChannelDaq::new(DaqConfig {
            noise_rel: 0.0,
            ..DaqConfig::default()
        })
    }

    #[test]
    fn reconstruction_matches_true_power() {
        let mut rng = Rng::new(1);
        let cap = noiseless().capture(
            &step_trace(),
            SimTime::ZERO,
            SimTime::from_secs(1),
            &mut rng,
        );
        assert_eq!(cap.len(), 5_000);
        let p = cap.power_profile();
        assert!(
            (p.energy().as_joules() - 1.5).abs() < 0.01,
            "energy = {}",
            p.energy().as_joules()
        );
    }

    #[test]
    fn current_is_power_over_voltage() {
        let mut rng = Rng::new(1);
        let cap = noiseless().capture(
            &step_trace(),
            SimTime::ZERO,
            SimTime::from_secs(1),
            &mut rng,
        );
        let i = cap.current_a();
        let expect = 1.5 / 3.1;
        assert!((i[100] - expect).abs() < 0.001, "I = {}", i[100]);
    }

    #[test]
    fn sense_drop_is_tens_of_millivolts() {
        // 1.5 W at 3.1 V is ~0.48 A -> ~9.7 mV across 0.02 ohms: well
        // inside the 100 mV channel.
        let mut rng = Rng::new(1);
        let cap = noiseless().capture(
            &step_trace(),
            SimTime::ZERO,
            SimTime::from_secs(1),
            &mut rng,
        );
        let drop = cap.sense_v[100];
        assert!((0.005..0.02).contains(&drop), "drop = {drop}V");
    }

    #[test]
    fn instrumentation_overhead_is_negligible() {
        let mut rng = Rng::new(1);
        let cap = noiseless().capture(
            &step_trace(),
            SimTime::ZERO,
            SimTime::from_secs(1),
            &mut rng,
        );
        let overhead = cap.sense_resistor_energy_j();
        let total = cap.power_profile().energy().as_joules();
        assert!(
            overhead / total < 0.005,
            "sense resistor burnt {:.2}% of the energy",
            overhead / total * 100.0
        );
    }

    #[test]
    fn two_channel_agrees_with_single_channel_daq() {
        // The one-channel shortcut (crate::Daq) and the full circuit
        // must report the same energy within noise.
        let trace = step_trace();
        let mut rng1 = Rng::new(5);
        let mut rng2 = Rng::new(6);
        let one = crate::Daq::default()
            .capture(&trace, SimTime::ZERO, SimTime::from_secs(1), &mut rng1)
            .energy()
            .as_joules();
        let two = TwoChannelDaq::default()
            .capture(&trace, SimTime::ZERO, SimTime::from_secs(1), &mut rng2)
            .power_profile()
            .energy()
            .as_joules();
        assert!((one - two).abs() / one < 0.01, "one {one} vs two {two}");
    }

    #[test]
    fn noise_keeps_repeatability_within_the_papers_bound() {
        let trace = step_trace();
        let daq = TwoChannelDaq::default();
        let mut stats = sim_core::RunStats::new();
        for seed in 0..8 {
            let mut rng = Rng::new(seed);
            let e = daq
                .capture(&trace, SimTime::ZERO, SimTime::from_secs(1), &mut rng)
                .power_profile()
                .energy()
                .as_joules();
            stats.record(e);
        }
        let ci = stats.ci95().unwrap();
        assert!(ci.relative_half_width() < 0.007);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_rejected() {
        let mut rng = Rng::new(1);
        let _ = noiseless().capture(
            &step_trace(),
            SimTime::from_secs(1),
            SimTime::ZERO,
            &mut rng,
        );
    }
}
