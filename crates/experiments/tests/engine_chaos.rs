//! Chaos suite: real sweep grids under seeded fault plans.
//!
//! The engine's crash-safety contract, stated as an invariant: under
//! *any* fault plan the injector can produce — cache read errors,
//! bit-flipped and truncated entries, cache write errors, torn journal
//! writes, up to `max_panics` worker panics per job — a sweep
//! completes and its final CSV is **byte-identical** to a fault-free
//! run. Faults may cost recomputation; they may never cost
//! correctness. Every test here also asserts faults actually fired,
//! so a regression in the injector can't make the suite vacuously
//! green.

use engine::{Engine, EngineConfig, FaultPlan};
use experiments::sweep::{self, SweepConfig};
use workloads::Benchmark;

/// 2 baselines + 2x2x2x2x1 = 18 short cells: big enough to give every
/// fault site real traffic, small enough for CI.
fn grid() -> SweepConfig {
    SweepConfig {
        benchmarks: vec![Benchmark::Mpeg, Benchmark::Web],
        ns: vec![0, 3],
        rules: vec![policies::SpeedChange::One, policies::SpeedChange::Peg],
        thresholds: vec![policies::Hysteresis::BEST],
        secs: 3,
    }
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "experiments-chaos-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fault-free answer the chaotic runs must reproduce exactly.
fn reference_csv() -> String {
    let (s, stats, _) = sweep::run_with(&Engine::new(EngineConfig::hermetic()), &grid(), 1);
    assert_eq!(stats.failed, 0);
    assert!(s.failed.is_empty());
    s.csv()
}

#[test]
fn chaos_plans_never_change_the_csv() {
    let reference = reference_csv();
    for plan_seed in [1u64, 7, 1234] {
        let root = temp_root(&format!("plan{plan_seed}"));
        let config = EngineConfig {
            jobs: 4,
            use_cache: true,
            state_root: Some(root.clone()),
            faults: Some(FaultPlan::chaos(plan_seed)),
            ..EngineConfig::hermetic()
        };
        // Cold: write errors, torn journal writes and panics fire.
        let (cold, cold_stats, _) = sweep::run_with(&Engine::new(config.clone()), &grid(), 1);
        assert_eq!(
            cold_stats.failed, 0,
            "plan {plan_seed}: retries must absorb panics"
        );
        assert!(cold.failed.is_empty());
        assert_eq!(
            cold.csv(),
            reference,
            "plan {plan_seed}: cold chaotic run diverged from fault-free CSV"
        );
        // Warm: read errors, corruption and truncation now hit the
        // entries the cold run managed to store.
        let (warm, warm_stats, _) = sweep::run_with(&Engine::new(config), &grid(), 1);
        assert_eq!(warm_stats.failed, 0);
        assert_eq!(
            warm.csv(),
            reference,
            "plan {plan_seed}: warm chaotic run diverged from fault-free CSV"
        );
        assert_eq!(cold_stats.total, warm_stats.total, "same grid both rounds");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn chaos_plans_actually_inject_and_stay_deterministic() {
    // Drive run_batch directly so the injector's own accounting is
    // visible, and pin the two replay guarantees: the same plan fires
    // the same faults whatever the worker count, and the results stay
    // bit-identical to a fault-free batch either way.
    let specs = sweep::specs(&grid(), 1);
    let clean = Engine::new(EngineConfig::hermetic()).run_batch("chaos", &specs);

    let run = |jobs: usize| {
        Engine::new(EngineConfig {
            jobs,
            faults: Some(FaultPlan::chaos(42)),
            ..EngineConfig::hermetic()
        })
        .run_batch("chaos", &specs)
    };
    let serial = run(1);
    let parallel = run(8);

    assert!(
        serial.faults.total() > 0,
        "chaos plan injected nothing — the suite is vacuous"
    );
    assert!(serial.faults.panics > 0, "panic site never exercised");
    assert_eq!(
        serial.faults, parallel.faults,
        "1 and 8 workers must draw the identical fault sequence"
    );
    assert_eq!(serial.results, clean.results);
    assert_eq!(parallel.results, clean.results);
    assert_eq!(serial.stats.failed, 0);
}

#[test]
fn corrupted_cache_entries_are_quarantined_and_recomputed() {
    let root = temp_root("quarantine");
    let config = EngineConfig {
        jobs: 2,
        use_cache: true,
        state_root: Some(root.clone()),
        ..EngineConfig::hermetic()
    };
    let (cold, cold_stats, _) = sweep::run_with(&Engine::new(config.clone()), &grid(), 1);
    assert_eq!(cold_stats.executed, cold_stats.total);

    // Flip one byte in every stored entry — real on-disk damage, not
    // injected: the shape of a failing disk or an interrupted write.
    let cache_dir = root.join("cache");
    let mut damaged = 0usize;
    for shard in std::fs::read_dir(&cache_dir).expect("cache dir") {
        let shard = shard.expect("shard").path();
        if !shard.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&shard).expect("shard dir") {
            let path = entry.expect("entry").path();
            let mut bytes = std::fs::read(&path).expect("read entry");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
            std::fs::write(&path, &bytes).expect("write damage");
            damaged += 1;
        }
    }
    assert_eq!(damaged, cold_stats.total, "one entry per cell");

    // Warm run: every probe sees a damaged entry → quarantine and
    // recompute, never serve bad bytes, never crash.
    let (warm, warm_stats, _) = sweep::run_with(&Engine::new(config.clone()), &grid(), 1);
    assert_eq!(
        warm_stats.quarantined, damaged,
        "every damaged entry caught"
    );
    assert_eq!(warm_stats.cache_hits, 0);
    assert_eq!(warm_stats.executed, warm_stats.total, "all recomputed");
    assert_eq!(
        warm.csv(),
        cold.csv(),
        "recomputed bits match the originals"
    );

    // Recomputation healed the cache: a third run is pure hits.
    let (_, healed_stats, _) = sweep::run_with(&Engine::new(config), &grid(), 1);
    assert_eq!(healed_stats.cache_hits, healed_stats.total);
    assert_eq!(healed_stats.quarantined, 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn hostile_plan_fails_cells_without_killing_the_sweep() {
    // A plan harsher than the retry budget: cells fail, but run_with
    // still returns, names every casualty, and keeps the survivors.
    let root = temp_root("hostile");
    let (s, stats, _) = sweep::run_with(
        &Engine::new(EngineConfig {
            jobs: 4,
            max_retries: 0,
            state_root: Some(root.clone()),
            faults: Some(FaultPlan {
                seed: 5,
                panic: 0.3,
                max_panics: 1,
                ..FaultPlan::default()
            }),
            ..EngineConfig::hermetic()
        }),
        &grid(),
        1,
    );
    assert!(
        stats.failed > 0,
        "a 30% one-panic plan with no retries must fail cells"
    );
    assert_eq!(stats.failed + stats.executed, stats.total);
    assert!(!s.failed.is_empty());
    // The survivors' rows still render (unless a baseline died, which
    // drops its workload's rows — also a graceful outcome).
    assert!(s.cells.len() <= stats.executed);
    let _ = std::fs::remove_dir_all(&root);
}
