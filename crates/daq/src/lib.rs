//! The measurement harness: a simulated data-acquisition (DAQ) system.
//!
//! §4.1 of the paper: the Itsy's supply current is sensed across a
//! 0.02 Ω precision resistor; a DAQ digitises the supply voltage and
//! current **5000 times per second** into 16-bit values; collection is
//! started by the Itsy toggling a GPIO pin wired to the DAQ's external
//! trigger; and total energy is computed as
//! `E = Σ pᵢ · 0.0002` — each sample taken as the average power of its
//! 200 µs interval.
//!
//! [`Daq::capture`] reproduces that chain against the simulator's power
//! step-function trace: zero-order-hold resampling at the DAQ rate,
//! additive measurement noise, and ADC quantisation. The noise level
//! defaults to a value that makes repeated runs agree to ≪ 0.7 % of the
//! mean, the paper's observed repeatability.

pub mod channels;
pub mod profile;
pub mod sampler;

pub use channels::{TwoChannelCapture, TwoChannelDaq};
pub use profile::PowerProfile;
pub use sampler::{Daq, DaqConfig};
