//! Time-series containers for simulation outputs.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A sequence of `(time, value)` samples in nondecreasing time order.
///
/// This is the interchange type between the simulator (which produces
/// utilization, frequency and power traces) and the analysis / experiment
/// crates (which filter, resample and plot them).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Short label used in CSV headers and printed tables.
    pub name: String,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Creates an empty series that reuses `buf`'s allocation.
    ///
    /// Pairs with [`TimeSeries::into_buffer`] so hot batch loops can
    /// recycle the backing storage across runs instead of reallocating.
    pub fn with_buffer(name: impl Into<String>, mut buf: Vec<(u64, f64)>) -> Self {
        buf.clear();
        TimeSeries {
            name: name.into(),
            points: buf,
        }
    }

    /// Consumes the series and returns its backing storage for reuse
    /// via [`TimeSeries::with_buffer`].
    pub fn into_buffer(self) -> Vec<(u64, f64)> {
        self.points
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last appended sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(
                at.as_micros() >= last,
                "TimeSeries::push out of order: {} < {last}us",
                at
            );
        }
        self.points.push((at.as_micros(), value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points
            .iter()
            .map(|&(t, v)| (SimTime::from_micros(t), v))
    }

    /// The raw values, ignoring timestamps.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// The sample timestamps in microseconds.
    pub fn times_us(&self) -> Vec<u64> {
        self.points.iter().map(|&(t, _)| t).collect()
    }

    /// Minimum value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).reduce(f64::min)
    }

    /// Maximum value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).reduce(f64::max)
    }

    /// Arithmetic mean of values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Restricts the series to samples with `start <= t < end`.
    pub fn window(&self, start: SimTime, end: SimTime) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            points: self
                .points
                .iter()
                .copied()
                .filter(|&(t, _)| t >= start.as_micros() && t < end.as_micros())
                .collect(),
        }
    }

    /// Renders the series as two-column CSV (`time_us,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "time_us,{}", self.name);
        for &(t, v) in &self.points {
            let _ = writeln!(out, "{t},{v}");
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new("series");
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        let mut s = TimeSeries::new("u");
        s.push(SimTime::from_micros(0), 0.5);
        s.push(SimTime::from_micros(10), 1.0);
        s.push(SimTime::from_micros(20), 0.0);
        s
    }

    #[test]
    fn basic_statistics() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(1.0));
        assert!((s.mean().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_statistics_are_none() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn windowing_is_half_open() {
        let s = sample();
        let w = s.window(SimTime::from_micros(0), SimTime::from_micros(20));
        assert_eq!(w.len(), 2);
        assert_eq!(w.values(), vec![0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut s = sample();
        s.push(SimTime::from_micros(5), 0.1);
    }

    #[test]
    fn csv_rendering() {
        let s = sample();
        let csv = s.to_csv();
        assert!(csv.starts_with("time_us,u\n"));
        assert!(csv.contains("10,1\n"));
    }

    #[test]
    fn from_iterator_collects() {
        let s: TimeSeries = (0..5u64)
            .map(|i| (SimTime::from_micros(i * 10), i as f64))
            .collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.values(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
