//! Per-worker heartbeats and the stall watchdog.
//!
//! A streaming fleet run is only as observable as its slowest worker:
//! a worker wedged inside one pathological device looks, from the
//! outside, exactly like a healthy run that is merely slow. Heartbeats
//! make the difference visible. Each engine worker registers a
//! [`Heartbeat`] slot, stamps it when a job starts, and marks it idle
//! when the stream drains; the watchdog (driven by the telemetry
//! snapshot thread) scans the slots and emits one structured `obs`
//! warning — worker id, the in-flight `JobSpec` key, stalled duration —
//! per stall onset. This is the chaos/fault harness's first *live*
//! failure signal: a `--fault-plan` stall shows up in stderr while the
//! run is still going, not in a post-mortem.
//!
//! Everything here is wall-clock side channel: heartbeats never touch
//! simulation state, and with the plane inactive ([`set_active`]) a
//! heartbeat stamp is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Whether heartbeat recording is on. Separate from the metrics
/// registry switch so tests can drive the watchdog without an exporter.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Turns heartbeat recording on or off process-wide.
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Relaxed);
}

/// Whether heartbeats are being recorded.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Milliseconds since the process's first call into this module — the
/// monotonic clock heartbeats are stamped with.
pub fn now_ms() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// One worker's liveness slot.
#[derive(Debug)]
pub struct Heartbeat {
    worker: usize,
    /// Last stamp, ms since [`now_ms`]'s origin.
    beat_ms: AtomicU64,
    /// True from job start until the worker goes idle.
    busy: AtomicBool,
    /// True once the watchdog has warned about the current beat, so a
    /// stall warns once at onset rather than once per scan.
    warned: AtomicBool,
    /// Content key of the in-flight job.
    job: Mutex<String>,
}

impl Heartbeat {
    /// Stamps the start of a job.
    pub fn start(&self, job_key: &str) {
        if !active() {
            return;
        }
        *self.job.lock().expect("heartbeat job lock") = job_key.to_string();
        self.beat_ms.store(now_ms(), Ordering::Relaxed);
        self.warned.store(false, Ordering::Relaxed);
        self.busy.store(true, Ordering::Relaxed);
    }

    /// Marks the worker idle (between jobs or at stream end).
    pub fn idle(&self) {
        if !active() {
            return;
        }
        self.busy.store(false, Ordering::Relaxed);
        self.warned.store(false, Ordering::Relaxed);
    }
}

fn slots() -> &'static Mutex<Vec<Arc<Heartbeat>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<Heartbeat>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a heartbeat slot for `worker`. Slots live for the process
/// (streams are few and short-lived per process); a re-registered
/// worker id simply adds a new slot — stale ones sit idle and never
/// trip the scan.
pub fn register(worker: usize) -> Arc<Heartbeat> {
    let hb = Arc::new(Heartbeat {
        worker,
        beat_ms: AtomicU64::new(now_ms()),
        busy: AtomicBool::new(false),
        warned: AtomicBool::new(false),
        job: Mutex::new(String::new()),
    });
    slots()
        .lock()
        .expect("heartbeat slots lock")
        .push(Arc::clone(&hb));
    hb
}

/// One detected stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stall {
    /// The stalled worker's id.
    pub worker: usize,
    /// Content key of the job it is stuck in.
    pub job: String,
    /// How long since its last heartbeat, ms.
    pub stalled_ms: u64,
}

/// Scans every registered heartbeat and returns workers that have been
/// busy without a beat for more than `threshold_ms` as of `now`.
/// Each stall is reported once per onset: a worker already flagged
/// stays silent until it beats again.
///
/// Pure in its inputs (time is a parameter) so tests drive it without
/// sleeping.
pub fn scan(now: u64, threshold_ms: u64) -> Vec<Stall> {
    let slots = slots().lock().expect("heartbeat slots lock");
    let mut stalls = Vec::new();
    for hb in slots.iter() {
        if !hb.busy.load(Ordering::Relaxed) {
            continue;
        }
        let stalled_ms = now.saturating_sub(hb.beat_ms.load(Ordering::Relaxed));
        if stalled_ms <= threshold_ms {
            continue;
        }
        if hb.warned.swap(true, Ordering::Relaxed) {
            continue; // already reported this onset
        }
        stalls.push(Stall {
            worker: hb.worker,
            job: hb.job.lock().expect("heartbeat job lock").clone(),
            stalled_ms,
        });
    }
    stalls
}

/// One watchdog patrol: scan, then log each fresh stall as a
/// structured warning and count it. Returns the stalls found so
/// callers (and tests) can observe them directly.
pub fn patrol(threshold_ms: u64) -> Vec<Stall> {
    let stalls = scan(now_ms(), threshold_ms);
    for s in &stalls {
        crate::warn!(
            "obs: worker_stalled worker={} key={} stalled_ms={}",
            s.worker,
            s.job,
            s.stalled_ms
        );
        crate::registry::counter(
            "obs_worker_stalls_total",
            "Stall onsets detected by the heartbeat watchdog.",
        )
        .inc();
    }
    stalls
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Heartbeat state is process-global; serialize the tests.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inactive_heartbeats_never_stall() {
        let _guard = serial();
        set_active(false);
        let hb = register(90);
        hb.start("job-a");
        // start() was a no-op: the slot stays idle.
        assert!(scan(now_ms() + 1_000_000, 1).is_empty());
        hb.idle();
    }

    #[test]
    fn stall_is_detected_once_per_onset_and_clears_on_beat() {
        let _guard = serial();
        set_active(true);
        let hb = register(91);
        hb.start("0123abcd");
        let t = now_ms();
        // Within threshold: quiet.
        assert!(scan(t, 60_000).iter().all(|s| s.worker != 91));
        // Past threshold: exactly one report.
        let stalls = scan(t + 120_000, 60_000);
        let mine: Vec<_> = stalls.iter().filter(|s| s.worker == 91).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].job, "0123abcd");
        assert!(mine[0].stalled_ms >= 120_000 - 60_000);
        // Same onset again: silent.
        assert!(scan(t + 240_000, 60_000).iter().all(|s| s.worker != 91));
        // A fresh job re-arms detection.
        hb.start("4567ef01");
        let stalls = scan(now_ms() + 120_000, 60_000);
        let mine: Vec<_> = stalls.iter().filter(|s| s.worker == 91).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].job, "4567ef01");
        // Idle workers never stall.
        hb.idle();
        assert!(scan(now_ms() + 1_000_000, 1).iter().all(|s| s.worker != 91));
        set_active(false);
    }
}
