//! The per-test RNG and case accounting behind the `proptest!` macro.

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Number of accepted cases each property test must pass.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// A small, fast, deterministic generator (SplitMix64 core), seeded
/// from the test's full path so every test sees an independent,
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test's `module_path!()::name`.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed global seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded draw (Lemire); bias is < 2^-64 * n,
        // irrelevant for test-input generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a1 = TestRng::for_test("mod::a");
        let mut a2 = TestRng::for_test("mod::a");
        let mut b = TestRng::for_test("mod::b");
        let s1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let s3: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::for_test("range");
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
