//! §2.1 battery-lifetime claim: "If the system clock is 206 MHz, a
//! typical pair of alkaline batteries will power the system for about 2
//! hours; if the system clock is set to 59 MHz, those same batteries
//! will last for about 18 hours. Although the battery lifetime
//! increased by a factor of 9, the processor speed was only decreased
//! by a factor of 3.5."
//!
//! We reproduce the claim two ways: closed-form (constant-draw
//! lifetime through the rate-capacity model) and by actually draining a
//! simulated battery under an idle kernel at both clock steps.

use core::fmt;

use itsy_hw::battery::BatteryParams;
use itsy_hw::{Battery, ClockTable, CpuMode, DeviceSet};
use kernel_sim::{Kernel, KernelConfig, Machine};
use sim_core::{Power, SimDuration};

use crate::report;

/// Result for one clock step.
#[derive(Debug, Clone, Copy)]
pub struct BatteryPoint {
    /// Frequency, MHz.
    pub mhz: f64,
    /// Idle system draw, watts.
    pub idle_power_w: f64,
    /// Closed-form lifetime, hours.
    pub lifetime_h: f64,
}

/// The experiment result.
pub struct BatteryExp {
    /// Lifetime at 59 MHz.
    pub slow: BatteryPoint,
    /// Lifetime at 206.4 MHz.
    pub fast: BatteryPoint,
    /// Simulated (kernel-drained) lifetime at 206.4 MHz, hours — cross
    /// check of the closed form.
    pub fast_simulated_h: f64,
}

/// Idle-system power at a clock step.
///
/// The paper does not publish the Itsy's idle draw as a function of
/// frequency — only the two battery-life anchors (≈18 h at 59 MHz,
/// ≈2 h at 206.4 MHz). We therefore pin an affine idle-power curve
/// through the draws those anchors imply under the rate-capacity
/// battery model (0.19 W and 0.95 W; see `itsy_hw::battery`), a
/// substitution documented in `EXPERIMENTS.md`. The curve is only used
/// by this experiment; the Table 2 power model is calibrated
/// separately (devices on, MPEG active).
pub fn idle_power(step: usize) -> Power {
    let table = ClockTable::sa1100();
    let mhz = table.freq(step).as_mhz_f64();
    let w = 0.19 + (mhz - 59.0) / (206.4 - 59.0) * (0.95 - 0.19);
    Power::from_watts(w)
}

/// Runs the experiment.
pub fn run() -> BatteryExp {
    let battery = Battery::new(BatteryParams::default());
    let point = |step: usize| {
        let p = idle_power(step);
        BatteryPoint {
            mhz: ClockTable::sa1100().freq(step).as_mhz_f64(),
            idle_power_w: p.as_watts(),
            lifetime_h: battery.lifetime_hours_at_constant(p),
        }
    };
    let slow = point(0);
    let fast = point(10);

    // Cross-check by draining a simulated battery under an idle kernel.
    // To keep the run short we scale: drain a 1/20-capacity battery
    // and multiply the measured lifetime back up.
    let small = Battery::new(BatteryParams {
        nominal_wh: BatteryParams::default().nominal_wh / 20.0,
        ..BatteryParams::default()
    });
    let mut machine = Machine::itsy(10, DeviceSet::NONE).with_battery(small);
    // Match the idle_power() curve: make the machine's idle draw at
    // 206.4 MHz equal the anchor by adjusting the base draw.
    let nap_core = machine
        .power
        .core_power(
            CpuMode::Nap,
            ClockTable::sa1100().freq(10),
            itsy_hw::clock::V_HIGH,
        )
        .as_watts();
    machine.power.params.base_w = idle_power(10).as_watts() - nap_core;
    let kernel = Kernel::new(
        machine,
        KernelConfig {
            duration: SimDuration::from_secs(3 * 3600),
            stop_when_battery_empty: true,
            record_power: false,
            log_sched: false,
            ..KernelConfig::default()
        },
    );
    let r = kernel.run();
    let fast_simulated_h = r.elapsed.as_secs_f64() / 3600.0 * 20.0;

    BatteryExp {
        slow,
        fast,
        fast_simulated_h,
    }
}

impl BatteryExp {
    /// The headline ratio: lifetime gain per clock reduction.
    pub fn lifetime_ratio(&self) -> f64 {
        self.slow.lifetime_h / self.fast.lifetime_h
    }

    /// Writes the result as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["mhz", "idle_w", "lifetime_h"],
            &[
                vec![
                    format!("{}", self.slow.mhz),
                    format!("{:.3}", self.slow.idle_power_w),
                    format!("{:.2}", self.slow.lifetime_h),
                ],
                vec![
                    format!("{}", self.fast.mhz),
                    format!("{:.3}", self.fast.idle_power_w),
                    format!("{:.2}", self.fast.lifetime_h),
                ],
            ],
        );
        report::save_csv("battery", "lifetimes", &doc).map(|_| ())
    }
}

impl fmt::Display for BatteryExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Battery lifetime, idle system (2x AAA alkaline)")?;
        let rows = vec![
            vec![
                format!("{:.1} MHz", self.slow.mhz),
                format!("{:.2} W", self.slow.idle_power_w),
                format!("{:.1} h (paper: ~18 h)", self.slow.lifetime_h),
            ],
            vec![
                format!("{:.1} MHz", self.fast.mhz),
                format!("{:.2} W", self.fast.idle_power_w),
                format!(
                    "{:.1} h (paper: ~2 h; drained simulation: {:.1} h)",
                    self.fast.lifetime_h, self.fast_simulated_h
                ),
            ],
            vec![
                "ratio".into(),
                format!("{:.1}x clock", 206.4 / 59.0),
                format!("{:.1}x lifetime (paper: ~9x)", self.lifetime_ratio()),
            ],
        ];
        f.write_str(&report::render_table(
            &["clock", "idle draw", "lifetime"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_lifetimes() {
        let e = run();
        assert!(
            (16.0..20.0).contains(&e.slow.lifetime_h),
            "59 MHz lifetime = {:.1}h",
            e.slow.lifetime_h
        );
        assert!(
            (1.7..2.4).contains(&e.fast.lifetime_h),
            "206.4 MHz lifetime = {:.1}h",
            e.fast.lifetime_h
        );
    }

    #[test]
    fn nine_times_life_for_3_5_times_clock() {
        let e = run();
        assert!(
            (7.5..11.0).contains(&e.lifetime_ratio()),
            "ratio = {:.1}",
            e.lifetime_ratio()
        );
    }

    #[test]
    fn drained_simulation_agrees_with_closed_form() {
        let e = run();
        let rel = (e.fast_simulated_h - e.fast.lifetime_h).abs() / e.fast.lifetime_h;
        assert!(
            rel < 0.1,
            "simulated {:.2}h vs closed-form {:.2}h",
            e.fast_simulated_h,
            e.fast.lifetime_h
        );
    }
}
