//! On-disk result cache, keyed by job content address.
//!
//! Layout: `<dir>/<first two hex chars of key>/<key>.entry`, sharded so
//! a full-grid sweep (thousands of cells) does not put every entry in
//! one directory. Each entry is a four-line text file:
//!
//! ```text
//! itsy-dvs engine cache v2
//! spec=<canonical spec string>
//! result=<JobResult::encode() output>
//! crc=<FNV-1a 64 over the spec and result lines, hex>
//! ```
//!
//! The canonical spec is stored alongside the result so a hash
//! collision (or a stale entry after a `SIM_VERSION` bump that somehow
//! kept the same key) is *detected* — the entry is ignored unless the
//! stored spec matches the requesting spec byte-for-byte.
//!
//! The checksum line is the crash-safety fence: an entry whose payload
//! does not hash to its recorded `crc` — a flipped bit, a truncated
//! tail, a stale v1 file — is **quarantined** (moved into
//! `<dir>/quarantine/`) and reported as [`CacheProbe::Quarantined`], so
//! the engine recomputes the cell instead of serving damaged bytes,
//! and the broken file is kept out of every future lookup but
//! preserved for forensics.
//!
//! Writes go through a temp file + rename so a run killed mid-write
//! never leaves a half-entry that poisons a later `--resume`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::fault::FaultInjector;
use crate::job::{JobResult, JobSpec};
use crate::key::{fnv64, ContentKey};

/// Format fence for entry files.
const HEADER: &str = "itsy-dvs engine cache v2";

/// What a cache lookup found.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheProbe {
    /// A healthy entry for exactly this spec.
    Hit(JobResult),
    /// No entry (including unreadable files and key collisions).
    Miss,
    /// An entry existed but failed validation; it has been moved to
    /// the quarantine directory and the cell must be recomputed.
    Quarantined,
}

impl CacheProbe {
    /// The result, if this was a hit.
    pub fn hit(self) -> Option<JobResult> {
        match self {
            CacheProbe::Hit(r) => Some(r),
            _ => None,
        }
    }
}

/// A content-addressed store of job results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (without touching the filesystem) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for a key.
    fn entry_path(&self, key: ContentKey) -> PathBuf {
        let hex = key.to_string();
        self.dir.join(&hex[..2]).join(format!("{hex}.entry"))
    }

    /// Where damaged entries go.
    fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// The checksummed payload of an entry body.
    fn payload(spec_line: &str, result_line: &str) -> String {
        format!("{spec_line}\n{result_line}\n")
    }

    /// Looks up a spec. Returns `None` on missing, damaged, or
    /// spec-mismatched entries — never an error; a broken entry is
    /// quarantined and the cell recomputed.
    pub fn load(&self, spec: &JobSpec) -> Option<JobResult> {
        self.probe(spec, &FaultInjector::inert()).hit()
    }

    /// [`load`](Self::load) with full diagnostics and a fault injector
    /// whose cache-read faults are applied to the bytes before
    /// validation — the validation path cannot tell injected damage
    /// from real disk damage, which is the point.
    pub fn probe(&self, spec: &JobSpec, faults: &FaultInjector) -> CacheProbe {
        let key = spec.key();
        let path = self.entry_path(key);
        let Ok(mut bytes) = fs::read(&path) else {
            return CacheProbe::Miss;
        };
        if faults.cache_read_error(key) {
            // The read "failed"; indistinguishable from a missing file.
            return CacheProbe::Miss;
        }
        faults.damage_cache_bytes(key, &mut bytes);

        let _span = obs::span::enter("cache_decode");
        match Self::parse(&bytes, spec) {
            Parsed::Hit(r) => CacheProbe::Hit(r),
            Parsed::Collision => CacheProbe::Miss,
            Parsed::Damaged => {
                self.quarantine(key, &path);
                CacheProbe::Quarantined
            }
        }
    }

    /// Moves a damaged entry aside so it never resurfaces.
    fn quarantine(&self, key: ContentKey, path: &Path) {
        let qdir = self.quarantine_dir();
        let moved = fs::create_dir_all(&qdir)
            .and_then(|()| fs::rename(path, qdir.join(format!("{key}.entry"))));
        if moved.is_err() {
            // Renaming failed (e.g. read-only fs): removing is the
            // next best containment; a leftover damaged entry must
            // not be served again.
            let _ = fs::remove_file(path);
        }
    }

    /// Stores a result, atomically.
    pub fn store(&self, spec: &JobSpec, result: &JobResult) -> io::Result<()> {
        self.store_with(spec, result, &FaultInjector::inert())
    }

    /// [`store`](Self::store) under a fault injector that may fail the
    /// write with an I/O error before anything lands on disk.
    pub fn store_with(
        &self,
        spec: &JobSpec,
        result: &JobResult,
        faults: &FaultInjector,
    ) -> io::Result<()> {
        let key = spec.key();
        if let Some(e) = faults.cache_write_error(key) {
            return Err(e);
        }
        let path = self.entry_path(key);
        let parent = path.parent().expect("entry path has a shard dir");
        fs::create_dir_all(parent)?;
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        let payload = {
            let _span = obs::span::enter("result_encode");
            Self::payload(
                &format!("spec={}", spec.canonical()),
                &format!("result={}", result.encode()),
            )
        };
        fs::write(
            &tmp,
            format!(
                "{HEADER}\n{payload}crc={:016x}\n",
                fnv64(payload.as_bytes())
            ),
        )?;
        fs::rename(&tmp, &path)
    }

    /// Number of entries on disk (test/report helper; walks the tree).
    pub fn len(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.dir) else {
            return 0;
        };
        shards
            .flatten()
            .filter(|d| d.file_name() != "quarantine")
            .filter_map(|d| fs::read_dir(d.path()).ok())
            .flatten()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "entry"))
            .count()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of quarantined (damaged, never-served) entries.
    pub fn quarantined_len(&self) -> usize {
        fs::read_dir(self.quarantine_dir())
            .map(|d| d.flatten().count())
            .unwrap_or(0)
    }
}

/// Outcome of validating raw entry bytes against a requesting spec.
enum Parsed {
    Hit(JobResult),
    /// Healthy entry for a *different* spec (key collision) — not our
    /// result, but nothing is wrong with the file.
    Collision,
    Damaged,
}

impl ResultCache {
    fn parse(bytes: &[u8], spec: &JobSpec) -> Parsed {
        // Damaged entries may not be UTF-8 (a flipped bit can land in
        // a continuation byte); lossy decoding keeps them parseable
        // far enough to fail the checksum.
        let text = String::from_utf8_lossy(bytes);
        let mut lines = text.lines();
        let (Some(header), Some(spec_line), Some(result_line), Some(crc_line)) =
            (lines.next(), lines.next(), lines.next(), lines.next())
        else {
            return Parsed::Damaged;
        };
        if header != HEADER {
            return Parsed::Damaged;
        }
        let crc_ok = crc_line
            .strip_prefix("crc=")
            .and_then(|c| u64::from_str_radix(c, 16).ok())
            .is_some_and(|crc| crc == fnv64(Self::payload(spec_line, result_line).as_bytes()));
        if !crc_ok {
            return Parsed::Damaged;
        }
        let (Some(stored_spec), Some(encoded)) = (
            spec_line.strip_prefix("spec="),
            result_line.strip_prefix("result="),
        ) else {
            return Parsed::Damaged;
        };
        if stored_spec != spec.canonical() {
            return Parsed::Collision;
        }
        match JobResult::decode(encoded) {
            Some(r) => Parsed::Hit(r),
            // Checksum passed but the payload does not decode: a
            // writer bug or format change — quarantine, don't serve.
            None => Parsed::Damaged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::job::WorkloadSpec;
    use policies::PolicyDesc;
    use workloads::Benchmark;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("engine-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(dir)
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec::new(
            WorkloadSpec::Benchmark(Benchmark::Web),
            PolicyDesc::best_from_paper(),
            5,
            seed,
        )
    }

    fn result(x: f64) -> JobResult {
        JobResult {
            energy_j: x,
            core_energy_j: x / 3.0,
            mean_freq_mhz: 100.0,
            mean_utilization: 0.5,
            misses: 1,
            max_lateness_us: 2,
            clock_switches: 3,
            voltage_switches: 4,
            final_step: 5,
            frames_shown: 6,
            frames_dropped: 7,
            sched_dropped: 8,
            battery_remaining: -1.0,
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let cache = temp_cache("roundtrip");
        assert!(cache.is_empty());
        assert_eq!(cache.load(&spec(1)), None);
        cache.store(&spec(1), &result(0.1)).expect("store");
        assert_eq!(cache.load(&spec(1)), Some(result(0.1)));
        assert_eq!(cache.load(&spec(2)), None, "other specs unaffected");
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_served() {
        let cache = temp_cache("corrupt");
        cache.store(&spec(1), &result(0.1)).expect("store");
        let path = cache.entry_path(spec(1).key());

        // Flip one bit of the stored result payload.
        let mut bytes = fs::read(&path).expect("read entry");
        let pos = bytes.iter().position(|&b| b == b'r').expect("has result");
        bytes[pos + 10] ^= 0x04;
        fs::write(&path, &bytes).expect("corrupt it");

        assert_eq!(
            cache.probe(&spec(1), &FaultInjector::inert()),
            CacheProbe::Quarantined
        );
        assert_eq!(cache.quarantined_len(), 1, "damaged entry moved aside");
        assert_eq!(cache.len(), 0, "and no longer counted live");
        assert_eq!(cache.load(&spec(1)), None, "second probe is a plain miss");

        // And it can be healed by a fresh store.
        cache.store(&spec(1), &result(0.2)).expect("re-store");
        assert_eq!(cache.load(&spec(1)), Some(result(0.2)));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_and_garbage_entries_are_quarantined() {
        let cache = temp_cache("truncate");
        for (i, damage) in ["itsy", "not an entry at all", ""].iter().enumerate() {
            let s = spec(i as u64);
            cache.store(&s, &result(0.1)).expect("store");
            fs::write(cache.entry_path(s.key()), damage).expect("damage");
            assert_eq!(
                cache.probe(&s, &FaultInjector::inert()),
                CacheProbe::Quarantined,
                "damage case {i}"
            );
        }
        assert_eq!(cache.quarantined_len(), 3);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stale_v1_entries_are_quarantined() {
        let cache = temp_cache("v1");
        let s = spec(1);
        cache.store(&s, &result(0.1)).expect("store");
        let path = cache.entry_path(s.key());
        // Re-write the entry in the old, checksum-less v1 format.
        fs::write(
            &path,
            format!(
                "itsy-dvs engine cache v1\nspec={}\nresult={}\n",
                s.canonical(),
                result(0.1).encode()
            ),
        )
        .expect("downgrade");
        assert_eq!(cache.load(&s), None, "v1 entries are not trusted");
        assert_eq!(cache.quarantined_len(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn spec_mismatch_is_rejected_but_not_quarantined() {
        // Simulate a key collision: a *healthy* entry exists under the
        // right key but records a different canonical spec. The entry
        // must not be served, and — being undamaged — not quarantined.
        let cache = temp_cache("mismatch");
        let s = spec(1);
        cache.store(&s, &result(0.1)).expect("store");
        let text = fs::read_to_string(cache.entry_path(s.key())).expect("read");
        let forged_payload = text.lines().nth(1).unwrap().replace("seed=1", "seed=999");
        let forged_payload = format!("{forged_payload}\n{}\n", text.lines().nth(2).unwrap());
        fs::write(
            cache.entry_path(s.key()),
            format!(
                "{HEADER}\n{forged_payload}crc={:016x}\n",
                fnv64(forged_payload.as_bytes())
            ),
        )
        .expect("forge");
        assert_eq!(cache.probe(&s, &FaultInjector::inert()), CacheProbe::Miss);
        assert_eq!(cache.quarantined_len(), 0);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn injected_read_faults_never_serve_bad_bytes() {
        let cache = temp_cache("faulty");
        let faults = FaultInjector::new(Some(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::default()
        }));
        let s = spec(1);
        cache.store(&s, &result(0.1)).expect("store");
        match cache.probe(&s, &faults) {
            // A flipped bit is overwhelmingly caught by the checksum;
            // the only other legal outcome is a collision-style miss
            // (flip landed in the spec line making it mismatch while
            // the crc... — impossible: crc covers the spec line too).
            CacheProbe::Quarantined => {}
            other => panic!("damaged entry must be quarantined, got {other:?}"),
        }
        assert_eq!(faults.stats().corruptions, 1);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
