//! Ablations of the design choices DESIGN.md calls out.
//!
//! - **interval length** — §5.2: "averaging over such a long period of
//!   time caused us to miss our 'deadline'... the MPEG audio and video
//!   became unsynchronized"; the 10 ms interval is load-bearing.
//! - **memory model** — the Figure 9 plateau exists only because of the
//!   Table 3 wait-state quantization (see `fig9::run_with_memory`).
//! - **voltage-scaling threshold** — how much the 1.23 V rail can save
//!   depends on how fast a clock it is allowed under.

use core::fmt;

use itsy_hw::ClockTable;
use kernel_sim::{Kernel, KernelConfig, Machine};
use policies::{IntervalScheduler, VoltageRule};
use sim_core::SimDuration;
use workloads::Benchmark;

use crate::report;
use crate::runner::TOLERANCE;

/// Result of one interval-length cell.
#[derive(Debug, Clone, Copy)]
pub struct IntervalCell {
    /// Scheduling interval, ms.
    pub interval_ms: u64,
    /// Deadline misses beyond tolerance.
    pub misses: usize,
    /// Energy, joules.
    pub energy_j: f64,
    /// Worst frame lateness, ms.
    pub max_lateness_ms: u64,
}

/// The interval-length ablation.
pub struct IntervalAblation {
    /// One cell per interval length.
    pub cells: Vec<IntervalCell>,
}

/// Runs MPEG under the best policy with 10/50/100 ms intervals.
pub fn interval_length(seed: u64) -> IntervalAblation {
    let cells = [10u64, 50, 100]
        .iter()
        .map(|&ms| {
            let mut kernel = Kernel::new(
                Machine::itsy(10, Benchmark::Mpeg.devices()),
                KernelConfig {
                    quantum: SimDuration::from_millis(ms),
                    duration: SimDuration::from_secs(30),
                    ..KernelConfig::default()
                },
            );
            Benchmark::Mpeg.spawn_into(&mut kernel, seed);
            kernel.install_policy(Box::new(IntervalScheduler::best_from_paper(
                ClockTable::sa1100(),
            )));
            let r = kernel.run();
            IntervalCell {
                interval_ms: ms,
                misses: r.deadlines.misses(TOLERANCE),
                energy_j: r.energy.as_joules(),
                max_lateness_ms: r.deadlines.max_lateness().as_micros() / 1_000,
            }
        })
        .collect();
    IntervalAblation { cells }
}

impl IntervalAblation {
    /// Writes the cells as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["interval_ms", "misses", "energy_j", "max_lateness_ms"],
            &self
                .cells
                .iter()
                .map(|c| {
                    vec![
                        c.interval_ms.to_string(),
                        c.misses.to_string(),
                        format!("{:.2}", c.energy_j),
                        c.max_lateness_ms.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("ablation", "interval_length", &doc).map(|_| ())
    }
}

impl fmt::Display for IntervalAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation: scheduling interval length (MPEG, best policy)"
        )?;
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    format!("{} ms", c.interval_ms),
                    c.misses.to_string(),
                    format!("{:.1} J", c.energy_j),
                    format!("{} ms", c.max_lateness_ms),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &["interval", "misses", "energy", "max lateness"],
            &rows,
        ))
    }
}

/// Result of one voltage-threshold cell.
#[derive(Debug, Clone, Copy)]
pub struct VscaleCell {
    /// Fastest step allowed at 1.23 V.
    pub threshold_step: usize,
    /// Energy, joules.
    pub energy_j: f64,
    /// Deadline misses.
    pub misses: usize,
}

/// The voltage-threshold ablation.
pub struct VscaleAblation {
    /// One cell per threshold, plus the no-scaling baseline first.
    pub cells: Vec<VscaleCell>,
}

/// Runs MPEG under the best policy with varying voltage thresholds.
/// `threshold_step = usize::MAX` in the result encodes "no scaling".
pub fn vscale_threshold(seed: u64) -> VscaleAblation {
    let mut cells = Vec::new();
    let mut exec = |rule: Option<VoltageRule>| {
        let mut kernel = Kernel::new(
            Machine::itsy(10, Benchmark::Mpeg.devices()),
            KernelConfig {
                duration: SimDuration::from_secs(30),
                ..KernelConfig::default()
            },
        );
        Benchmark::Mpeg.spawn_into(&mut kernel, seed);
        let mut policy = IntervalScheduler::best_from_paper(ClockTable::sa1100());
        if let Some(r) = rule {
            policy = policy.with_voltage_rule(r);
        }
        kernel.install_policy(Box::new(policy));
        let r = kernel.run();
        cells.push(VscaleCell {
            threshold_step: rule.map_or(usize::MAX, |r| r.low_at_or_below),
            energy_j: r.energy.as_joules(),
            misses: r.deadlines.misses(TOLERANCE),
        });
    };
    exec(None);
    for step in [3usize, 5, 7] {
        exec(Some(VoltageRule {
            low_at_or_below: step,
        }));
    }
    VscaleAblation { cells }
}

impl VscaleAblation {
    /// Writes the cells as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["threshold_step", "energy_j", "misses"],
            &self
                .cells
                .iter()
                .map(|c| {
                    vec![
                        if c.threshold_step == usize::MAX {
                            "none".to_string()
                        } else {
                            c.threshold_step.to_string()
                        },
                        format!("{:.2}", c.energy_j),
                        c.misses.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("ablation", "vscale_threshold", &doc).map(|_| ())
    }
}

impl fmt::Display for VscaleAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: voltage-scaling threshold (MPEG, best policy)")?;
        let table = ClockTable::sa1100();
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    if c.threshold_step == usize::MAX {
                        "no voltage scaling".to_string()
                    } else {
                        format!("1.23V at <= {}", table.freq(c.threshold_step))
                    },
                    format!("{:.2} J", c.energy_j),
                    c.misses.to_string(),
                ]
            })
            .collect();
        f.write_str(&report::render_table(&["rule", "energy", "misses"], &rows))
    }
}

/// One cell of the Java-poller ablation.
#[derive(Debug, Clone, Copy)]
pub struct PollerCell {
    /// Whether the Kaffe poller ran.
    pub with_poller: bool,
    /// Clock switches over the run.
    pub switches: u64,
    /// Mean clock, MHz.
    pub mean_mhz: f64,
    /// Energy, joules.
    pub energy_j: f64,
}

/// §5.3: "the Java implementation uses a 30ms polling loop ... This
/// periodic polling adds additional variation to the clock setting
/// algorithms." This ablation runs the Web browse trace with and
/// without the poller under a settling-prone policy (AVG_3, one-one)
/// and measures the *additional* switching, clock elevation and energy
/// the poll ripple contributes on top of the workload's own bursts.
pub fn java_poller(seed: u64) -> (PollerCell, PollerCell) {
    use policies::{AvgN, Hysteresis, SpeedChange};
    use workloads::{JavaPoller, WebWorkload};

    let exec = |with_poller: bool| {
        let mut kernel = Kernel::new(
            Machine::itsy(10, itsy_hw::DeviceSet::LCD),
            KernelConfig {
                duration: SimDuration::from_secs(60),
                ..KernelConfig::default()
            },
        );
        kernel.spawn(Box::new(workloads::web::Browser::new(
            WebWorkload::browse_trace(seed),
        )));
        if with_poller {
            kernel.spawn(Box::new(JavaPoller::new()));
        }
        kernel.install_policy(Box::new(IntervalScheduler::new(
            Box::new(AvgN::new(3)),
            Hysteresis::BEST,
            SpeedChange::One,
            SpeedChange::One,
            ClockTable::sa1100(),
        )));
        let r = kernel.run();
        PollerCell {
            with_poller,
            switches: r.clock_switches,
            mean_mhz: r.freq_mhz.mean().unwrap_or(0.0),
            energy_j: r.energy.as_joules(),
        }
    };
    (exec(false), exec(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_intervals_miss_deadlines() {
        // The paper's reason for 10-50 ms intervals: at 100 ms the
        // system reacts too slowly and A/V sync is lost.
        let a = interval_length(1);
        let at = |ms: u64| a.cells.iter().find(|c| c.interval_ms == ms).unwrap();
        assert_eq!(at(10).misses, 0, "10 ms interval must be safe");
        assert!(
            at(100).misses > 0,
            "100 ms interval should desynchronize (max lateness {} ms)",
            at(100).max_lateness_ms
        );
        // Lateness grows with the interval.
        assert!(at(100).max_lateness_ms > at(10).max_lateness_ms);
    }

    #[test]
    fn the_poller_adds_variation() {
        // The paper's wording is precise: the polling "adds *additional*
        // variation" on top of the workload's own burstiness — more
        // clock switches, a higher mean clock and more energy, without
        // being the dominant source of flapping.
        let (without, with) = java_poller(1);
        assert!(
            with.switches > without.switches,
            "poller: {} switches vs {} without",
            with.switches,
            without.switches
        );
        assert!(with.mean_mhz > without.mean_mhz);
        assert!(with.energy_j > without.energy_j);
    }

    #[test]
    fn wider_voltage_window_saves_more() {
        let a = vscale_threshold(1);
        let none = a.cells[0].energy_j;
        let narrow = a.cells[1].energy_j; // <= 103.2 MHz
        let wide = a.cells[3].energy_j; // <= 162.2 MHz
        assert!(wide <= narrow + 0.05, "wide {wide} vs narrow {narrow}");
        assert!(wide <= none + 0.05, "scaling must not cost energy");
        for c in &a.cells {
            assert_eq!(c.misses, 0);
        }
    }
}
