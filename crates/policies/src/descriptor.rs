//! Serializable policy descriptors.
//!
//! A live policy ([`IntervalScheduler`], [`ConstantPolicy`]) is a boxed
//! trait object carrying mutable predictor state — it cannot be hashed,
//! compared, or persisted. A [`PolicyDesc`] is the *recipe* for one:
//! plain data naming the predictor, thresholds, speed rules and voltage
//! rule. The execution engine content-addresses jobs by hashing the
//! descriptor's [canonical encoding](PolicyDesc::canonical), and
//! rebuilds a fresh policy per run with [`PolicyDesc::build`], so a
//! cached result is provably a function of its inputs.
//!
//! Canonical-encoding rules (the on-disk cache key depends on them):
//!
//! - field order is fixed and every field is always present;
//! - `f64` parameters are encoded as `to_bits()` hex, never decimal —
//!   formatting is lossy and locale/version-dependent, bits are not;
//! - enum variants use lowercase stable tags, not `Debug` output.

use serde::{Deserialize, Serialize};

use itsy_hw::{ClockTable, StepIndex};
use sim_core::Voltage;

use crate::governor::{ClockPolicy, ConstantPolicy, Hysteresis, IntervalScheduler, VoltageRule};
use crate::govil::{AgedAverage, Cycle, Flat, LongShort, Pattern, Peak};
use crate::predictor::{AvgN, Past, Predictor, SlidingWindowAvg};
use crate::simple::NonIdleCycleAvg;
use crate::speed::SpeedChange;

/// A buildable, hashable description of a utilization predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorDesc {
    /// Weiser's PAST: last interval only.
    Past,
    /// Decaying average with weight N.
    AvgN(u32),
    /// Unweighted average of the last `n` intervals.
    SlidingWindow(usize),
    /// Govil's FLAT: constant prediction.
    Flat(f64),
    /// Govil's LONG_SHORT.
    LongShort,
    /// Govil's AGED_AVERAGES with geometric factor `k`.
    Aged(f64),
    /// Govil's CYCLE.
    Cycle,
    /// Govil's PATTERN.
    Pattern,
    /// Govil's PEAK.
    Peak,
}

impl PredictorDesc {
    /// Instantiates a fresh predictor with zeroed state.
    pub fn build(self) -> Box<dyn Predictor + Send> {
        match self {
            PredictorDesc::Past => Box::new(Past::new()),
            PredictorDesc::AvgN(n) => Box::new(AvgN::new(n)),
            PredictorDesc::SlidingWindow(n) => Box::new(SlidingWindowAvg::new(n)),
            PredictorDesc::Flat(level) => Box::new(Flat::new(level)),
            PredictorDesc::LongShort => Box::new(LongShort::new()),
            PredictorDesc::Aged(k) => Box::new(AgedAverage::new(k)),
            PredictorDesc::Cycle => Box::new(Cycle::new()),
            PredictorDesc::Pattern => Box::new(Pattern::new()),
            PredictorDesc::Peak => Box::new(Peak::new()),
        }
    }

    /// Stable canonical tag for content addressing.
    pub fn canonical(&self) -> String {
        match self {
            PredictorDesc::Past => "past".to_string(),
            PredictorDesc::AvgN(n) => format!("avg_n:{n}"),
            PredictorDesc::SlidingWindow(n) => format!("sliding:{n}"),
            PredictorDesc::Flat(level) => format!("flat:{:016x}", level.to_bits()),
            PredictorDesc::LongShort => "long_short".to_string(),
            PredictorDesc::Aged(k) => format!("aged:{:016x}", k.to_bits()),
            PredictorDesc::Cycle => "cycle".to_string(),
            PredictorDesc::Pattern => "pattern".to_string(),
            PredictorDesc::Peak => "peak".to_string(),
        }
    }

    /// Human-readable name matching the paper's / Govil's spelling.
    pub fn label(&self) -> String {
        match self {
            PredictorDesc::Past => "PAST".to_string(),
            PredictorDesc::AvgN(n) => format!("AVG_{n}"),
            PredictorDesc::SlidingWindow(n) => format!("SW_{n}"),
            PredictorDesc::Flat(level) => format!("FLAT_{:.0}", level * 100.0),
            PredictorDesc::LongShort => "LONG_SHORT".to_string(),
            PredictorDesc::Aged(k) => format!("AGED_{k:.2}"),
            PredictorDesc::Cycle => "CYCLE".to_string(),
            PredictorDesc::Pattern => "PATTERN".to_string(),
            PredictorDesc::Peak => "PEAK".to_string(),
        }
    }
}

/// A buildable, hashable description of a complete clock policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyDesc {
    /// Pin the clock and voltage — the constant-speed baselines.
    Constant {
        /// Pinned clock step.
        step: StepIndex,
        /// Pinned core voltage, mV.
        voltage_mv: u32,
    },
    /// The paper's interval scheduler.
    Interval {
        /// Utilization predictor.
        predictor: PredictorDesc,
        /// Hysteresis band.
        hysteresis: Hysteresis,
        /// Scale-up rule.
        up: SpeedChange,
        /// Scale-down rule.
        down: SpeedChange,
        /// Optional 1.23 V rule.
        voltage_rule: Option<VoltageRule>,
    },
    /// The Figure 5 simple-averaging strawman ([`NonIdleCycleAvg`]).
    SimpleAvg {
        /// Averaging window, in quanta.
        window: usize,
    },
}

impl PolicyDesc {
    /// The constant top-speed (206.4 MHz, 1.5 V) baseline.
    pub fn constant_top() -> Self {
        PolicyDesc::Constant {
            step: 10,
            voltage_mv: itsy_hw::clock::V_HIGH.as_mv(),
        }
    }

    /// An interval scheduler without voltage scaling.
    pub fn interval(
        predictor: PredictorDesc,
        hysteresis: Hysteresis,
        up: SpeedChange,
        down: SpeedChange,
    ) -> Self {
        PolicyDesc::Interval {
            predictor,
            hysteresis,
            up,
            down,
            voltage_rule: None,
        }
    }

    /// The paper's best policy: PAST, peg-peg, >98 %/<93 %.
    pub fn best_from_paper() -> Self {
        Self::interval(
            PredictorDesc::Past,
            Hysteresis::BEST,
            SpeedChange::Peg,
            SpeedChange::Peg,
        )
    }

    /// Adds a voltage-scaling rule (interval policies only).
    ///
    /// # Panics
    ///
    /// Panics on a constant policy — its voltage is already explicit.
    pub fn with_voltage_rule(mut self, rule: VoltageRule) -> Self {
        match &mut self {
            PolicyDesc::Interval { voltage_rule, .. } => *voltage_rule = Some(rule),
            PolicyDesc::Constant { .. } => {
                panic!("voltage rule on a constant policy: set `voltage_mv` instead")
            }
            PolicyDesc::SimpleAvg { .. } => {
                panic!("the simple-averaging strawman has no voltage rule")
            }
        }
        self
    }

    /// Instantiates the live policy with fresh state.
    pub fn build(&self, table: ClockTable) -> Box<dyn ClockPolicy> {
        match self {
            PolicyDesc::Constant { step, voltage_mv } => {
                Box::new(ConstantPolicy::new(*step, Voltage::from_mv(*voltage_mv)))
            }
            PolicyDesc::Interval {
                predictor,
                hysteresis,
                up,
                down,
                voltage_rule,
            } => {
                let mut sched =
                    IntervalScheduler::new(predictor.build(), *hysteresis, *up, *down, table);
                if let Some(rule) = voltage_rule {
                    sched = sched.with_voltage_rule(*rule);
                }
                Box::new(sched)
            }
            PolicyDesc::SimpleAvg { window } => Box::new(NonIdleCycleAvg::new(*window, table)),
        }
    }

    /// Stable canonical encoding for content addressing.
    pub fn canonical(&self) -> String {
        match self {
            PolicyDesc::Constant { step, voltage_mv } => {
                format!("constant;step={step};mv={voltage_mv}")
            }
            PolicyDesc::Interval {
                predictor,
                hysteresis,
                up,
                down,
                voltage_rule,
            } => format!(
                "interval;pred={};up_th={:016x};down_th={:016x};up={};down={};vrule={}",
                predictor.canonical(),
                hysteresis.up.to_bits(),
                hysteresis.down.to_bits(),
                up.label(),
                down.label(),
                match voltage_rule {
                    Some(r) => format!("le{}", r.low_at_or_below),
                    None => "none".to_string(),
                },
            ),
            PolicyDesc::SimpleAvg { window } => format!("simple_avg;window={window}"),
        }
    }

    /// Human-readable summary for progress lines and tables.
    pub fn label(&self) -> String {
        match self {
            PolicyDesc::Constant { step, voltage_mv } => {
                format!("constant step {step} @ {voltage_mv} mV")
            }
            PolicyDesc::Interval {
                predictor,
                hysteresis,
                up,
                down,
                ..
            } => format!(
                "{} {}-{} {}",
                predictor.label(),
                up.label(),
                down.label(),
                hysteresis
            ),
            PolicyDesc::SimpleAvg { window } => format!("SIMPLE_AVG_{window}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    #[test]
    fn canonical_is_injective_over_the_sweep_grid() {
        // Every cell of the §5.3 grid must get a distinct encoding.
        let mut seen = std::collections::HashSet::new();
        for n in 0..=10u32 {
            for up in [SpeedChange::One, SpeedChange::Double, SpeedChange::Peg] {
                for down in [SpeedChange::One, SpeedChange::Double, SpeedChange::Peg] {
                    for th in [Hysteresis::PERING, Hysteresis::BEST] {
                        let d = PolicyDesc::interval(PredictorDesc::AvgN(n), th, up, down);
                        assert!(seen.insert(d.canonical()), "duplicate: {}", d.canonical());
                    }
                }
            }
        }
        assert_eq!(seen.len(), 11 * 3 * 3 * 2);
    }

    #[test]
    fn float_params_encode_bit_exactly() {
        let a = PredictorDesc::Flat(0.7).canonical();
        let b = PredictorDesc::Flat(0.7 + f64::EPSILON).canonical();
        assert_ne!(a, b, "nearby floats must not collide");
        assert_eq!(a, PredictorDesc::Flat(0.7).canonical());
    }

    #[test]
    fn built_policy_matches_direct_construction() {
        let desc = PolicyDesc::best_from_paper();
        let mut built = desc.build(ClockTable::sa1100());
        let mut direct = IntervalScheduler::best_from_paper(ClockTable::sa1100());
        for (i, util) in [1.0, 0.5, 0.99, 0.2, 1.0].iter().enumerate() {
            let t = SimTime::from_millis(10 * i as u64);
            assert_eq!(
                built.on_interval(t, *util, 5),
                direct.on_interval(t, *util, 5),
            );
        }
        assert_eq!(built.name(), direct.name());
    }

    #[test]
    fn simple_avg_desc_builds_strawman() {
        let desc = PolicyDesc::SimpleAvg { window: 4 };
        let mut p = desc.build(ClockTable::sa1100());
        assert_eq!(p.name(), "NonIdleCycleAvg_4");
        // Fully busy at the top step: no change requested.
        let req = p.on_interval(SimTime::ZERO, 1.0, 10);
        assert_eq!(req.step, None);
        assert_eq!(desc.canonical(), "simple_avg;window=4");
    }

    #[test]
    fn constant_desc_builds_constant_policy() {
        let desc = PolicyDesc::constant_top();
        let mut p = desc.build(ClockTable::sa1100());
        let req = p.on_interval(SimTime::ZERO, 0.5, 3);
        assert_eq!(req.step, Some(10));
    }

    #[test]
    fn every_predictor_desc_builds() {
        for d in [
            PredictorDesc::Past,
            PredictorDesc::AvgN(5),
            PredictorDesc::SlidingWindow(4),
            PredictorDesc::Flat(0.7),
            PredictorDesc::LongShort,
            PredictorDesc::Aged(0.9),
            PredictorDesc::Cycle,
            PredictorDesc::Pattern,
            PredictorDesc::Peak,
        ] {
            let mut p = d.build();
            let w = p.observe(0.75);
            assert!((0.0..=1.0).contains(&w), "{} out of range", d.label());
            assert!(!d.canonical().is_empty());
        }
    }
}
