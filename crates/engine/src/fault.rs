//! Deterministic fault injection for the execution engine.
//!
//! A [`FaultPlan`] describes *which* failure modes to inject and how
//! often; a [`FaultInjector`] built from it makes the actual per-event
//! decisions. Every decision is a pure function of
//! `(plan seed, fault site, job content key, occurrence number)` — no
//! wall clock, no thread-local RNG — so a failing chaos run replays
//! exactly from its plan string, independent of worker count or
//! scheduling order.
//!
//! Injection sites, one per hardened failure path:
//!
//! | plan key    | site                | what fires                          |
//! |-------------|---------------------|-------------------------------------|
//! | `read_err`  | cache entry read    | the read is dropped (acts like EIO) |
//! | `corrupt`   | cache entry read    | one bit of the entry is flipped     |
//! | `truncate`  | cache entry read    | the entry is cut short              |
//! | `write_err` | cache entry write   | the write fails with an I/O error   |
//! | `torn`      | journal append      | only a prefix of the record lands   |
//! | `panic`     | job execution       | the worker panics mid-job           |
//! | `stall`     | job execution       | the worker sleeps `stall_ms` mid-job|
//!
//! `stall` is the odd one out: it injects *wall-clock* latency only, so
//! every deterministic artifact is unchanged — its purpose is to give
//! the heartbeat watchdog (`obs::watchdog`) a live failure to detect.
//!
//! The textual form (`FaultPlan::parse` / `Display`) is what the
//! `repro` binary accepts via `--fault-plan`:
//!
//! ```text
//! seed=7,read_err=0.15,corrupt=0.25,truncate=0.15,write_err=0.15,torn=0.25,panic=0.25,max_panics=2,stall=0,stall_ms=100
//! ```

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Mutex;

use crate::key::{fnv64, ContentKey};

/// Which failure modes to inject, and how often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// P(cache entry read is dropped as if the disk returned EIO).
    pub read_err: f64,
    /// P(one bit of a cache entry flips on read).
    pub corrupt: f64,
    /// P(a cache entry is truncated on read).
    pub truncate: f64,
    /// P(a cache entry write fails).
    pub write_err: f64,
    /// P(a journal append lands only partially).
    pub torn: f64,
    /// P(a job execution attempt panics).
    pub panic: f64,
    /// Panics are only injected into a job's first `max_panics`
    /// attempts, so any job completes within `max_panics` retries.
    pub max_panics: u32,
    /// P(a job execution attempt stalls for `stall_ms` of wall clock
    /// before running). Wall-clock only — results are unchanged.
    pub stall: f64,
    /// How long an injected stall sleeps, milliseconds.
    pub stall_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            read_err: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            write_err: 0.0,
            torn: 0.0,
            panic: 0.0,
            max_panics: 2,
            stall: 0.0,
            stall_ms: 100,
        }
    }
}

impl FaultPlan {
    /// A plan exercising every failure mode at once — what the chaos
    /// suite and the CI `chaos-smoke` job run under.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            read_err: 0.15,
            corrupt: 0.25,
            truncate: 0.15,
            write_err: 0.15,
            torn: 0.25,
            panic: 0.25,
            max_panics: 2,
            stall: 0.0,
            stall_ms: 100,
        }
    }

    /// Whether the plan can ever fire.
    pub fn is_inert(&self) -> bool {
        self.read_err <= 0.0
            && self.corrupt <= 0.0
            && self.truncate <= 0.0
            && self.write_err <= 0.0
            && self.torn <= 0.0
            && self.panic <= 0.0
            && self.stall <= 0.0
    }

    /// Parses the `key=value,key=value` form produced by `Display`.
    /// Unknown keys and out-of-range probabilities are errors so a
    /// typo'd plan cannot silently run fault-free.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("`{part}`: expected key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|e| format!("`{k}={v}`: {e}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("`{k}={v}`: probability outside [0, 1]"));
                }
                Ok(p)
            };
            match k.trim() {
                "seed" => plan.seed = v.parse().map_err(|e| format!("`{k}={v}`: {e}"))?,
                "read_err" => plan.read_err = prob(v)?,
                "corrupt" => plan.corrupt = prob(v)?,
                "truncate" => plan.truncate = prob(v)?,
                "write_err" => plan.write_err = prob(v)?,
                "torn" => plan.torn = prob(v)?,
                "panic" => plan.panic = prob(v)?,
                "max_panics" => {
                    plan.max_panics = v.parse().map_err(|e| format!("`{k}={v}`: {e}"))?
                }
                "stall" => plan.stall = prob(v)?,
                "stall_ms" => plan.stall_ms = v.parse().map_err(|e| format!("`{k}={v}`: {e}"))?,
                other => {
                    return Err(format!(
                        "unknown fault key `{other}` (known: seed, read_err, corrupt, \
                         truncate, write_err, torn, panic, max_panics, stall, stall_ms)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},read_err={},corrupt={},truncate={},write_err={},torn={},panic={},max_panics={},stall={},stall_ms={}",
            self.seed,
            self.read_err,
            self.corrupt,
            self.truncate,
            self.write_err,
            self.torn,
            self.panic,
            self.max_panics,
            self.stall,
            self.stall_ms,
        )
    }
}

/// How many faults of each kind actually fired during a batch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Cache reads dropped as I/O errors.
    pub read_errors: u64,
    /// Cache entries bit-flipped on read.
    pub corruptions: u64,
    /// Cache entries truncated on read.
    pub truncations: u64,
    /// Cache writes failed.
    pub write_errors: u64,
    /// Journal appends torn.
    pub torn_writes: u64,
    /// Job execution attempts panicked.
    pub panics: u64,
    /// Job execution attempts stalled (wall-clock sleep).
    pub stalls: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.read_errors
            + self.corruptions
            + self.truncations
            + self.write_errors
            + self.torn_writes
            + self.panics
            + self.stalls
    }
}

/// Site discriminants mixed into decision hashes. The values are part
/// of replay determinism — append, never renumber.
#[derive(Debug, Clone, Copy)]
enum Site {
    ReadErr = 1,
    Corrupt = 2,
    Truncate = 3,
    WriteErr = 4,
    Torn = 5,
    Panic = 6,
    Stall = 7,
}

/// The per-batch decision maker built from a [`FaultPlan`].
///
/// Shared by reference between the collector thread (cache/journal
/// sites) and the workers (panic site); all interior state is behind
/// mutexes. An injector built from `None` (or an inert plan) never
/// fires and never locks.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    inert: bool,
    /// Per-(site, key) occurrence counters, so repeated events at the
    /// same site draw fresh — but still deterministic — decisions.
    counters: Mutex<HashMap<(u8, u128), u32>>,
    stats: Mutex<FaultStats>,
}

impl FaultInjector {
    /// An injector for a plan; `None` yields an inert injector.
    pub fn new(plan: Option<FaultPlan>) -> Self {
        let plan = plan.unwrap_or_default();
        FaultInjector {
            inert: plan.is_inert(),
            plan,
            counters: Mutex::new(HashMap::new()),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// An injector that never fires.
    pub fn inert() -> Self {
        Self::new(None)
    }

    /// Whether this injector can fire at all.
    pub fn is_active(&self) -> bool {
        !self.inert
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults fired so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().expect("fault stats lock")
    }

    /// Deterministic 64-bit draw for one decision.
    fn draw(&self, site: Site, key: ContentKey, occurrence: u32) -> u64 {
        let mut bytes = [0u8; 8 + 1 + 16 + 4];
        bytes[..8].copy_from_slice(&self.plan.seed.to_le_bytes());
        bytes[8] = site as u8;
        bytes[9..25].copy_from_slice(&key.0.to_le_bytes());
        bytes[25..].copy_from_slice(&occurrence.to_le_bytes());
        fnv64(&bytes)
    }

    /// Whether a fault with probability `p` fires for this decision.
    fn fires(&self, site: Site, key: ContentKey, occurrence: u32, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.draw(site, key, occurrence) >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Next occurrence number for a (site, key) event stream.
    fn bump(&self, site: Site, key: ContentKey) -> u32 {
        let mut counters = self.counters.lock().expect("fault counters lock");
        let n = counters.entry((site as u8, key.0)).or_insert(0);
        *n += 1;
        *n
    }

    fn count(&self, f: impl FnOnce(&mut FaultStats)) {
        f(&mut self.stats.lock().expect("fault stats lock"));
    }

    /// Cache-read site: whether to drop this read as an I/O error.
    pub fn cache_read_error(&self, key: ContentKey) -> bool {
        if self.inert {
            return false;
        }
        let n = self.bump(Site::ReadErr, key);
        let fired = self.fires(Site::ReadErr, key, n, self.plan.read_err);
        if fired {
            self.count(|s| s.read_errors += 1);
        }
        fired
    }

    /// Cache-read site: maybe flip a bit and/or truncate the entry
    /// bytes in place. Returns true if the bytes were damaged.
    pub fn damage_cache_bytes(&self, key: ContentKey, bytes: &mut Vec<u8>) -> bool {
        if self.inert || bytes.is_empty() {
            return false;
        }
        let mut damaged = false;
        let n = self.bump(Site::Corrupt, key);
        if self.fires(Site::Corrupt, key, n, self.plan.corrupt) {
            let draw = self.draw(Site::Corrupt, key, n.wrapping_add(0x8000_0000));
            let pos = (draw as usize) % bytes.len();
            bytes[pos] ^= 1 << ((draw >> 32) % 8);
            self.count(|s| s.corruptions += 1);
            damaged = true;
        }
        let n = self.bump(Site::Truncate, key);
        if self.fires(Site::Truncate, key, n, self.plan.truncate) {
            let draw = self.draw(Site::Truncate, key, n.wrapping_add(0x8000_0000));
            bytes.truncate((draw as usize) % bytes.len());
            self.count(|s| s.truncations += 1);
            damaged = true;
        }
        damaged
    }

    /// Cache-write site: the error to fail this write with, if any.
    pub fn cache_write_error(&self, key: ContentKey) -> Option<io::Error> {
        if self.inert {
            return None;
        }
        let n = self.bump(Site::WriteErr, key);
        if self.fires(Site::WriteErr, key, n, self.plan.write_err) {
            self.count(|s| s.write_errors += 1);
            Some(io::Error::other(format!(
                "injected cache write error (key {key}, occurrence {n})"
            )))
        } else {
            None
        }
    }

    /// Journal-append site: how many bytes of an `len`-byte record to
    /// actually write, if this append should tear.
    pub fn journal_tear(&self, key: ContentKey, len: usize) -> Option<usize> {
        if self.inert || len == 0 {
            return None;
        }
        let n = self.bump(Site::Torn, key);
        if self.fires(Site::Torn, key, n, self.plan.torn) {
            self.count(|s| s.torn_writes += 1);
            let draw = self.draw(Site::Torn, key, n.wrapping_add(0x8000_0000));
            // Keep at least one byte and lose at least one, so a tear
            // is never a no-op and never a clean skip.
            Some(1 + (draw as usize) % (len - 1).max(1))
        } else {
            None
        }
    }

    /// Execution site: whether this attempt of a job should panic.
    /// Attempts are numbered from 1; attempts beyond the plan's
    /// `max_panics` never panic, bounding injected failures per job.
    pub fn worker_panic(&self, key: ContentKey, attempt: u32) -> bool {
        if self.inert || attempt > self.plan.max_panics {
            return false;
        }
        let fired = self.fires(Site::Panic, key, attempt, self.plan.panic);
        if fired {
            self.count(|s| s.panics += 1);
        }
        fired
    }

    /// Execution site: how long this job's execution should stall
    /// (wall-clock sleep before the work runs), if at all. Purely a
    /// latency fault — the job's result is untouched — so it is the
    /// one site that feeds the watchdog rather than the retry path.
    pub fn worker_stall(&self, key: ContentKey) -> Option<std::time::Duration> {
        if self.inert {
            return None;
        }
        let n = self.bump(Site::Stall, key);
        if self.fires(Site::Stall, key, n, self.plan.stall) {
            self.count(|s| s.stalls += 1);
            Some(std::time::Duration::from_millis(self.plan.stall_ms))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_display_parse_roundtrips() {
        let plan = FaultPlan::chaos(7);
        let parsed = FaultPlan::parse(&plan.to_string()).expect("parses");
        assert_eq!(plan, parsed);
        // Partial plans default the rest.
        let partial = FaultPlan::parse("seed=3,panic=1").expect("parses");
        assert_eq!(partial.seed, 3);
        assert_eq!(partial.panic, 1.0);
        assert_eq!(partial.corrupt, 0.0);
        assert_eq!(partial.max_panics, 2);
        assert_eq!(
            FaultPlan::parse("").expect("empty ok"),
            FaultPlan::default()
        );
    }

    #[test]
    fn plan_parse_rejects_nonsense() {
        assert!(FaultPlan::parse("panic=1.5").is_err(), "p > 1");
        assert!(FaultPlan::parse("panic=-0.1").is_err(), "p < 0");
        assert!(FaultPlan::parse("warp_core=0.5").is_err(), "unknown key");
        assert!(FaultPlan::parse("panic").is_err(), "missing value");
        assert!(FaultPlan::parse("seed=abc").is_err(), "bad integer");
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let key = ContentKey::of("some job");
        let a = FaultInjector::new(Some(FaultPlan {
            panic: 0.5,
            ..FaultPlan::chaos(1)
        }));
        let b = FaultInjector::new(Some(FaultPlan {
            panic: 0.5,
            ..FaultPlan::chaos(1)
        }));
        let decisions_a: Vec<bool> = (1..=64).map(|n| a.worker_panic(key, n)).collect();
        let decisions_b: Vec<bool> = (1..=64).map(|n| b.worker_panic(key, n)).collect();
        assert_eq!(decisions_a, decisions_b, "same plan, same decisions");

        let c = FaultInjector::new(Some(FaultPlan {
            panic: 0.5,
            max_panics: u32::MAX,
            ..FaultPlan::chaos(2)
        }));
        let decisions_c: Vec<bool> = (1..=64).map(|n| c.worker_panic(key, n)).collect();
        assert_ne!(decisions_a, decisions_c, "different seed, different stream");
    }

    #[test]
    fn max_panics_bounds_injection_per_job() {
        let inj = FaultInjector::new(Some(FaultPlan {
            panic: 1.0,
            max_panics: 2,
            ..FaultPlan::default()
        }));
        let key = ContentKey::of("job");
        assert!(inj.worker_panic(key, 1));
        assert!(inj.worker_panic(key, 2));
        assert!(!inj.worker_panic(key, 3), "attempt 3 must run clean");
        assert_eq!(inj.stats().panics, 2);
    }

    #[test]
    fn inert_injector_never_fires() {
        let inj = FaultInjector::inert();
        assert!(!inj.is_active());
        let key = ContentKey::of("job");
        let mut bytes = b"payload".to_vec();
        assert!(!inj.cache_read_error(key));
        assert!(!inj.damage_cache_bytes(key, &mut bytes));
        assert_eq!(bytes, b"payload");
        assert!(inj.cache_write_error(key).is_none());
        assert!(inj.journal_tear(key, 100).is_none());
        assert!(!inj.worker_panic(key, 1));
        assert!(inj.worker_stall(key).is_none());
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn stall_site_fires_with_the_planned_duration() {
        let inj = FaultInjector::new(Some(FaultPlan {
            stall: 1.0,
            stall_ms: 7,
            ..FaultPlan::default()
        }));
        let key = ContentKey::of("job");
        assert_eq!(
            inj.worker_stall(key),
            Some(std::time::Duration::from_millis(7))
        );
        assert_eq!(inj.stats().stalls, 1);
        assert_eq!(inj.stats().total(), 1);

        let never = FaultInjector::new(Some(FaultPlan {
            stall: 0.0,
            panic: 1.0, // plan is active, stall site still silent
            ..FaultPlan::default()
        }));
        assert!(never.worker_stall(key).is_none());
        assert_eq!(never.stats().stalls, 0);
    }

    #[test]
    fn damage_actually_damages() {
        let inj = FaultInjector::new(Some(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::default()
        }));
        let key = ContentKey::of("job");
        let original = b"a perfectly healthy cache entry".to_vec();
        let mut bytes = original.clone();
        assert!(inj.damage_cache_bytes(key, &mut bytes));
        assert_ne!(bytes, original, "a flipped bit must change the bytes");
        assert_eq!(bytes.len(), original.len(), "corruption is not truncation");

        let trunc = FaultInjector::new(Some(FaultPlan {
            truncate: 1.0,
            ..FaultPlan::default()
        }));
        let mut bytes = original.clone();
        assert!(trunc.damage_cache_bytes(key, &mut bytes));
        assert!(bytes.len() < original.len(), "truncation must shorten");
        assert_eq!(trunc.stats().truncations, 1);
    }

    #[test]
    fn tear_keeps_a_strict_prefix() {
        let inj = FaultInjector::new(Some(FaultPlan {
            torn: 1.0,
            ..FaultPlan::default()
        }));
        let key = ContentKey::of("job");
        for len in [2usize, 10, 1000] {
            let keep = inj.journal_tear(key, len).expect("tears at p=1");
            assert!(keep >= 1 && keep < len, "keep {keep} of {len}");
        }
        assert_eq!(inj.stats().torn_writes, 3);
    }
}
