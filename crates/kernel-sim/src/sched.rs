//! The kernel proper: timer ticks, round-robin scheduling, utilization
//! accounting, the policy hook, and energy integration.
//!
//! Time advances in *segments* — maximal spans during which the machine
//! state (running task, mode, clock, voltage) is constant. Segment
//! boundaries are timer ticks, work completions, spin expirations and
//! stall expirations. Power is integrated per segment; the power trace
//! is a step function with one sample per power change.

use std::collections::VecDeque;

use sim_core::{Energy, SimDuration, SimTime, TimeSeries};

use itsy_hw::clock::V_HIGH;
use itsy_hw::{CpuMode, StepIndex, Work};
use policies::ClockPolicy;

use crate::log::{DeadlineLog, SchedLog};
use crate::machine::Machine;
use crate::report::KernelReport;
use crate::task::{Pid, TaskAction, TaskBehavior, TaskCtx, IDLE_PID};

/// Run-loop configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Scheduling quantum; the paper forces the Linux scheduler to run
    /// every 10 ms tick.
    pub quantum: SimDuration,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Capture the scheduler activity log.
    pub log_sched: bool,
    /// Capture the power step-function trace (needed by the DAQ).
    pub record_power: bool,
    /// Stop early once an attached battery is exhausted.
    pub stop_when_battery_empty: bool,
    /// The paper's kernel modification: "We set the counter to one each
    /// time we schedule a process, forcing the scheduler to be called
    /// every 10ms." When false, the stock Linux 2.0 behaviour applies:
    /// a process runs until its counter (see
    /// [`KernelConfig::default_counter`]) expires, so "a process can
    /// run for several quanta before the scheduler is called".
    pub force_schedule_every_tick: bool,
    /// Ticks a process may run before preemption when
    /// `force_schedule_every_tick` is off (Linux 2.0's DEF_PRIORITY is
    /// ~20 ticks = 200 ms).
    pub default_counter: u32,
    /// Collect a structured event trace (quantum boundaries, policy
    /// decisions, clock/voltage transitions, scheduling picks) into
    /// [`KernelReport::trace`]. Off by default: the bulk experiment
    /// engine runs thousands of cells and only `repro trace` wants the
    /// event stream.
    pub trace: bool,
    /// Bound on [`SchedLog`] records kept (the paper's kernel-memory
    /// limit); `None` keeps everything. Ignored when `log_sched` is
    /// off — a disabled log drops nothing.
    pub sched_log_capacity: Option<usize>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            quantum: SimDuration::from_millis(10),
            duration: SimDuration::from_secs(30),
            log_sched: true,
            record_power: true,
            stop_when_battery_empty: false,
            force_schedule_every_tick: true,
            default_counter: 20,
            trace: false,
            sched_log_capacity: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RunState {
    NeedsAction,
    Work(Work),
    Spin(SimTime),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Ready,
    Sleeping(SimTime),
    Exited,
}

struct TaskState {
    behavior: Box<dyn TaskBehavior>,
    run: RunState,
    status: Status,
    cpu_time: SimDuration,
    counter: u32,
}

/// The simulated kernel. Construct, [`Kernel::spawn`] workloads,
/// optionally [`Kernel::install_policy`], then [`Kernel::run`].
///
/// # Examples
///
/// ```
/// use itsy_hw::{DeviceSet, Work};
/// use kernel_sim::task::FnBehavior;
/// use kernel_sim::{Kernel, KernelConfig, Machine, TaskAction};
/// use sim_core::SimDuration;
///
/// let mut kernel = Kernel::new(
///     Machine::itsy(10, DeviceSet::NONE),
///     KernelConfig {
///         duration: SimDuration::from_secs(1),
///         ..KernelConfig::default()
///     },
/// );
/// kernel.spawn(Box::new(FnBehavior::new("busy", |_ctx| {
///     TaskAction::Compute(Work::cycles(1.0e9))
/// })));
/// let report = kernel.run();
/// assert_eq!(report.mean_utilization(), 1.0);
/// assert!(report.energy.as_joules() > 0.0);
/// ```
pub struct Kernel {
    machine: Machine,
    config: KernelConfig,
    tasks: Vec<TaskState>,
    runqueue: VecDeque<Pid>,
    current: Option<Pid>,
    policy: Option<Box<dyn ClockPolicy>>,
    deadlines: DeadlineLog,
    sched_log: SchedLog,
    trace: obs::Trace,
}

impl Kernel {
    /// Creates a kernel for `machine` with the given configuration.
    pub fn new(machine: Machine, config: KernelConfig) -> Self {
        let sched_log = SchedLog::bounded(config.log_sched, config.sched_log_capacity);
        let trace = if config.trace {
            obs::Trace::on()
        } else {
            obs::Trace::off()
        };
        Kernel {
            machine,
            config,
            tasks: Vec::new(),
            runqueue: VecDeque::new(),
            current: None,
            policy: None,
            deadlines: DeadlineLog::default(),
            sched_log,
            trace,
        }
    }

    /// Spawns a task; pids start at 1 (0 is the idle task).
    pub fn spawn(&mut self, behavior: Box<dyn TaskBehavior>) -> Pid {
        let pid = (self.tasks.len() + 1) as Pid;
        let counter = self.config.default_counter.max(1);
        self.tasks.push(TaskState {
            behavior,
            run: RunState::NeedsAction,
            status: Status::Ready,
            cpu_time: SimDuration::ZERO,
            counter,
        });
        self.runqueue.push_back(pid);
        pid
    }

    /// Installs the clock-scaling policy module.
    pub fn install_policy(&mut self, policy: Box<dyn ClockPolicy>) {
        self.policy = Some(policy);
    }

    /// Immutable access to the machine (e.g. to pre-set GPIO state).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn task(&mut self, pid: Pid) -> &mut TaskState {
        &mut self.tasks[(pid - 1) as usize]
    }

    /// True while the current task is waiting for its behavior to be
    /// asked what to do next.
    fn needs_action(&self) -> bool {
        self.current
            .is_some_and(|pid| self.tasks[(pid - 1) as usize].run == RunState::NeedsAction)
    }

    fn pick_current(&mut self, now: SimTime) {
        if let Some(pid) = self.current {
            if self.task(pid).status == Status::Ready {
                return;
            }
            self.current = None;
        }
        while let Some(pid) = self.runqueue.pop_front() {
            if self.task(pid).status == Status::Ready {
                self.current = Some(pid);
                let khz = self.machine.cpu.freq().as_khz();
                self.sched_log.record(now, pid, khz);
                self.emit_schedule(now, pid, khz);
                return;
            }
        }
        // Idle: record the idle task taking over (once per transition).
        let khz = self.machine.cpu.freq().as_khz();
        self.sched_log.record(now, IDLE_PID, khz);
        self.emit_schedule(now, IDLE_PID, khz);
    }

    fn emit_schedule(&mut self, now: SimTime, pid: Pid, clock_khz: u32) {
        if self.trace.is_enabled() {
            self.trace.emit(
                now.as_micros(),
                obs::EventKind::Schedule {
                    pid: u64::from(pid),
                    clock_khz: u64::from(clock_khz),
                },
            );
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> KernelReport {
        let quantum = self.config.quantum;
        assert!(!quantum.is_zero(), "quantum must be positive");
        let end = SimTime::ZERO + self.config.duration;
        let mut now = SimTime::ZERO;
        let mut next_tick = SimTime::ZERO + quantum;
        let mut stall_until = SimTime::ZERO;

        let mut utilization = TimeSeries::new("utilization");
        let mut freq_mhz = TimeSeries::new("freq_mhz");
        let mut work_fraction = TimeSeries::new("work_fraction");
        let mut power_w = TimeSeries::new("watts");

        let mut busy_total = SimDuration::ZERO;
        let mut idle_total = SimDuration::ZERO;
        let mut stalled_total = SimDuration::ZERO;
        let mut spun_total = SimDuration::ZERO;
        let mut energy = Energy::ZERO;
        let mut core_energy = Energy::ZERO;
        let mut busy_in_quantum = SimDuration::ZERO;
        let mut work_in_quantum = Work::ZERO;
        let mut last_power: Option<f64> = None;

        let fastest = self.machine.cpu.table().fastest();
        let full_speed_khz = self.machine.cpu.table().freq(fastest).as_khz();

        // Record the initial frequency sample so Figure 8-style plots
        // start at t = 0.
        freq_mhz.push(now, self.machine.cpu.freq().as_mhz_f64());
        self.pick_current(now);

        let mut action_fuel_at = (now, 0u32);
        'outer: while now < end {
            let boundary = next_tick.min(end);

            // Resolve pending behavior decisions (no time passes). A
            // stalled core executes nothing, so the whole block is
            // skipped mid-stall; otherwise the loop ends when the
            // current task has real work queued or the runqueue drains.
            while stall_until <= now && self.needs_action() {
                let Some(pid) = self.current else { break };
                if action_fuel_at.0 == now {
                    action_fuel_at.1 += 1;
                    assert!(
                        action_fuel_at.1 < 10_000,
                        "task {pid} livelocked at {now} (10k actions without time passing)"
                    );
                } else {
                    action_fuel_at = (now, 0);
                }
                let freq = self.machine.cpu.freq();
                let state = &mut self.tasks[(pid - 1) as usize];
                let mut ctx = TaskCtx::new(now, freq, &mut self.deadlines);
                let action = state.behavior.next_action(&mut ctx);
                match action {
                    TaskAction::Compute(w) if w.is_zero() => {} // ask again
                    TaskAction::Compute(w) => state.run = RunState::Work(w),
                    TaskAction::SpinUntil(t) if t <= now => {} // already passed
                    TaskAction::SpinUntil(t) => state.run = RunState::Spin(t),
                    TaskAction::SleepUntil(t) => {
                        state.status = Status::Sleeping(t);
                        state.run = RunState::NeedsAction;
                        self.pick_current(now);
                    }
                    TaskAction::Exit => {
                        state.status = Status::Exited;
                        state.run = RunState::NeedsAction;
                        self.pick_current(now);
                    }
                }
            }

            // Determine the segment: its end, mode, and work consumed.
            let step = self.machine.cpu.step();
            let freq = self.machine.cpu.freq();
            let (seg_end, mode, work_done, completes, is_spin): (
                SimTime,
                CpuMode,
                Work,
                bool,
                bool,
            ) = if stall_until > now {
                (
                    stall_until.min(boundary),
                    CpuMode::Stalled,
                    Work::ZERO,
                    false,
                    false,
                )
            } else if let Some(pid) = self.current {
                match self.task(pid).run {
                    RunState::Work(w) => {
                        let budget = boundary.duration_since(now);
                        match w.execute_for(budget, step, freq, &self.machine.mem) {
                            itsy_hw::WorkProgress::Completed(d) => {
                                (now + d, CpuMode::Run, w, true, false)
                            }
                            itsy_hw::WorkProgress::Remaining(rest) => {
                                let done = w.plus(rest.scaled(-1.0));
                                self.task(pid).run = RunState::Work(rest);
                                (boundary, CpuMode::Run, done, false, false)
                            }
                        }
                    }
                    RunState::Spin(t) if t <= now => {
                        // The spin target passed while the task was
                        // rotated out; it completes immediately.
                        (now, CpuMode::Run, Work::ZERO, true, true)
                    }
                    RunState::Spin(t) => {
                        let seg = t.min(boundary);
                        (seg, CpuMode::Run, Work::ZERO, seg == t, true)
                    }
                    RunState::NeedsAction => unreachable!("resolved above"),
                }
            } else {
                (boundary, CpuMode::Nap, Work::ZERO, false, false)
            };

            // Integrate power over the segment.
            let span = seg_end.duration_since(now);
            if !span.is_zero() {
                let core_p = self
                    .machine
                    .power
                    .core_power(mode, freq, self.machine.cpu.voltage());
                let p = core_p + self.machine.power.peripheral_power(self.machine.devices);
                if self.config.record_power && last_power != Some(p.as_watts()) {
                    power_w.push(now, p.as_watts());
                    last_power = Some(p.as_watts());
                }
                energy += p.over(span);
                core_energy += core_p.over(span);
                if let Some(batt) = self.machine.battery.as_mut() {
                    batt.drain(p, span);
                    if self.config.stop_when_battery_empty && batt.is_empty() {
                        now = seg_end;
                        break 'outer;
                    }
                }
                match mode {
                    CpuMode::Run => {
                        busy_total += span;
                        busy_in_quantum += span;
                        if is_spin {
                            spun_total += span;
                        }
                        if let Some(pid) = self.current {
                            self.task(pid).cpu_time += span;
                        }
                    }
                    CpuMode::Stalled => {
                        busy_total += span;
                        busy_in_quantum += span;
                        stalled_total += span;
                    }
                    CpuMode::Nap => idle_total += span,
                }
                work_in_quantum = work_in_quantum.plus(work_done);
            }
            now = seg_end;

            // Mark completions.
            if completes {
                if let Some(pid) = self.current {
                    self.task(pid).run = RunState::NeedsAction;
                }
            }

            // Timer tick.
            if now == next_tick && now <= end {
                // Utilization of the quantum that just ended.
                let util = (busy_in_quantum.as_micros() as f64 / quantum.as_micros() as f64)
                    .clamp(0.0, 1.0);
                utilization.push(now, util);
                self.trace.emit(
                    now.as_micros(),
                    obs::EventKind::QuantumBoundary { utilization: util },
                );
                let wf = work_in_quantum.total_cycles(fastest, &self.machine.mem)
                    / (full_speed_khz as f64 * quantum.as_micros() as f64 / 1_000.0);
                work_fraction.push(now, wf.clamp(0.0, 1.0));
                busy_in_quantum = SimDuration::ZERO;
                work_in_quantum = Work::ZERO;

                // Wake sleepers (jiffy granularity).
                for (i, t) in self.tasks.iter_mut().enumerate() {
                    if let Status::Sleeping(until) = t.status {
                        if until <= now {
                            t.status = Status::Ready;
                            self.runqueue.push_back((i + 1) as Pid);
                        }
                    }
                }

                // The clock-scaling policy module runs from the timer
                // interrupt.
                if let Some(policy) = self.policy.as_mut() {
                    let cur = self.machine.cpu.step();
                    let req = policy.on_interval_traced(now, util, cur, &mut self.trace);
                    let target_step = req.step.unwrap_or(cur);
                    let target_v = req.voltage.unwrap_or(self.machine.cpu.voltage());
                    let params = self.machine.power.params.clone();
                    let now_us = now.as_micros();
                    let transition = self
                        .machine
                        .cpu
                        .request_traced(target_step, target_v, &params, now_us, &mut self.trace)
                        .unwrap_or_else(|_| {
                            // Electrically unsafe request: the kernel
                            // clamps the voltage up and retries.
                            self.machine
                                .cpu
                                .request_traced(
                                    target_step,
                                    V_HIGH,
                                    &params,
                                    now_us,
                                    &mut self.trace,
                                )
                                .expect("high voltage is safe at every step")
                        });
                    if !transition.stall.is_zero() {
                        stall_until = now + transition.stall;
                    }
                }
                freq_mhz.push(now, self.machine.cpu.freq().as_mhz_f64());

                // Scheduler entry. With the paper's modification the
                // counter is forced to 1, so every tick preempts; stock
                // Linux 2.0 lets the counter run down first.
                let force = self.config.force_schedule_every_tick;
                let default_counter = self.config.default_counter.max(1);
                if let Some(pid) = self.current {
                    let t = self.task(pid);
                    let expired = if force {
                        true
                    } else {
                        t.counter = t.counter.saturating_sub(1);
                        t.counter == 0
                    };
                    if expired {
                        t.counter = default_counter;
                        self.current = None;
                        if self.task(pid).status == Status::Ready {
                            self.runqueue.push_back(pid);
                        }
                    }
                }
                self.pick_current(now);

                next_tick += quantum;
            }
        }

        // Close the power step function.
        if self.config.record_power {
            if let Some(p) = last_power {
                power_w.push(now, p);
            }
        }

        let per_task = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| ((i + 1) as Pid, t.behavior.label(), t.cpu_time))
            .collect();

        KernelReport {
            utilization,
            freq_mhz,
            work_fraction,
            power_w,
            busy: busy_total,
            idle: idle_total,
            stalled: stalled_total,
            spun: spun_total,
            energy,
            core_energy,
            sched_log: self.sched_log,
            deadlines: self.deadlines,
            trace: self.trace,
            clock_switches: self.machine.cpu.clock_switches(),
            voltage_switches: self.machine.cpu.voltage_switches(),
            final_step: self.machine.cpu.step(),
            per_task_cpu: per_task,
            battery_remaining: self
                .machine
                .battery
                .as_ref()
                .map(|b| b.remaining_fraction()),
            elapsed: now.duration_since(SimTime::ZERO),
        }
    }
}

/// Convenience: the step index of a frequency in the SA-1100 table.
pub fn sa1100_step_of_mhz(mhz: f64) -> StepIndex {
    let table = itsy_hw::ClockTable::sa1100();
    table.step_at_least(sim_core::Frequency::from_khz((mhz * 1000.0) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::FnBehavior;
    use itsy_hw::DeviceSet;
    use policies::{ClockPolicy, IntervalScheduler, PolicyRequest};

    fn config(secs: u64) -> KernelConfig {
        KernelConfig {
            duration: SimDuration::from_secs(secs),
            ..KernelConfig::default()
        }
    }

    fn busy_forever() -> Box<dyn TaskBehavior> {
        Box::new(FnBehavior::new("busy", |_ctx| {
            TaskAction::Compute(Work::cycles(1.0e9))
        }))
    }

    #[test]
    fn fully_busy_task_gives_unit_utilization() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        let r = k.run();
        assert_eq!(r.utilization.len(), 100);
        assert!(r.utilization.values().iter().all(|&u| u == 1.0));
        assert_eq!(r.idle, SimDuration::ZERO);
        assert_eq!(r.busy, SimDuration::from_secs(1));
    }

    #[test]
    fn empty_system_is_fully_idle() {
        let k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), config(1));
        let r = k.run();
        assert!(r.utilization.values().iter().all(|&u| u == 0.0));
        assert_eq!(r.busy, SimDuration::ZERO);
        assert_eq!(r.idle, SimDuration::from_secs(1));
    }

    #[test]
    fn time_is_conserved() {
        let mut k = Kernel::new(Machine::itsy(5, DeviceSet::AV), config(2));
        k.spawn(Box::new(FnBehavior::new("half", |ctx| {
            // Compute 5 ms worth of cycles at 132.7 MHz, then sleep 15 ms.
            if ctx.now.as_micros() % 20_000 < 10_000 {
                TaskAction::Compute(Work::cycles(132_700.0 * 5.0))
            } else {
                TaskAction::SleepUntil(ctx.now + SimDuration::from_millis(15))
            }
        })));
        let r = k.run();
        assert_eq!(r.time_accounted(), SimDuration::from_secs(2));
    }

    #[test]
    fn half_load_measures_half_utilization() {
        // 5 ms of work at the start of every 20 ms period.
        let mut k = Kernel::new(Machine::itsy(5, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("period", |ctx| {
            let period_start = SimTime::from_micros(ctx.now.as_micros() / 20_000 * 20_000);
            if ctx.now == period_start {
                // 5 ms of cycles at the current clock (132.7 MHz).
                TaskAction::Compute(Work::cycles(132_700.0 * 5.0))
            } else {
                TaskAction::SleepUntil(period_start + SimDuration::from_millis(20))
            }
        })));
        let r = k.run();
        let mean = r.mean_utilization();
        assert!((mean - 0.25).abs() < 0.05, "mean utilization = {mean}");
    }

    #[test]
    fn sleep_wakes_at_jiffy_granularity() {
        // A task sleeping until t=15ms must not run again before the
        // 20 ms tick.
        let mut first_wake = None;
        let mut started = false;
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        let wake_probe = std::sync::Arc::new(std::sync::Mutex::new(None));
        let probe = wake_probe.clone();
        k.spawn(Box::new(FnBehavior::new("sleeper", move |ctx| {
            if !started {
                started = true;
                return TaskAction::SleepUntil(SimTime::from_millis(15));
            }
            if first_wake.is_none() {
                first_wake = Some(ctx.now);
                *probe.lock().unwrap() = Some(ctx.now);
            }
            TaskAction::SleepUntil(ctx.now + SimDuration::from_secs(10))
        })));
        let _ = k.run();
        let woke = wake_probe.lock().unwrap().expect("task never woke");
        assert_eq!(woke, SimTime::from_millis(20));
    }

    #[test]
    fn spin_counts_as_busy() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("spinner", |ctx| {
            TaskAction::SpinUntil(ctx.now + SimDuration::from_millis(50))
        })));
        let r = k.run();
        assert_eq!(r.busy, SimDuration::from_secs(1));
        assert!(r.utilization.values().iter().all(|&u| u == 1.0));
    }

    #[test]
    fn round_robin_shares_the_cpu() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        let a = k.spawn(busy_forever());
        let b = k.spawn(busy_forever());
        let r = k.run();
        let count = |pid| {
            r.sched_log
                .records()
                .iter()
                .filter(|rec| rec.pid == pid)
                .count() as f64
        };
        let (ca, cb) = (count(a), count(b));
        assert!(ca > 0.0 && cb > 0.0);
        assert!((ca / cb - 1.0).abs() < 0.1, "unfair: {ca} vs {cb}");
    }

    #[test]
    fn best_policy_pegs_up_under_load() {
        let mut k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.install_policy(Box::new(IntervalScheduler::best_from_paper(
            itsy_hw::ClockTable::sa1100(),
        )));
        let r = k.run();
        assert_eq!(r.final_step, 10);
        assert_eq!(r.clock_switches, 1, "one peg to the top, then stay");
        // The frequency trace shows the jump at the first tick.
        let vals = r.freq_mhz.values();
        assert!((vals[0] - 59.0).abs() < 1e-9);
        assert!((vals[2] - 206.4).abs() < 1e-9);
    }

    #[test]
    fn policy_toggling_accumulates_stalls() {
        // A pathological policy that alternates the clock every tick.
        struct Toggle(bool);
        impl ClockPolicy for Toggle {
            fn on_interval(&mut self, _: SimTime, _: f64, cur: StepIndex) -> PolicyRequest {
                self.0 = !self.0;
                PolicyRequest {
                    step: Some(if cur == 0 { 10 } else { 0 }),
                    voltage: None,
                }
            }
            fn name(&self) -> String {
                "toggle".into()
            }
        }
        let mut k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.install_policy(Box::new(Toggle(false)));
        let r = k.run();
        // 100 ticks, a switch on each (except possibly the last),
        // 200 us stall each.
        assert!(r.clock_switches >= 99, "switches = {}", r.clock_switches);
        let stall_us = r.stalled.as_micros();
        assert!(
            (stall_us as i64 - (r.clock_switches as i64 * 200)).abs() <= 200,
            "stalled = {stall_us}us for {} switches",
            r.clock_switches
        );
    }

    #[test]
    fn energy_decomposes_into_core_and_peripherals() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::AV), config(2));
        k.spawn(busy_forever());
        let r = k.run();
        let core = r.core_energy.as_joules();
        let periph = r.peripheral_energy().as_joules();
        assert!(core > 0.0 && periph > 0.0);
        assert!((core + periph - r.energy.as_joules()).abs() < 1e-9);
        // Fully busy at 206.4 MHz: core = 0.64 W x 2 s, peripherals
        // (base + LCD + audio) = 0.95 W x 2 s.
        assert!((core - 1.28).abs() < 0.07, "core = {core}J");
        assert!((periph - 1.90).abs() < 0.05, "periph = {periph}J");
    }

    #[test]
    fn energy_matches_mean_power_times_time() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::AV), config(2));
        k.spawn(busy_forever());
        let r = k.run();
        let p = r.mean_power_w();
        assert!((r.energy.as_joules() - p * 2.0).abs() < 1e-9);
        // Fully busy at 206.4/1.5V with AV devices: core 0.64 W + 0.95 W.
        assert!((1.4..1.8).contains(&p), "mean power = {p}W");
    }

    #[test]
    fn exited_tasks_free_the_cpu() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        let mut done = false;
        k.spawn(Box::new(FnBehavior::new("oneshot", move |_ctx| {
            if done {
                TaskAction::Exit
            } else {
                done = true;
                // ~100 ms of cycles at 206.4 MHz.
                TaskAction::Compute(Work::cycles(206_400.0 * 100.0))
            }
        })));
        let r = k.run();
        let busy_ms = r.busy.as_micros() / 1_000;
        assert!((95..=105).contains(&busy_ms), "busy = {busy_ms}ms");
    }

    #[test]
    fn deadline_reports_flow_through() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        let mut n = 0u32;
        k.spawn(Box::new(FnBehavior::new("dl", move |ctx| {
            n += 1;
            if n == 1 {
                TaskAction::Compute(Work::cycles(206_400.0 * 30.0)) // 30 ms
            } else if n == 2 {
                ctx.report_deadline("frame", SimTime::from_millis(20));
                TaskAction::Exit
            } else {
                TaskAction::Exit
            }
        })));
        let r = k.run();
        assert_eq!(r.deadlines.len(), 1);
        assert_eq!(r.deadlines.misses(SimDuration::ZERO), 1);
        assert_eq!(r.deadlines.misses(SimDuration::from_millis(15)), 0);
    }

    #[test]
    fn power_trace_is_a_step_function_with_final_sample() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("burst", |ctx| {
            if ctx.now.as_micros() % 100_000 < 50_000 {
                TaskAction::Compute(Work::cycles(206_400.0 * 10.0))
            } else {
                TaskAction::SleepUntil(ctx.now + SimDuration::from_millis(50))
            }
        })));
        let r = k.run();
        assert!(r.power_w.len() >= 3);
        let times = r.power_w.times_us();
        assert_eq!(*times.last().unwrap(), 1_000_000);
    }

    #[test]
    fn classic_counter_scheduling_runs_longer_slices() {
        // Stock Linux 2.0: "a process can run for several quanta before
        // the scheduler is called". With two busy tasks and a counter
        // of 20, context switches happen every ~200 ms instead of every
        // tick.
        let run = |force: bool| {
            let mut k = Kernel::new(
                Machine::itsy(10, DeviceSet::NONE),
                KernelConfig {
                    duration: SimDuration::from_secs(2),
                    force_schedule_every_tick: force,
                    ..KernelConfig::default()
                },
            );
            k.spawn(busy_forever());
            k.spawn(busy_forever());
            k.run()
        };
        let forced = run(true);
        let classic = run(false);
        // Context switches = sched-log entries (one per pick).
        assert!(
            forced.sched_log.len() > classic.sched_log.len() * 5,
            "forced {} vs classic {}",
            forced.sched_log.len(),
            classic.sched_log.len()
        );
        // Fairness and utilization are unaffected.
        assert_eq!(classic.busy, SimDuration::from_secs(2));
        let a = classic.per_task_cpu[0].2.as_secs_f64();
        let b = classic.per_task_cpu[1].2.as_secs_f64();
        assert!((a / b - 1.0).abs() < 0.15, "unfair: {a} vs {b}");
        // Classic slices are ~20 ticks: consecutive same-pid log gaps.
        let recs = classic.sched_log.records();
        let gaps: Vec<u64> = recs.windows(2).map(|w| w[1].at_us - w[0].at_us).collect();
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len().max(1) as f64;
        assert!(
            (150_000.0..=260_000.0).contains(&mean_gap),
            "mean slice = {mean_gap}us"
        );
    }

    #[test]
    fn per_task_accounting_adds_up() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.spawn(busy_forever());
        let r = k.run();
        assert_eq!(r.per_task_cpu.len(), 2);
        let a = r.per_task_cpu[0].2;
        let b = r.per_task_cpu[1].2;
        // Round-robin: equal shares, totalling all busy time.
        assert_eq!(a + b, r.busy);
        let ratio = a.as_micros() as f64 / b.as_micros() as f64;
        assert!((ratio - 1.0).abs() < 0.05, "unfair split {a} vs {b}");
        assert!(r.cpu_time_of("busy").is_some());
        assert_eq!(r.per_task_total(), r.busy);
    }

    #[test]
    fn fractional_final_quantum_is_accounted() {
        // 25 ms = 2 full quanta + a 5 ms tail with no tick.
        let mut k = Kernel::new(
            Machine::itsy(10, DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_millis(25),
                ..KernelConfig::default()
            },
        );
        k.spawn(busy_forever());
        let r = k.run();
        assert_eq!(r.utilization.len(), 2, "only full quanta get samples");
        assert_eq!(r.time_accounted(), SimDuration::from_millis(25));
        assert_eq!(r.busy, SimDuration::from_millis(25));
    }

    #[test]
    fn unsafe_voltage_requests_are_clamped_not_fatal() {
        // A policy that asks for 1.23 V at the top step: electrically
        // unsafe; the kernel must clamp the voltage up and proceed.
        struct Reckless;
        impl ClockPolicy for Reckless {
            fn on_interval(&mut self, _: SimTime, _: f64, _: StepIndex) -> PolicyRequest {
                PolicyRequest {
                    step: Some(10),
                    voltage: Some(itsy_hw::clock::V_LOW),
                }
            }
            fn name(&self) -> String {
                "reckless".into()
            }
        }
        let mut k = Kernel::new(Machine::itsy(0, DeviceSet::NONE), config(1));
        k.spawn(busy_forever());
        k.install_policy(Box::new(Reckless));
        let r = k.run();
        assert_eq!(r.final_step, 10, "the step change itself is honoured");
        // And the run completed with sane accounting.
        assert_eq!(r.time_accounted(), SimDuration::from_secs(1));
    }

    #[test]
    fn sleeping_past_the_end_is_fine() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("farsleeper", |ctx| {
            TaskAction::SleepUntil(ctx.now + SimDuration::from_secs(100))
        })));
        let r = k.run();
        assert_eq!(r.idle, SimDuration::from_secs(1));
    }

    #[test]
    fn trace_captures_quanta_decisions_and_transitions() {
        let mut k = Kernel::new(
            Machine::itsy(0, DeviceSet::NONE),
            KernelConfig {
                duration: SimDuration::from_secs(1),
                trace: true,
                ..KernelConfig::default()
            },
        );
        k.spawn(busy_forever());
        k.install_policy(Box::new(IntervalScheduler::best_from_paper(
            itsy_hw::ClockTable::sa1100(),
        )));
        let r = k.run();
        let count = |name: &str| {
            r.trace
                .events()
                .iter()
                .filter(|e| e.kind.name() == name)
                .count()
        };
        assert_eq!(count("quantum"), 100, "one per 10ms tick over 1s");
        assert_eq!(count("policy"), 100, "policy runs on every tick");
        assert_eq!(
            count("clock") as u64,
            r.clock_switches,
            "trace agrees with the hardware counters"
        );
        assert!(count("sched") > 0);
        // Times never decrease (export relies on this).
        let times: Vec<u64> = r.trace.events().iter().map(|e| e.time_us).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tracing_does_not_change_the_simulation() {
        let run = |trace: bool| {
            let mut k = Kernel::new(
                Machine::itsy(0, DeviceSet::NONE),
                KernelConfig {
                    duration: SimDuration::from_secs(1),
                    trace,
                    ..KernelConfig::default()
                },
            );
            k.spawn(busy_forever());
            k.install_policy(Box::new(IntervalScheduler::best_from_paper(
                itsy_hw::ClockTable::sa1100(),
            )));
            k.run()
        };
        let traced = run(true);
        let plain = run(false);
        assert!(plain.trace.is_empty());
        assert_eq!(traced.energy, plain.energy);
        assert_eq!(traced.clock_switches, plain.clock_switches);
        assert_eq!(traced.final_step, plain.final_step);
        assert_eq!(traced.busy, plain.busy);
    }

    #[test]
    #[should_panic(expected = "livelocked")]
    fn zero_work_livelock_is_detected() {
        let mut k = Kernel::new(Machine::itsy(10, DeviceSet::NONE), config(1));
        k.spawn(Box::new(FnBehavior::new("livelock", |_ctx| {
            TaskAction::Compute(Work::ZERO)
        })));
        let _ = k.run();
    }
}
