//! One benchmark per reproduced *table* and per §2/§5.4 measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_avg9_actions", |b| {
        b.iter(|| {
            let t = experiments::table1::run();
            assert_eq!(t.first_scale_up_ms(), Some(120));
            black_box(t)
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2_energy_5_configs", |b| {
        b.iter(|| {
            let t = experiments::table2::run(black_box(1));
            assert_eq!(t.rows.len(), 5);
            black_box(t)
        })
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_memory_cycles", |b| {
        b.iter(|| {
            let t = experiments::table3::run();
            assert_eq!(t.rows.len(), 11);
            black_box(t)
        })
    });
}

fn bench_battery(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("battery_lifetimes", |b| {
        b.iter(|| {
            let e = experiments::battery_exp::run();
            assert!(e.lifetime_ratio() > 7.0);
            black_box(e)
        })
    });
    g.finish();
}

fn bench_sa2(c: &mut Criterion) {
    c.bench_function("sa2_worked_example", |b| {
        b.iter(|| black_box(experiments::sa2::run()))
    });
}

fn bench_switch_cost(c: &mut Criterion) {
    c.bench_function("switch_cost_measurement", |b| {
        b.iter(|| {
            let s = experiments::switch_cost::run();
            assert_eq!(s.voltage_down.as_micros(), 250);
            black_box(s)
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("policy_sweep_quick", |b| {
        b.iter(|| {
            let s = experiments::sweep::run(&experiments::sweep::SweepConfig::quick(), 1);
            assert!(!s.cells.is_empty());
            black_box(s)
        })
    });
    g.finish();
}

fn bench_deadline(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("deadline_governor_comparison", |b| {
        b.iter(|| {
            let d = experiments::deadline_exp::run();
            assert_eq!(d.rows.len(), 3);
            black_box(d)
        })
    });
    g.finish();
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_battery,
    bench_sa2,
    bench_switch_cost,
    bench_sweep,
    bench_deadline
);
criterion_main!(tables);
