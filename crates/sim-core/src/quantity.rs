//! Physical quantity newtypes: frequency, voltage, power and energy.
//!
//! Frequencies are stored in kilohertz and voltages in millivolts so that
//! the SA-1100 clock-step table and the Itsy's two supply levels (1.5 V
//! and 1.23 V) are represented exactly as integers. Power and energy are
//! `f64` watts/joules — they are model outputs, not state the simulation
//! branches on.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Sub};

use crate::time::SimDuration;

/// A clock frequency, stored in kHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Frequency(u32);

impl Frequency {
    /// Creates a frequency from a kHz count.
    pub const fn from_khz(khz: u32) -> Self {
        Frequency(khz)
    }

    /// Creates a frequency from a whole-MHz count.
    pub const fn from_mhz(mhz: u32) -> Self {
        Frequency(mhz * 1_000)
    }

    /// The frequency in kHz.
    pub const fn as_khz(self) -> u32 {
        self.0
    }

    /// The frequency in Hz.
    pub const fn as_hz(self) -> u64 {
        self.0 as u64 * 1_000
    }

    /// The frequency in MHz, as a float (for reporting).
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Number of clock cycles elapsed in `d` at this frequency, rounded
    /// down.
    pub fn cycles_in(self, d: SimDuration) -> u64 {
        // cycles = f[Hz] * t[s] = f[kHz] * t[us] / 1000.
        (self.0 as u128 * d.as_micros() as u128 / 1_000) as u64
    }

    /// Time needed to execute `cycles` clock cycles at this frequency,
    /// rounded up to the next microsecond (an event cannot complete
    /// mid-microsecond).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn time_for_cycles(self, cycles: u64) -> SimDuration {
        assert!(self.0 > 0, "time_for_cycles on zero frequency");
        // t[us] = cycles / f[kHz] * 1000, rounded up.
        let khz = self.0 as u128;
        let us = (cycles as u128 * 1_000).div_ceil(khz);
        SimDuration::from_micros(us as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}MHz", self.as_mhz_f64())
    }
}

/// A supply voltage, stored in mV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Voltage(u32);

impl Voltage {
    /// Creates a voltage from a mV count.
    pub const fn from_mv(mv: u32) -> Self {
        Voltage(mv)
    }

    /// The voltage in mV.
    pub const fn as_mv(self) -> u32 {
        self.0
    }

    /// The voltage in volts, as a float.
    pub fn as_volts_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}V", self.as_volts_f64())
    }
}

/// Instantaneous power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero watts.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from a watt value.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or not finite.
    pub fn from_watts(w: f64) -> Self {
        assert!(w.is_finite() && w >= 0.0, "invalid power: {w}");
        Power(w)
    }

    /// Creates a power from a milliwatt value.
    pub fn from_milliwatts(mw: f64) -> Self {
        Power::from_watts(mw / 1_000.0)
    }

    /// The power in watts.
    pub const fn as_watts(self) -> f64 {
        self.0
    }

    /// Energy dissipated by drawing this power for `d`.
    pub fn over(self, d: SimDuration) -> Energy {
        Energy(self.0 * d.as_secs_f64())
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}W", self.0)
    }
}

/// Accumulated energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero joules.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from a joule value.
    ///
    /// # Panics
    ///
    /// Panics if `j` is negative or not finite.
    pub fn from_joules(j: f64) -> Self {
        assert!(j.is_finite() && j >= 0.0, "invalid energy: {j}");
        Energy(j)
    }

    /// Creates an energy from a millijoule value.
    pub fn from_millijoules(mj: f64) -> Self {
        Energy::from_joules(mj / 1_000.0)
    }

    /// The energy in joules.
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// The energy in watt-hours.
    pub fn as_watt_hours(self) -> f64 {
        self.0 / 3_600.0
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}J", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_khz(206_400);
        assert_eq!(f.as_hz(), 206_400_000);
        assert!((f.as_mhz_f64() - 206.4).abs() < 1e-9);
        assert_eq!(Frequency::from_mhz(59).as_khz(), 59_000);
    }

    #[test]
    fn cycles_round_trip() {
        let f = Frequency::from_khz(100_000); // 100 MHz: 100 cycles per us.
        assert_eq!(f.cycles_in(SimDuration::from_micros(10)), 1_000);
        assert_eq!(f.time_for_cycles(1_000).as_micros(), 10);
        // Rounds up: 50 cycles at 100 MHz is 0.5 us -> 1 us.
        assert_eq!(f.time_for_cycles(50).as_micros(), 1);
    }

    #[test]
    fn cycles_in_no_overflow_for_long_durations() {
        let f = Frequency::from_khz(206_400);
        let day = SimDuration::from_secs(86_400);
        assert_eq!(f.cycles_in(day), 206_400_000u64 * 86_400);
    }

    #[test]
    fn power_energy_integration() {
        let p = Power::from_watts(2.0);
        let e = p.over(SimDuration::from_secs(30));
        assert!((e.as_joules() - 60.0).abs() < 1e-9);
        assert!((e.as_watt_hours() - 60.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn strongarm_sa2_worked_example() {
        // Paper section 2.1: 600 M instructions, 500 mW at 600 MHz takes 1 s
        // and 500 mJ; at 150 MHz it takes 4 s and 40 mW * 4 s = 160 mJ.
        let work_cycles = 600_000_000u64;
        let fast = Frequency::from_mhz(600);
        let slow = Frequency::from_mhz(150);
        let t_fast = fast.time_for_cycles(work_cycles);
        let t_slow = slow.time_for_cycles(work_cycles);
        assert_eq!(t_fast.as_micros(), 1_000_000);
        assert_eq!(t_slow.as_micros(), 4_000_000);
        let e_fast = Power::from_milliwatts(500.0).over(t_fast);
        let e_slow = Power::from_milliwatts(40.0).over(t_slow);
        assert!((e_fast.as_joules() - 0.5).abs() < 1e-9);
        assert!((e_slow.as_joules() - 0.16).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn negative_power_rejected() {
        let _ = Power::from_watts(-1.0);
    }

    #[test]
    fn voltage_display() {
        assert_eq!(format!("{}", Voltage::from_mv(1_230)), "1.23V");
        assert_eq!(format!("{}", Voltage::from_mv(1_500)), "1.50V");
    }
}
