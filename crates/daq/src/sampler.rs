//! Resampling the simulator's power trace the way the DAQ saw the Itsy.

use sim_core::{Rng, SimDuration, SimTime, TimeSeries};

use crate::profile::PowerProfile;

/// DAQ configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DaqConfig {
    /// Sample rate; the paper configured 5000 readings per second.
    pub sample_hz: u32,
    /// ADC resolution in bits (16 in the paper).
    pub adc_bits: u8,
    /// Full-scale power reading of the instrumented range, watts.
    pub full_scale_w: f64,
    /// Relative (multiplicative) Gaussian measurement noise per sample.
    /// The default reproduces run-to-run 95 % CIs well under 0.7 % of
    /// the mean.
    pub noise_rel: f64,
}

impl Default for DaqConfig {
    fn default() -> Self {
        DaqConfig {
            sample_hz: 5_000,
            adc_bits: 16,
            full_scale_w: 8.0,
            noise_rel: 0.02,
        }
    }
}

/// The acquisition system.
///
/// # Examples
///
/// ```
/// use daq::Daq;
/// use sim_core::{Rng, SimTime, TimeSeries};
///
/// // A 2 W step function held for one second.
/// let mut trace = TimeSeries::new("watts");
/// trace.push(SimTime::ZERO, 2.0);
/// trace.push(SimTime::from_secs(1), 2.0);
///
/// let daq = Daq::default();
/// let mut rng = Rng::new(7);
/// let profile = daq.capture(&trace, SimTime::ZERO, SimTime::from_secs(1), &mut rng);
/// assert_eq!(profile.len(), 5_000); // 5 kHz for 1 s
/// assert!((profile.energy().as_joules() - 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Daq {
    /// Configuration in force.
    pub config: DaqConfig,
}

impl Daq {
    /// Creates a DAQ.
    pub fn new(config: DaqConfig) -> Self {
        Daq { config }
    }

    /// The sample interval.
    pub fn dt(&self) -> SimDuration {
        SimDuration::from_micros(1_000_000 / self.config.sample_hz as u64)
    }

    /// Captures the span `[trigger, until)` of the simulator's power
    /// step function `trace` (as produced by the kernel), applying
    /// measurement noise (from `rng`) and ADC quantisation.
    ///
    /// `trigger` is normally the GPIO rising edge the workload raised at
    /// start of execution.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes `trigger`.
    pub fn capture(
        &self,
        trace: &TimeSeries,
        trigger: SimTime,
        until: SimTime,
        rng: &mut Rng,
    ) -> PowerProfile {
        assert!(until >= trigger, "capture window inverted");
        let dt = self.dt();
        let n = until.duration_since(trigger).as_micros() / dt.as_micros();
        let points: Vec<(SimTime, f64)> = trace.iter().collect();
        let mut cursor = 0usize;
        let lsb = self.config.full_scale_w / ((1u64 << self.config.adc_bits) - 1) as f64;
        let mut samples = Vec::with_capacity(n as usize);
        for i in 0..n {
            let t = trigger + SimDuration::from_micros(i * dt.as_micros());
            // Zero-order hold: advance to the last trace point <= t.
            while cursor + 1 < points.len() && points[cursor + 1].0 <= t {
                cursor += 1;
            }
            let true_w = if points.is_empty() || points[0].0 > t {
                0.0
            } else {
                points[cursor].1
            };
            let noisy = true_w * (1.0 + self.config.noise_rel * rng.gaussian());
            // ADC quantisation and clipping.
            let clipped = noisy.clamp(0.0, self.config.full_scale_w);
            let quantised = (clipped / lsb).round() * lsb;
            samples.push(quantised);
        }
        PowerProfile::new(samples, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_trace() -> TimeSeries {
        // 1 W for the first second, 3 W for the next.
        let mut t = TimeSeries::new("watts");
        t.push(SimTime::ZERO, 1.0);
        t.push(SimTime::from_secs(1), 3.0);
        t.push(SimTime::from_secs(2), 3.0);
        t
    }

    fn noiseless() -> Daq {
        Daq::new(DaqConfig {
            noise_rel: 0.0,
            ..DaqConfig::default()
        })
    }

    #[test]
    fn dt_is_200us_at_5khz() {
        assert_eq!(Daq::default().dt(), SimDuration::from_micros(200));
    }

    #[test]
    fn noiseless_capture_reproduces_energy() {
        let mut rng = Rng::new(1);
        let p = noiseless().capture(
            &step_trace(),
            SimTime::ZERO,
            SimTime::from_secs(2),
            &mut rng,
        );
        assert_eq!(p.len(), 10_000);
        // True energy = 1 J + 3 J = 4 J; quantisation error is tiny.
        assert!((p.energy().as_joules() - 4.0).abs() < 0.01);
    }

    #[test]
    fn trigger_aligns_the_window() {
        let mut rng = Rng::new(1);
        let p = noiseless().capture(
            &step_trace(),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            &mut rng,
        );
        // Only the 3 W second is captured.
        assert!((p.average_power().as_watts() - 3.0).abs() < 0.01);
    }

    #[test]
    fn samples_before_first_trace_point_read_zero() {
        let mut trace = TimeSeries::new("watts");
        trace.push(SimTime::from_secs(1), 2.0);
        trace.push(SimTime::from_secs(2), 2.0);
        let mut rng = Rng::new(1);
        let p = noiseless().capture(&trace, SimTime::ZERO, SimTime::from_secs(2), &mut rng);
        let head = p.slice(0, 100);
        assert_eq!(head.average_power().as_watts(), 0.0);
    }

    #[test]
    fn noise_is_zero_mean() {
        let daq = Daq::default();
        let mut rng = Rng::new(42);
        let p = daq.capture(
            &step_trace(),
            SimTime::ZERO,
            SimTime::from_secs(2),
            &mut rng,
        );
        let err = (p.energy().as_joules() - 4.0).abs() / 4.0;
        assert!(err < 0.002, "relative energy error = {err}");
    }

    #[test]
    fn repeated_captures_agree_to_paper_repeatability() {
        // The paper: 95% CI < 0.7% of the mean across runs.
        let daq = Daq::default();
        let mut stats = sim_core::RunStats::new();
        for seed in 0..10 {
            let mut rng = Rng::new(seed);
            let p = daq.capture(
                &step_trace(),
                SimTime::ZERO,
                SimTime::from_secs(2),
                &mut rng,
            );
            stats.record(p.energy().as_joules());
        }
        let ci = stats.ci95().unwrap();
        assert!(
            ci.relative_half_width() < 0.007,
            "CI half-width = {:.4}% of mean",
            ci.relative_half_width() * 100.0
        );
    }

    #[test]
    fn adc_clips_at_full_scale() {
        let mut trace = TimeSeries::new("watts");
        trace.push(SimTime::ZERO, 100.0); // far beyond full scale
        trace.push(SimTime::from_secs(1), 100.0);
        let mut rng = Rng::new(1);
        let daq = noiseless();
        let p = daq.capture(&trace, SimTime::ZERO, SimTime::from_secs(1), &mut rng);
        assert!(p.peak_power().as_watts() <= daq.config.full_scale_w + 1e-9);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_rejected() {
        let mut rng = Rng::new(1);
        let _ = noiseless().capture(
            &step_trace(),
            SimTime::from_secs(2),
            SimTime::ZERO,
            &mut rng,
        );
    }
}
