//! The elastic evaluation the paper deliberately avoided.
//!
//! §3: "Pering et al. assume that frames of an MPEG video ... can be
//! dropped and present results which combine a combination of energy
//! savings vs. frame rates. Our goal was to understand the performance
//! of the different scheduling algorithms without introducing the
//! complexity of comparing multi-dimensional performance metrics."
//!
//! Here we *do* run the multi-dimensional version, as an ablation of
//! the inelastic-deadline assumption: the MPEG player in frame-dropping
//! mode, pinned at each clock step, giving the Pering-style
//! energy-vs-frame-rate trade-off curve.

use core::fmt;

use itsy_hw::DeviceSet;
use kernel_sim::{Kernel, KernelConfig, Machine};
use sim_core::SimDuration;
use workloads::{MpegConfig, MpegWorkload};

use crate::report;

/// One point of the trade-off curve.
#[derive(Debug, Clone, Copy)]
pub struct ElasticPoint {
    /// Clock step.
    pub step: usize,
    /// Frequency, MHz.
    pub mhz: f64,
    /// Energy over the run, joules.
    pub energy_j: f64,
    /// Achieved frame rate (frames displayed per second; 15 = perfect).
    pub fps: f64,
    /// Fraction of frames dropped.
    pub drop_rate: f64,
}

/// The curve.
pub struct Elastic {
    /// One point per clock step.
    pub points: Vec<ElasticPoint>,
}

/// Seconds per step.
pub const RUN_SECS: u64 = 20;

/// Sweeps all clock steps with the elastic player.
pub fn run(seed: u64) -> Elastic {
    let table = itsy_hw::ClockTable::sa1100();
    let points = (0..table.len())
        .map(|step| {
            let config = MpegConfig {
                drop_late_frames: true,
                ..MpegConfig::default()
            };
            let mut kernel = Kernel::new(
                Machine::itsy(step, DeviceSet::AV),
                KernelConfig {
                    duration: SimDuration::from_secs(RUN_SECS),
                    ..KernelConfig::default()
                },
            );
            for t in MpegWorkload::new(config, seed).into_tasks() {
                kernel.spawn(t);
            }
            let r = kernel.run();
            let shown = r
                .deadlines
                .records()
                .iter()
                .filter(|d| d.label == "frame")
                .count();
            let dropped = r
                .deadlines
                .records()
                .iter()
                .filter(|d| d.label == "frame_dropped")
                .count();
            ElasticPoint {
                step,
                mhz: table.freq(step).as_mhz_f64(),
                energy_j: r.energy.as_joules(),
                fps: shown as f64 / RUN_SECS as f64,
                drop_rate: dropped as f64 / (shown + dropped).max(1) as f64,
            }
        })
        .collect();
    Elastic { points }
}

impl Elastic {
    /// The cheapest step that still achieves at least `fps`.
    pub fn cheapest_at_fps(&self, fps: f64) -> Option<&ElasticPoint> {
        self.points
            .iter()
            .filter(|p| p.fps >= fps)
            .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
    }

    /// Writes the curve as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["step", "mhz", "energy_j", "fps", "drop_rate"],
            &self
                .points
                .iter()
                .map(|p| {
                    vec![
                        p.step.to_string(),
                        format!("{}", p.mhz),
                        format!("{:.3}", p.energy_j),
                        format!("{:.2}", p.fps),
                        format!("{:.4}", p.drop_rate),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("elastic", "energy_vs_framerate", &doc).map(|_| ())
    }
}

impl fmt::Display for Elastic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Elastic MPEG (frame-dropping player), {}s per step",
            RUN_SECS
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}", p.mhz),
                    format!("{:.1} J", p.energy_j),
                    format!("{:.1}", p.fps),
                    format!("{:.0}%", p.drop_rate * 100.0),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &["MHz", "energy", "fps", "dropped"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> &'static Elastic {
        use std::sync::OnceLock;
        static CELL: OnceLock<Elastic> = OnceLock::new();
        CELL.get_or_init(|| run(1))
    }

    #[test]
    fn frame_rate_rises_with_clock() {
        let c = curve();
        for w in c.points.windows(2) {
            assert!(
                w[1].fps >= w[0].fps - 0.4,
                "{} -> {} MHz dropped fps {} -> {}",
                w[0].mhz,
                w[1].mhz,
                w[0].fps,
                w[1].fps
            );
        }
        // Full rate at the top, roughly half rate at the bottom.
        assert!(c.points[10].fps > 14.5);
        assert!(c.points[0].fps < 10.0);
    }

    #[test]
    fn energy_and_quality_trade_off() {
        let c = curve();
        // The bottom step is the cheapest and the worst.
        let bottom = &c.points[0];
        let top = &c.points[10];
        assert!(bottom.energy_j < top.energy_j);
        assert!(bottom.drop_rate > 0.2);
        assert!(top.drop_rate < 0.01);
    }

    #[test]
    fn full_quality_is_cheapest_at_132mhz() {
        // The elastic curve agrees with the paper's inelastic finding:
        // the cheapest full-rate point is ~132.7 MHz, not the top step.
        let c = curve();
        let best = c.cheapest_at_fps(14.75).expect("some full-rate point");
        assert_eq!(best.step, 5, "cheapest full-rate step = {}", best.step);
    }

    #[test]
    fn drop_rate_is_monotone_nonincreasing() {
        let c = curve();
        for w in c.points.windows(2) {
            assert!(
                w[1].drop_rate <= w[0].drop_rate + 0.03,
                "{} -> {} MHz drop rate rose {:.2} -> {:.2}",
                w[0].mhz,
                w[1].mhz,
                w[0].drop_rate,
                w[1].drop_rate
            );
        }
    }
}
