//! The assembled Itsy: CPU core, memory timing, power model, GPIO and
//! (optionally) a battery.

use itsy_hw::{Battery, ClockTable, CpuCore, DeviceSet, Gpio, MemoryTiming, PowerModel, StepIndex};

/// One Itsy unit, ready to run a kernel.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The SA-1100 core (clock/voltage state machine).
    pub cpu: CpuCore,
    /// DRAM timing (the Table 3 model by default).
    pub mem: MemoryTiming,
    /// The power model.
    pub power: PowerModel,
    /// GPIO bank (DAQ trigger and switch-cost instrumentation).
    pub gpio: Gpio,
    /// Optional battery; when present it drains as energy flows.
    pub battery: Option<Battery>,
    /// Peripheral devices currently powered.
    pub devices: DeviceSet,
}

impl Machine {
    /// A stock Itsy v1.5 at the given initial clock step, mains-powered
    /// (no battery), with the given peripherals active.
    pub fn itsy(initial_step: StepIndex, devices: DeviceSet) -> Self {
        Machine {
            cpu: CpuCore::new(ClockTable::sa1100(), initial_step),
            mem: MemoryTiming::sa1100_edo(),
            power: PowerModel::default(),
            gpio: Gpio::new(),
            battery: None,
            devices,
        }
    }

    /// Swaps in a different memory timing model (for ablations).
    pub fn with_memory(mut self, mem: MemoryTiming) -> Self {
        self.mem = mem;
        self
    }

    /// Attaches a battery.
    pub fn with_battery(mut self, battery: Battery) -> Self {
        self.battery = Some(battery);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itsy_hw::battery::BatteryParams;

    #[test]
    fn stock_itsy_configuration() {
        let m = Machine::itsy(10, DeviceSet::AV);
        assert_eq!(m.cpu.step(), 10);
        assert_eq!(m.mem.word_cycles(10), 20);
        assert!(m.battery.is_none());
        assert!(m.devices.lcd && m.devices.audio);
    }

    #[test]
    fn builders_compose() {
        let m = Machine::itsy(0, DeviceSet::NONE)
            .with_memory(MemoryTiming::ideal(&ClockTable::sa1100(), 10, 30))
            .with_battery(Battery::new(BatteryParams::default()));
        assert_eq!(m.mem.word_cycles(10), 10);
        assert!(m.battery.is_some());
    }
}
