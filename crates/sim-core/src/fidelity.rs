//! Simulation fidelity: what a run is obligated to record.
//!
//! Every simulation computes the same *physics* — task execution, policy
//! decisions, clock/voltage switches, battery drain — but consumers
//! differ in what they read back. Figure-producing experiments consume
//! per-tick [`crate::TimeSeries`] samples; the fleet path folds each
//! device into integer-exact sketches and discards the per-tick data
//! unread. [`SimFidelity`] names that contract so the kernel can skip
//! work whose output nobody will observe.
//!
//! The two modes share one invariant: **integer accounting and policy
//! decision sequences are bit-identical**. Only floating-point
//! *derived* observables (series samples, and therefore series-derived
//! means plus the energy summation order) may differ; see
//! `DESIGN.md` §9 for the proof obligations and the per-span energy
//! error bound.

use core::fmt;

/// How much of a simulation's per-tick state must be materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimFidelity {
    /// Record everything: per-tick utilization / frequency /
    /// work-fraction / power series, the scheduler log, power-change
    /// events. This is the historical behavior and the default — every
    /// golden output and SIM_VERSION ≤ 3 cache key was produced in
    /// this mode.
    #[default]
    Full,
    /// Record only run summaries: integer mode accounting, switch and
    /// deadline counters, closed-form means, compensated energy
    /// totals. No `TimeSeries` is emitted and uniform spans may be
    /// committed in O(1) instead of O(ticks). Specs carrying this mode
    /// key under SIM_VERSION 4.
    Summary,
}

impl SimFidelity {
    /// True when per-tick series/log emission is skipped.
    pub fn is_summary(self) -> bool {
        matches!(self, SimFidelity::Summary)
    }

    /// Canonical lower-case tag used in content keys and CLI flags.
    pub fn tag(self) -> &'static str {
        match self {
            SimFidelity::Full => "full",
            SimFidelity::Summary => "summary",
        }
    }

    /// Parses the canonical tag (as accepted by `--fidelity`).
    pub fn parse(s: &str) -> Option<SimFidelity> {
        match s {
            "full" => Some(SimFidelity::Full),
            "summary" => Some(SimFidelity::Summary),
            _ => None,
        }
    }
}

impl fmt::Display for SimFidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full() {
        assert_eq!(SimFidelity::default(), SimFidelity::Full);
        assert!(!SimFidelity::default().is_summary());
    }

    #[test]
    fn tags_round_trip() {
        for f in [SimFidelity::Full, SimFidelity::Summary] {
            assert_eq!(SimFidelity::parse(f.tag()), Some(f));
            assert_eq!(format!("{f}"), f.tag());
        }
        assert_eq!(SimFidelity::parse("FULL"), None);
        assert_eq!(SimFidelity::parse(""), None);
    }
}
