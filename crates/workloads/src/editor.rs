//! The TalkingEditor workload: the "mpedit" Java editor reading files
//! aloud through the DECtalk synthesizer.
//!
//! §4.2: the trace opens a file through the file dialogue, has it
//! spoken aloud, then opens and speaks a second file — 70 s total.
//! §5.1 describes the demand structure Figure 3(d)/4(d) shows: "bursty
//! behavior prior to the speech synthesis \[from\] dragging images,
//! JIT'ing applications and opening files. Following this are long
//! bursts of computation as the text is actually synthesized and sent
//! to the OSS-compatible sound driver. Finally, more cycles are taken
//! by the sound driver. Thus, this application is bursty at a higher
//! level."
//!
//! The synthesis deadline is an audio underrun: each speech chunk must
//! be ready before the previous chunk finishes playing.

use kernel_sim::{TaskAction, TaskBehavior, TaskCtx};
use sim_core::{Rng, SimDuration, SimTime};

use crate::trace::InputTrace;
use crate::web::Browser;

/// The editor + synthesizer + poller bundle.
pub struct TalkingEditorWorkload {
    seed: u64,
}

impl TalkingEditorWorkload {
    /// Creates the workload.
    pub fn new(seed: u64) -> Self {
        TalkingEditorWorkload { seed }
    }

    /// UI interaction trace: the file dialogue and editor fiddling
    /// before and between the two read-alouds.
    pub fn ui_trace(seed: u64) -> InputTrace {
        let mut rng = Rng::new(seed ^ 0x6d70_6564);
        let mut trace = InputTrace::new();
        let response = SimDuration::from_millis(300);
        // Dialogue navigation: clicks every few hundred ms, each a
        // medium render burst (plus JIT on first use).
        trace.record(
            SimTime::from_millis(800),
            crate::work_ms_at_top(700.0, 0.4),
            SimDuration::from_millis(1_500),
        );
        let mut t = SimTime::from_millis(2_000);
        loop {
            t += SimDuration::from_millis(300 + rng.below(1_500));
            if t >= SimTime::from_secs(12) {
                break;
            }
            let ms = rng.uniform_range(30.0, 180.0);
            trace.record(t, crate::work_ms_at_top(ms, 0.4), response);
        }
        // Second file selection around t = 40 s.
        let mut t = SimTime::from_secs(40);
        loop {
            t += SimDuration::from_millis(300 + rng.below(1_200));
            if t >= SimTime::from_secs(45) {
                break;
            }
            let ms = rng.uniform_range(30.0, 150.0);
            trace.record(t, crate::work_ms_at_top(ms, 0.4), response);
        }
        trace
    }

    /// Editor UI task, DECtalk task and the Kaffe poller.
    pub fn into_tasks(self) -> Vec<Box<dyn TaskBehavior>> {
        vec![
            Box::new(Browser::new(Self::ui_trace(self.seed)).with_label("mpedit")),
            Box::new(Dectalk::new(self.seed)),
            Box::new(crate::java::JavaPoller::new()),
        ]
    }
}

/// One passage of text to speak.
#[derive(Debug, Clone, Copy)]
struct Passage {
    /// When synthesis may begin (the user pressed "speak").
    start: SimTime,
    /// Number of speech chunks.
    chunks: u32,
}

/// The DECtalk synthesizer process.
///
/// Each chunk produces `chunk_play` seconds of audio and costs about
/// 70 % of that in CPU at the top clock — long saturated bursts, as in
/// Figure 4(d). The synthesizer works ahead, but only up to a bounded
/// buffer.
pub struct Dectalk {
    rng: Rng,
    passages: Vec<Passage>,
    passage: usize,
    chunk: u32,
    chunk_play: SimDuration,
    pending: bool,
    /// Playback position: when the chunk currently being synthesized is
    /// due at the sound driver.
    due: SimTime,
    /// How many chunks of audio the driver buffers.
    buffer_chunks: u32,
}

impl Dectalk {
    /// Creates the synthesizer with the paper's two passages (first
    /// file spoken from ~14 s, second from ~46 s).
    pub fn new(seed: u64) -> Self {
        Dectalk {
            rng: Rng::new(seed ^ 0x6474_616c),
            passages: vec![
                Passage {
                    start: SimTime::from_secs(14),
                    chunks: 11,
                },
                Passage {
                    start: SimTime::from_secs(46),
                    chunks: 10,
                },
            ],
            passage: 0,
            chunk: 0,
            chunk_play: SimDuration::from_secs(2),
            pending: false,
            due: SimTime::ZERO,
            buffer_chunks: 2,
        }
    }

    fn chunk_work(&mut self) -> itsy_hw::Work {
        // ~1.2 s of CPU at the top clock per 2 s chunk, with variance
        // from text difficulty; feasible at 132.7 MHz (≈1.6 s/chunk)
        // but not at 59 MHz (≈3.6 s/chunk).
        let ms = self.rng.uniform_range(1_050.0, 1_350.0);
        crate::work_ms_at_top(ms, 0.35)
    }
}

impl TaskBehavior for Dectalk {
    fn next_action(&mut self, ctx: &mut TaskCtx<'_>) -> TaskAction {
        if self.pending {
            // Chunk synthesized: underrun deadline.
            ctx.report_deadline("speech", self.due);
            self.pending = false;
            self.chunk += 1;
        }
        let Some(p) = self.passages.get(self.passage).copied() else {
            return TaskAction::Exit;
        };
        if ctx.now < p.start {
            return TaskAction::SleepUntil(p.start);
        }
        if self.chunk >= p.chunks {
            self.passage += 1;
            self.chunk = 0;
            return match self.passages.get(self.passage) {
                Some(next) => TaskAction::SleepUntil(next.start),
                None => TaskAction::Exit,
            };
        }
        // Chunk k plays at start + (k+1) * chunk_play (one chunk of
        // initial buffering).
        self.due = p.start
            + SimDuration::from_micros((self.chunk as u64 + 1) * self.chunk_play.as_micros());
        // Bounded work-ahead: don't synthesize more than `buffer_chunks`
        // ahead of playback.
        let earliest = self.due.saturating_duration_since(SimTime::ZERO);
        let buffer =
            SimDuration::from_micros((self.buffer_chunks as u64 + 1) * self.chunk_play.as_micros());
        if earliest > buffer {
            let gate = SimTime::ZERO + (earliest - buffer);
            if ctx.now < gate {
                return TaskAction::SleepUntil(gate);
            }
        }
        self.pending = true;
        TaskAction::Compute(self.chunk_work())
    }

    fn label(&self) -> String {
        "dectalk".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itsy_hw::DeviceSet;
    use kernel_sim::{Kernel, KernelConfig, Machine};

    fn run(step: usize) -> kernel_sim::KernelReport {
        let mut k = Kernel::new(
            Machine::itsy(step, DeviceSet::AV),
            KernelConfig {
                duration: SimDuration::from_secs(70),
                ..KernelConfig::default()
            },
        );
        for t in TalkingEditorWorkload::new(4).into_tasks() {
            k.spawn(t);
        }
        k.run()
    }

    #[test]
    fn structure_matches_figure_4d() {
        let r = run(10);
        // Early phase (0-12 s): bursty, moderate mean.
        let early = r
            .utilization
            .window(SimTime::ZERO, SimTime::from_secs(12))
            .mean()
            .unwrap();
        // Synthesis phase (15-30 s): long heavy bursts.
        let synth = r
            .utilization
            .window(SimTime::from_secs(15), SimTime::from_secs(30))
            .mean()
            .unwrap();
        // Gap between passages (~36-40 s): near idle.
        let gap = r
            .utilization
            .window(SimTime::from_secs(36), SimTime::from_secs(40))
            .mean()
            .unwrap();
        assert!(synth > 0.5, "synthesis mean = {synth}");
        assert!(
            synth > early,
            "synthesis ({synth}) should exceed UI phase ({early})"
        );
        assert!(gap < 0.2, "inter-passage gap mean = {gap}");
    }

    #[test]
    fn no_underruns_at_full_speed() {
        let r = run(10);
        let speech: Vec<_> = r
            .deadlines
            .records()
            .iter()
            .filter(|d| d.label == "speech")
            .collect();
        assert_eq!(speech.len(), 21, "11 + 10 chunks");
        assert_eq!(r.deadlines.misses_of("speech", SimDuration::ZERO), 0);
    }

    #[test]
    fn speech_meets_deadlines_at_132mhz() {
        // Like MPEG, the editor tolerated 132.7 MHz in the paper.
        let r = run(5);
        assert_eq!(
            r.deadlines
                .misses_of("speech", SimDuration::from_millis(100)),
            0,
            "max lateness {}",
            r.deadlines.max_lateness()
        );
    }

    #[test]
    fn speech_underruns_at_59mhz() {
        // 1.4 s of top-clock work per 2 s chunk cannot fit at 59 MHz
        // (3.5x slowdown).
        let r = run(0);
        assert!(
            r.deadlines
                .misses_of("speech", SimDuration::from_millis(100))
                > 0
        );
    }
}
