//! `repro bench`: a self-contained performance-regression harness.
//!
//! One invocation measures six numbers that bracket the repo's
//! performance envelope and writes them as `BENCH_<n>.json` (plus a
//! `BENCH_latest.json` alias for tooling):
//!
//! - **cold sweep** — the quick policy grid simulated from an empty
//!   cache with the span profiler on: end-to-end throughput, job
//!   latency percentiles, and the per-stage self-time breakdown;
//! - **warm sweep** — the same grid re-run against the now-populated
//!   cache, once with the profiler off and once on. The wall-clock
//!   delta is the *measured profiler overhead*, and the hit-service
//!   histogram gives cache-probe latency percentiles;
//! - **hot loop** — one MPEG cell under the paper's best policy run
//!   back-to-back on the calling thread: simulator-core throughput
//!   with no engine around it. Timed three ways (batched full
//!   fidelity, tick-by-tick reference, and summary fidelity), each as
//!   the median of [`BenchConfig::hot_rounds`] timed rounds so one
//!   scheduler hiccup cannot sink the measured speedups;
//! - **trace export** — the `avgn` scenario's structured-event
//!   export, rated in events per second;
//! - **fleet stream** — a seeded device population pushed through
//!   [`engine::Engine::run_stream`], rated in devices per second (the
//!   streaming path's end-to-end throughput, including population
//!   generation and sketch folding);
//! - **optgap** — the optimality-gap suite ([`crate::optgap_cmd`]):
//!   trace recording, YDS critical intervals, and the online canon,
//!   rated in result rows per second.
//!
//! The report's flat `"gate"` object holds the throughput numbers
//! plus the batched-vs-reference speedup (so a baseline can pin the
//! fast path at >= 1.0x, i.e. never slower than the oracle loop). `repro bench --baseline <file>` re-reads a previous
//! report's gate and fails (exit code 1) when any metric regresses
//! more than `--bench-tolerance` percent — wall-clock throughput is
//! machine-dependent, so baselines only travel within one machine
//! (or a deliberately conservative checked-in floor, as CI uses).
//!
//! `run` owns the global profiling flag for its duration (on for the
//! instrumented phases, off for the timing-only ones) and leaves it
//! disabled.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use engine::{Engine, EngineConfig, JobSpec, WorkloadSpec};
use policies::PolicyDesc;
use sim_core::{rate_per_sec, SimFidelity};
use workloads::Benchmark;

use crate::{sweep, trace_exp};

/// Knobs for one bench run. `Default` is the real harness; tests
/// shrink the grid and iteration counts.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Simulation seed (shared by every phase).
    pub seed: u64,
    /// Engine worker threads; `0` means one per core.
    pub jobs: usize,
    /// The sweep grid both cache phases run.
    pub grid: sweep::SweepConfig,
    /// Back-to-back single-thread simulations in the hot loop.
    pub hot_iters: u32,
    /// Simulated seconds per hot-loop iteration.
    pub hot_secs: u64,
    /// Timed rounds per hot-loop variant; the *median* round is
    /// reported. One round of a few milliseconds is inside scheduler
    /// noise — medians of several rounds keep `speedup_vs_reference`
    /// from dipping below 1.0 on a preempted round.
    pub hot_rounds: u32,
    /// Warm-sweep repetitions per profiler state (minimum wall time
    /// is reported, the usual noise floor for micro wall clocks).
    pub warm_reps: u32,
    /// Consecutive warm batches timed as one repetition. A single
    /// all-hit batch finishes in well under a millisecond — far too
    /// little signal to subtract two wall clocks; a block of rounds
    /// puts the measurement tens of milliseconds above timer noise.
    pub warm_rounds: u32,
    /// Simulated seconds for the trace-export phase.
    pub trace_secs: u64,
    /// Devices streamed through the fleet phase (1-second runs each).
    pub fleet_devices: u64,
    /// Fidelity the fleet phase simulates its devices at (the fleet
    /// default is [`SimFidelity::Summary`]; `--fidelity full` restores
    /// the historical series-recording path for comparison).
    pub fleet_fidelity: SimFidelity,
    /// Seconds of work trace per benchmark in the optgap phase.
    pub optgap_secs: u64,
    /// Engine state root. `None` uses (and afterwards removes) a
    /// process-scoped temp directory, guaranteeing a cold start.
    pub state_root: Option<PathBuf>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            seed: 1,
            jobs: 0,
            grid: sweep::SweepConfig::quick(),
            hot_iters: 1_000,
            hot_secs: 2,
            hot_rounds: 3,
            warm_reps: 5,
            warm_rounds: 50,
            trace_secs: 3,
            fleet_devices: 2_000,
            fleet_fidelity: SimFidelity::Summary,
            optgap_secs: 5,
            state_root: None,
        }
    }
}

/// Times `iters` calls of `f` once per round and returns the median
/// round's wall time in µs (rounds are sorted; even counts take the
/// lower middle). Medians shrug off the occasional preempted round
/// that a single timing or a mean would absorb.
fn median_round_us(rounds: u32, iters: u32, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..rounds.max(1))
        .map(|_| {
            let started = Instant::now();
            for _ in 0..iters {
                f();
            }
            started.elapsed().as_micros() as u64
        })
        .collect();
    times.sort_unstable();
    times[(times.len() - 1) / 2]
}

/// The finished report: the JSON document, its parsed gate, and a
/// short human summary for the terminal.
pub struct BenchReport {
    /// The full `BENCH_*.json` document.
    pub json: String,
    /// The gate metrics (`cold_cells_per_sec`, …), as written.
    pub gate: BTreeMap<String, f64>,
    /// One line per phase for stdout.
    pub summary: String,
}

/// Runs every phase and assembles the report. Does not touch the
/// filesystem beyond the engine state root (see
/// [`BenchConfig::state_root`]); writing the report is
/// [`BenchReport::save`].
pub fn run(cfg: &BenchConfig) -> BenchReport {
    let (root, scratch) = match &cfg.state_root {
        Some(r) => (r.clone(), false),
        None => (
            std::env::temp_dir().join(format!("repro-bench-{}", std::process::id())),
            true,
        ),
    };
    if scratch {
        let _ = std::fs::remove_dir_all(&root);
    }
    let engine_config = || EngineConfig {
        jobs: cfg.jobs,
        state_root: Some(root.clone()),
        use_cache: true,
        ..EngineConfig::hermetic()
    };
    let specs = sweep::specs(&cfg.grid, cfg.seed);

    // Phase 1: cold sweep, profiler on.
    obs::span::set_enabled(true);
    let _ = obs::span::drain();
    let cold = Engine::new(engine_config()).run_batch("bench", &specs);
    obs::span::set_enabled(false);

    // Phase 2: warm sweep. Profiler off first (the clean timing),
    // then on (the overhead measurement + hit-service histogram).
    let warm_engine = Engine::new(engine_config());
    let reps = cfg.warm_reps.max(1);
    let rounds = cfg.warm_rounds.max(1);
    let mut warm_plain_us = u64::MAX;
    for _ in 0..reps {
        let started = Instant::now();
        for _ in 0..rounds {
            std::hint::black_box(warm_engine.run_batch("bench", &specs));
        }
        let per_batch = started.elapsed().as_micros() as u64 / rounds as u64;
        warm_plain_us = warm_plain_us.min(per_batch);
    }
    obs::span::set_enabled(true);
    let _ = obs::span::drain();
    let mut warm_profiled_us = u64::MAX;
    let mut warm = None;
    for _ in 0..reps {
        let started = Instant::now();
        for _ in 0..rounds {
            warm = Some(std::hint::black_box(warm_engine.run_batch("bench", &specs)));
        }
        let per_batch = started.elapsed().as_micros() as u64 / rounds as u64;
        warm_profiled_us = warm_profiled_us.min(per_batch);
    }
    obs::span::set_enabled(false);
    let _ = obs::span::drain();
    let warm = warm.expect("warm_reps >= 1");
    let overhead_pct = if warm_plain_us > 0 {
        (warm_profiled_us as f64 - warm_plain_us as f64) / warm_plain_us as f64 * 100.0
    } else {
        0.0
    };
    let hit_hist = warm.worker_metrics.log_histogram("cache_hit_service_us");
    let hit_p = |q: f64| hit_hist.and_then(|h| h.percentile(q)).unwrap_or(0.0);

    // Phase 3: hot loop — the simulator core alone, single thread.
    // Timed three ways, each as a median of `hot_rounds` rounds: the
    // batched full-fidelity kernel (the production path, gated), the
    // tick-by-tick reference oracle, and the summary-fidelity span
    // skipper the fleet runs on. The report carries both speedups
    // against the reference alongside the raw throughputs.
    let hot_spec = JobSpec::new(
        WorkloadSpec::Benchmark(Benchmark::Mpeg),
        PolicyDesc::best_from_paper(),
        cfg.hot_secs,
        cfg.seed,
    );
    let summary_spec = hot_spec.clone().with_fidelity(SimFidelity::Summary);
    let hot_rounds = cfg.hot_rounds.max(1);
    let hot_us = median_round_us(hot_rounds, cfg.hot_iters, || {
        std::hint::black_box(hot_spec.execute());
    });
    let ref_iters = (cfg.hot_iters / 4).max(1);
    let ref_us = median_round_us(hot_rounds, ref_iters, || {
        std::hint::black_box(hot_spec.execute_reference());
    });
    let summary_us = median_round_us(hot_rounds, cfg.hot_iters, || {
        std::hint::black_box(summary_spec.execute());
    });
    let per_iter = |wall_us: u64, iters: u32| wall_us as f64 / iters.max(1) as f64;
    let speedup_vs = |wall_us: u64, iters: u32| {
        if wall_us > 0 {
            per_iter(ref_us, ref_iters) / per_iter(wall_us, iters)
        } else {
            0.0
        }
    };
    let hot_speedup = speedup_vs(hot_us, cfg.hot_iters);
    let summary_speedup = speedup_vs(summary_us, cfg.hot_iters);

    // Phase 4: trace export.
    let trace_started = Instant::now();
    let trace = trace_exp::export("avgn", cfg.seed, Some(cfg.trace_secs))
        .expect("avgn is a known scenario");
    let trace_us = trace_started.elapsed().as_micros() as u64;

    // Phase 5: fleet stream — population throughput through
    // `run_stream` (no cache involved; streaming skips it).
    let population =
        fleet::PopulationConfig::new(cfg.fleet_devices, cfg.seed).with_fidelity(cfg.fleet_fidelity);
    let fleet_out = fleet::run(&Engine::new(engine_config()), "bench-fleet", &population);

    // Phase 6: optgap — trace recording plus the exact-optimum and
    // online-canon computations, end to end (no filesystem output).
    let optgap_cfg = crate::optgap_cmd::OptgapConfig {
        seed: cfg.seed,
        secs: cfg.optgap_secs,
        ..crate::optgap_cmd::OptgapConfig::default()
    };
    let optgap_started = Instant::now();
    let optgap = crate::optgap_cmd::run(&optgap_cfg);
    let optgap_us = optgap_started.elapsed().as_micros() as u64;

    if scratch {
        let _ = std::fs::remove_dir_all(&root);
    }

    let gate: BTreeMap<String, f64> = [
        ("cold_cells_per_sec", cold.stats.cells_per_sec()),
        ("fleet_devices_per_sec", fleet_out.stats.devices_per_sec()),
        (
            "warm_cells_per_sec",
            rate_per_sec(cold.stats.total as u64, warm_plain_us),
        ),
        (
            "hot_sims_per_sec",
            rate_per_sec(cfg.hot_iters as u64, hot_us),
        ),
        (
            "summary_sims_per_sec",
            rate_per_sec(cfg.hot_iters as u64, summary_us),
        ),
        ("speedup_vs_reference", hot_speedup),
        (
            "trace_events_per_sec",
            rate_per_sec(trace.events as u64, trace_us),
        ),
        (
            "optgap_rows_per_sec",
            rate_per_sec(optgap.rows.len() as u64, optgap_us),
        ),
    ]
    .into_iter()
    // Rounded to the 6 decimals the JSON carries, so the in-memory
    // gate and a re-parse of the written file agree exactly.
    .map(|(k, v)| (k.to_string(), (v * 1e6).round() / 1e6))
    .collect();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench-v1\",");
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(json, "  \"jobs\": {},", cfg.jobs);
    // Host provenance: a BENCH number is meaningless without knowing
    // what machine produced it, so record the facts next to the gate.
    json.push_str("  \"host\": {\n");
    let cpu = obs::cpu_model().unwrap_or_else(|| "unknown".to_string());
    let _ = writeln!(
        json,
        "    \"cpu_model\": \"{}\",",
        cpu.replace('\\', "\\\\").replace('"', "\\\"")
    );
    let _ = writeln!(json, "    \"cores\": {},", obs::core_count());
    let _ = writeln!(
        json,
        "    \"kernel\": \"{}\"",
        obs::kernel_version()
            .unwrap_or_else(|| "unknown".to_string())
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
    );
    json.push_str("  },\n");
    json.push_str("  \"cold_sweep\": {\n");
    let _ = writeln!(json, "    \"cells\": {},", cold.stats.total);
    let _ = writeln!(json, "    \"executed\": {},", cold.stats.executed);
    let _ = writeln!(json, "    \"wall_us\": {},", cold.stats.elapsed_us);
    let _ = writeln!(
        json,
        "    \"cells_per_sec\": {:.6},",
        cold.stats.cells_per_sec()
    );
    let _ = writeln!(
        json,
        "    \"job_latency_p50_us\": {:.6},",
        cold.metrics.job_latency_p50_us
    );
    let _ = writeln!(
        json,
        "    \"job_latency_p90_us\": {:.6},",
        cold.metrics.job_latency_p90_us
    );
    let _ = writeln!(
        json,
        "    \"job_latency_p99_us\": {:.6},",
        cold.metrics.job_latency_p99_us
    );
    let _ = writeln!(
        json,
        "    \"job_latency_max_us\": {:.6},",
        cold.metrics.job_latency_max_us
    );
    json.push_str("    \"stages\": [");
    for (i, s) in cold.metrics.stages.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"stage\": \"{}\", \"total_us\": {}, \"share\": {:.6}}}",
            s.stage, s.total_us, s.share
        );
    }
    json.push_str("]\n  },\n");
    json.push_str("  \"warm_sweep\": {\n");
    let _ = writeln!(json, "    \"cells\": {},", warm.stats.total);
    let _ = writeln!(json, "    \"cache_hits\": {},", warm.stats.cache_hits);
    let _ = writeln!(json, "    \"reps\": {reps},");
    let _ = writeln!(json, "    \"rounds\": {rounds},");
    let _ = writeln!(json, "    \"wall_us_unprofiled\": {warm_plain_us},");
    let _ = writeln!(json, "    \"wall_us_profiled\": {warm_profiled_us},");
    let _ = writeln!(json, "    \"profiler_overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(
        json,
        "    \"cache_hit_service_p50_us\": {:.6},",
        hit_p(0.50)
    );
    let _ = writeln!(
        json,
        "    \"cache_hit_service_p99_us\": {:.6},",
        hit_p(0.99)
    );
    let _ = writeln!(
        json,
        "    \"cells_per_sec\": {:.6}",
        gate["warm_cells_per_sec"]
    );
    json.push_str("  },\n");
    json.push_str("  \"hot_loop\": {\n");
    let _ = writeln!(json, "    \"iters\": {},", cfg.hot_iters);
    let _ = writeln!(json, "    \"sim_secs\": {},", cfg.hot_secs);
    let _ = writeln!(json, "    \"rounds\": {hot_rounds},");
    let _ = writeln!(json, "    \"wall_us\": {hot_us},");
    let _ = writeln!(json, "    \"reference_iters\": {ref_iters},");
    let _ = writeln!(json, "    \"reference_wall_us\": {ref_us},");
    let _ = writeln!(
        json,
        "    \"reference_sims_per_sec\": {:.6},",
        rate_per_sec(ref_iters as u64, ref_us)
    );
    let _ = writeln!(json, "    \"speedup_vs_reference\": {hot_speedup:.6},");
    let _ = writeln!(json, "    \"summary_wall_us\": {summary_us},");
    let _ = writeln!(
        json,
        "    \"summary_sims_per_sec\": {:.6},",
        gate["summary_sims_per_sec"]
    );
    let _ = writeln!(
        json,
        "    \"summary_speedup_vs_reference\": {summary_speedup:.6},"
    );
    let _ = writeln!(
        json,
        "    \"sims_per_sec\": {:.6}",
        gate["hot_sims_per_sec"]
    );
    json.push_str("  },\n");
    json.push_str("  \"trace_export\": {\n");
    let _ = writeln!(json, "    \"scenario\": \"avgn\",");
    let _ = writeln!(json, "    \"events\": {},", trace.events);
    let _ = writeln!(json, "    \"wall_us\": {trace_us},");
    let _ = writeln!(
        json,
        "    \"events_per_sec\": {:.6}",
        gate["trace_events_per_sec"]
    );
    json.push_str("  },\n");
    json.push_str("  \"fleet\": {\n");
    let _ = writeln!(json, "    \"fidelity\": \"{}\",", cfg.fleet_fidelity);
    let _ = writeln!(json, "    \"devices\": {},", fleet_out.stats.total);
    let _ = writeln!(json, "    \"executed\": {},", fleet_out.stats.executed);
    let _ = writeln!(json, "    \"wall_us\": {},", fleet_out.stats.elapsed_us);
    let _ = writeln!(
        json,
        "    \"peak_rss_bytes\": {},",
        fleet_out.metrics.peak_rss_bytes
    );
    let _ = writeln!(
        json,
        "    \"devices_per_sec\": {:.6}",
        gate["fleet_devices_per_sec"]
    );
    json.push_str("  },\n");
    json.push_str("  \"optgap\": {\n");
    let _ = writeln!(json, "    \"secs\": {},", cfg.optgap_secs);
    let _ = writeln!(json, "    \"rows\": {},", optgap.rows.len());
    let _ = writeln!(json, "    \"wall_us\": {optgap_us},");
    let _ = writeln!(
        json,
        "    \"rows_per_sec\": {:.6}",
        gate["optgap_rows_per_sec"]
    );
    json.push_str("  },\n");
    json.push_str("  \"gate\": {\n");
    for (i, (k, v)) in gate.iter().enumerate() {
        let comma = if i + 1 < gate.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{k}\": {v:.6}{comma}");
    }
    json.push_str("  }\n}\n");

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "cold : {} cells in {:.2} s -> {:.2} cells/s (job p50 {:.1} ms, p99 {:.1} ms)",
        cold.stats.total,
        cold.stats.elapsed_us as f64 / 1e6,
        gate["cold_cells_per_sec"],
        cold.metrics.job_latency_p50_us / 1e3,
        cold.metrics.job_latency_p99_us / 1e3,
    );
    let _ = writeln!(
        summary,
        "warm : {} hits in {:.1} ms/batch -> {:.0} cells/s (profiler overhead {:+.2} %)",
        warm.stats.cache_hits,
        warm_plain_us as f64 / 1e3,
        gate["warm_cells_per_sec"],
        overhead_pct,
    );
    let _ = writeln!(
        summary,
        "hot  : {} x {} s MPEG sims -> {:.2} sims/s ({:.2}x vs reference kernel, median of {} rounds)",
        cfg.hot_iters, cfg.hot_secs, gate["hot_sims_per_sec"], hot_speedup, hot_rounds,
    );
    let _ = writeln!(
        summary,
        "summ : {} x {} s MPEG sims -> {:.2} sims/s ({:.2}x vs reference kernel)",
        cfg.hot_iters, cfg.hot_secs, gate["summary_sims_per_sec"], summary_speedup,
    );
    let _ = writeln!(
        summary,
        "trace: {} events in {:.1} ms -> {:.0} events/s",
        trace.events,
        trace_us as f64 / 1e3,
        gate["trace_events_per_sec"],
    );
    let _ = writeln!(
        summary,
        "fleet: {} devices ({}) in {:.2} s -> {:.0} devices/s (peak RSS {:.1} MiB)",
        fleet_out.stats.total,
        cfg.fleet_fidelity,
        fleet_out.stats.elapsed_us as f64 / 1e6,
        gate["fleet_devices_per_sec"],
        fleet_out.metrics.peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );
    let _ = writeln!(
        summary,
        "optgap: {} rows in {:.2} s -> {:.1} rows/s",
        optgap.rows.len(),
        optgap_us as f64 / 1e6,
        gate["optgap_rows_per_sec"],
    );

    BenchReport {
        json,
        gate,
        summary,
    }
}

/// The next free `BENCH_<n>.json` index in `dir` (1 when none exist;
/// `BENCH_latest.json` never counts).
pub fn next_index(dir: &Path) -> u32 {
    let mut max = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some(n) = name
                .to_string_lossy()
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                max = max.max(n);
            }
        }
    }
    max + 1
}

impl BenchReport {
    /// Writes `BENCH_<n>.json` (next free `n`) and `BENCH_latest.json`
    /// under `dir`, returning both paths.
    pub fn save(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let numbered = dir.join(format!("BENCH_{}.json", next_index(dir)));
        std::fs::write(&numbered, &self.json)?;
        let latest = dir.join("BENCH_latest.json");
        std::fs::write(&latest, &self.json)?;
        Ok((numbered, latest))
    }
}

/// Extracts the flat `"gate"` object from a `BENCH_*.json` document.
/// Returns `None` when there is no well-formed gate — the caller
/// treats that as a comparison failure, not a pass.
pub fn parse_gate(json: &str) -> Option<BTreeMap<String, f64>> {
    let at = json.find("\"gate\"")?;
    let rest = &json[at..];
    let open = rest.find('{')?;
    let close = rest.find('}')?;
    let body = rest.get(open + 1..close)?;
    let mut gate = BTreeMap::new();
    for pair in body.split(',') {
        let (key, value) = pair.split_once(':')?;
        let key = key.trim().trim_matches('"');
        gate.insert(key.to_string(), value.trim().parse::<f64>().ok()?);
    }
    Some(gate)
}

/// Compares a current gate against a baseline gate. A metric fails
/// when it drops more than `tolerance_pct` percent below the
/// baseline; baseline metrics missing from the current report fail
/// too (a silently vanished number is not a pass). Metrics only in
/// the current report are ignored, so gates can grow. Returns one
/// message per failure; empty means the gate holds.
pub fn compare(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    tolerance_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (metric, &base) in baseline {
        let floor = base * (1.0 - tolerance_pct / 100.0);
        match current.get(metric) {
            None => failures.push(format!("{metric}: missing (baseline {base:.2})")),
            Some(&now) if now < floor => failures.push(format!(
                "{metric}: {now:.2} < {floor:.2} (baseline {base:.2} - {tolerance_pct}%)"
            )),
            Some(_) => {}
        }
    }
    failures
}

#[cfg(test)]
pub(crate) fn profiling_lock() -> std::sync::MutexGuard<'static, ()> {
    // Serializes every test in this crate that flips the process-wide
    // profiling flag (here and in `trace_exp`).
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use policies::Hysteresis;
    use policies::SpeedChange;

    fn tiny() -> BenchConfig {
        BenchConfig {
            jobs: 2,
            grid: sweep::SweepConfig {
                benchmarks: vec![Benchmark::Mpeg],
                ns: vec![0],
                rules: vec![SpeedChange::Peg],
                thresholds: vec![Hysteresis::BEST],
                secs: 1,
            },
            hot_iters: 2,
            hot_secs: 1,
            hot_rounds: 1,
            warm_reps: 1,
            warm_rounds: 1,
            trace_secs: 1,
            fleet_devices: 8,
            optgap_secs: 1,
            ..BenchConfig::default()
        }
    }

    #[test]
    fn report_carries_every_section_and_a_positive_gate() {
        let _l = profiling_lock();
        let report = run(&tiny());
        for section in [
            "\"host\"",
            "\"cpu_model\"",
            "\"cores\"",
            "\"kernel\"",
            "\"cold_sweep\"",
            "\"warm_sweep\"",
            "\"hot_loop\"",
            "\"trace_export\"",
            "\"fleet\"",
            "\"optgap\"",
            "\"gate\"",
            "\"profiler_overhead_pct\"",
            "\"stages\"",
            "\"reference_sims_per_sec\"",
            "\"speedup_vs_reference\"",
            "\"summary_sims_per_sec\"",
            "\"summary_speedup_vs_reference\"",
            "\"fidelity\": \"summary\"",
        ] {
            assert!(report.json.contains(section), "missing {section}");
        }
        assert_eq!(report.gate.len(), 8);
        assert!(report.gate.contains_key("summary_sims_per_sec"));
        assert!(report.gate.contains_key("speedup_vs_reference"));
        for (metric, &value) in &report.gate {
            assert!(value > 0.0, "{metric} = {value}");
        }
        // The document round-trips through the baseline parser...
        let reread = parse_gate(&report.json).expect("gate parses back");
        assert_eq!(reread, report.gate);
        // ...and a report always passes against itself.
        assert!(compare(&report.gate, &reread, 0.0).is_empty());
        // The cold run profiled: a stage breakdown must be present.
        assert!(report.json.contains("\"stage\": \"simulate\""));
        // And the harness leaves global profiling off.
        assert!(!obs::span::enabled());
    }

    #[test]
    fn median_round_runs_every_round_and_iter() {
        let mut calls = 0u32;
        let _us = median_round_us(3, 4, || calls += 1);
        assert_eq!(calls, 12, "3 rounds x 4 iters");
        // Degenerate inputs clamp instead of panicking.
        let mut calls = 0u32;
        let _us = median_round_us(0, 1, || calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn compare_flags_regressions_and_missing_metrics() {
        let base: BTreeMap<String, f64> = [
            ("cold_cells_per_sec".to_string(), 100.0),
            ("gone_metric".to_string(), 5.0),
        ]
        .into();
        let current: BTreeMap<String, f64> = [
            ("cold_cells_per_sec".to_string(), 65.0),
            ("brand_new_metric".to_string(), 1.0),
        ]
        .into();
        // 65 is a 35 % drop: outside 30 %, inside 40 %.
        let fails = compare(&current, &base, 30.0);
        assert_eq!(fails.len(), 2, "{fails:?}");
        assert!(fails.iter().any(|f| f.contains("cold_cells_per_sec")));
        assert!(fails.iter().any(|f| f.contains("gone_metric")));
        assert_eq!(compare(&current, &base, 40.0).len(), 1);
    }

    #[test]
    fn parse_gate_reads_a_flat_object() {
        let gate = parse_gate(
            "{\n  \"other\": 1,\n  \"gate\": {\n    \"a\": 1.5,\n    \"b\": 2\n  }\n}\n",
        )
        .expect("well-formed");
        assert_eq!(gate.len(), 2);
        assert_eq!(gate["a"], 1.5);
        assert!(parse_gate("{}").is_none());
        assert!(parse_gate("{\"gate\": {\"a\": \"oops\"}}").is_none());
    }

    #[test]
    fn bench_files_number_sequentially() {
        let dir = std::env::temp_dir().join(format!("bench-number-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_index(&dir), 1);
        std::fs::write(dir.join("BENCH_3.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_latest.json"), "{}").unwrap();
        assert_eq!(next_index(&dir), 4);
        let report = BenchReport {
            json: "{\"gate\": {\"x\": 1}}\n".to_string(),
            gate: BTreeMap::new(),
            summary: String::new(),
        };
        let (numbered, latest) = report.save(&dir).unwrap();
        assert!(numbered.ends_with("BENCH_4.json"));
        assert_eq!(
            std::fs::read_to_string(&latest).unwrap(),
            report.json,
            "latest mirrors the numbered file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
