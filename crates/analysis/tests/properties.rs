//! Property-based tests of the signal-analysis toolkit.

use proptest::prelude::*;

use analysis::{
    avg_n_kernel, avg_n_response, convolve, dft_magnitudes, moving_average, square_wave,
    steady_state_band,
};

proptest! {
    /// Convolution is linear: conv(a*x + b*y, k) == a*conv(x,k) + b*conv(y,k).
    #[test]
    fn convolution_is_linear(
        x in proptest::collection::vec(-10.0f64..10.0, 4..64),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let y: Vec<f64> = x.iter().rev().copied().collect();
        let k = avg_n_kernel(3, x.len());
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(&u, &v)| a * u + b * v).collect();
        let lhs = convolve(&mixed, &k);
        let cx = convolve(&x, &k);
        let cy = convolve(&y, &k);
        for i in 0..x.len() {
            let rhs = a * cx[i] + b * cy[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-9);
        }
    }

    /// The moving average stays inside the input's convex hull.
    #[test]
    fn moving_average_bounded(
        sig in proptest::collection::vec(0.0f64..1.0, 1..256),
        window in 1usize..32,
    ) {
        let lo = sig.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sig.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in moving_average(&sig, window) {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    /// AVG_N response is bounded by the inputs seen so far and
    /// monotone under a step input.
    #[test]
    fn avg_n_step_response_monotone(n in 1u32..12, level in 0.1f64..1.0) {
        let inputs = vec![level; 200];
        let out = avg_n_response(n, &inputs);
        for w in out.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "step response must be monotone");
        }
        prop_assert!(out[199] <= level + 1e-12);
    }

    /// Parseval (up to the one-sided representation): spectrum energy
    /// of a real signal is within the right scale of its time-domain
    /// energy.
    #[test]
    fn dft_energy_scales(sig in proptest::collection::vec(-1.0f64..1.0, 16..17)) {
        // Power-of-two length so the FFT path runs.
        let n = sig.len();
        let mags = dft_magnitudes(&sig);
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        // Full two-sided spectral energy = n * time energy; the
        // one-sided half we return carries between half and all of it.
        let one_sided: f64 = mags.iter().map(|m| m * m).sum();
        prop_assert!(one_sided <= n as f64 * time_energy + 1e-6);
        prop_assert!(2.0 * one_sided + 1e-6 >= n as f64 * time_energy);
    }

    /// DC bin equals the sum of the signal.
    #[test]
    fn dc_bin_is_the_sum(sig in proptest::collection::vec(-5.0f64..5.0, 8..64)) {
        let mags = dft_magnitudes(&sig);
        let sum: f64 = sig.iter().sum();
        prop_assert!((mags[0] - sum.abs()).abs() < 1e-6);
    }

    /// Square waves have the duty cycle they claim, for any shape.
    #[test]
    fn square_wave_duty(busy in 0usize..20, idle in 0usize..20) {
        prop_assume!(busy + idle > 0);
        let len = (busy + idle) * 10;
        let w = square_wave(busy, idle, len);
        let duty = w.iter().sum::<f64>() / len as f64;
        let expect = busy as f64 / (busy + idle) as f64;
        prop_assert!((duty - expect).abs() < 1e-9);
    }

    /// The steady-state band of an AVG_N-filtered square wave always
    /// contains the wave's mean.
    #[test]
    fn band_contains_mean(n in 1u32..10, busy in 1usize..12, idle in 1usize..6) {
        let wave = square_wave(busy, idle, 600);
        let out = avg_n_response(n, &wave);
        let band = steady_state_band(&out, 300);
        let mean = busy as f64 / (busy + idle) as f64;
        prop_assert!(band.min <= mean + 1e-6 && mean <= band.max + 1e-6,
            "band [{}, {}] vs mean {}", band.min, band.max, mean);
    }
}

/// Oscillation swing decreases with N but never vanishes for the 9/1
/// wave — the paper's instability claim, swept.
#[test]
fn swing_decreases_but_never_vanishes() {
    let wave = square_wave(9, 1, 3000);
    let mut last = f64::INFINITY;
    for n in [1u32, 3, 6, 9] {
        let band = steady_state_band(&avg_n_response(n, &wave), 1500);
        assert!(band.swing() < last, "N={n}: swing must shrink");
        assert!(band.swing() > 0.01, "N={n}: swing must persist");
        last = band.swing();
    }
}
