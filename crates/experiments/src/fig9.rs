//! Figure 9: non-linear change in utilization with clock frequency.
//!
//! MPEG is run pinned at each of the eleven clock steps. The paper's
//! observation: "the processor utilization does not always vary
//! linearly with clock frequency. There is a distinct 'plateau' between
//! 162MHz and 176.9MHz ... induced by the varying number of clock
//! cycles needed for memory accesses" (Table 3's jump from 15/50 to
//! 18/60 cycles).
//!
//! We report two curves: measured utilization (what the kernel's
//! accounting sees, including the player's spin loop, which saturates
//! the low-frequency end) and *decode* utilization with spin time
//! removed — the clock-dependent demand curve on which the plateau is
//! the paper's headline feature.

use core::fmt;

use itsy_hw::{ClockTable, MemoryTiming};
use kernel_sim::{Kernel, KernelConfig, Machine};
use sim_core::SimDuration;
use workloads::Benchmark;

use crate::report;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Point {
    /// Clock step index.
    pub step: usize,
    /// Frequency, MHz.
    pub mhz: f64,
    /// Mean measured utilization (includes spin).
    pub utilization: f64,
    /// Mean utilization excluding spin time.
    pub decode_utilization: f64,
}

/// The sweep.
pub struct Fig9 {
    /// One point per clock step, slowest first.
    pub points: Vec<Fig9Point>,
}

/// Seconds of MPEG per step.
pub const RUN_SECS: u64 = 20;

/// Sweeps all clock steps with the stock (Table 3) memory model.
pub fn run(seed: u64) -> Fig9 {
    run_with_memory(seed, MemoryTiming::sa1100_edo())
}

/// Sweeps all clock steps with an arbitrary memory model (for the
/// ablation that removes the plateau).
pub fn run_with_memory(seed: u64, mem: MemoryTiming) -> Fig9 {
    let table = ClockTable::sa1100();
    let points = (0..table.len())
        .map(|step| {
            let machine = Machine::itsy(step, Benchmark::Mpeg.devices()).with_memory(mem.clone());
            let mut kernel = Kernel::new(
                machine,
                KernelConfig {
                    duration: SimDuration::from_secs(RUN_SECS),
                    ..KernelConfig::default()
                },
            );
            Benchmark::Mpeg.spawn_into(&mut kernel, seed);
            let r = kernel.run();
            let elapsed = r.elapsed.as_secs_f64();
            let busy = r.busy.as_secs_f64();
            let spun = r.spun.as_secs_f64();
            Fig9Point {
                step,
                mhz: table.freq(step).as_mhz_f64(),
                utilization: busy / elapsed,
                decode_utilization: (busy - spun) / elapsed,
            }
        })
        .collect();
    Fig9 { points }
}

impl Fig9 {
    /// Decode utilization at a step.
    pub fn decode_at(&self, step: usize) -> f64 {
        self.points[step].decode_utilization
    }

    /// The plateau metric: drop in decode utilization across the
    /// 162.2 → 176.9 MHz step (should be ≈ 0) vs. the neighbouring
    /// steps' drops.
    pub fn plateau_drop(&self) -> f64 {
        self.decode_at(7) - self.decode_at(8)
    }

    /// Writes the sweep as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["step", "mhz", "utilization", "decode_utilization"],
            &self
                .points
                .iter()
                .map(|p| {
                    vec![
                        p.step.to_string(),
                        format!("{}", p.mhz),
                        format!("{}", p.utilization),
                        format!("{}", p.decode_utilization),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("fig9", "utilization_vs_frequency", &doc).map(|_| ())
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9: MPEG utilization vs clock frequency")?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}", p.mhz),
                    format!("{:.1}%", p.utilization * 100.0),
                    format!("{:.1}%", p.decode_utilization * 100.0),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &["MHz", "utilization", "decode util (no spin)"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> &'static Fig9 {
        use std::sync::OnceLock;
        static CELL: OnceLock<Fig9> = OnceLock::new();
        CELL.get_or_init(|| run(1))
    }

    #[test]
    fn decode_utilization_decreases_with_frequency() {
        let f = fig();
        for w in f.points.windows(2) {
            assert!(
                w[1].decode_utilization <= w[0].decode_utilization + 0.01,
                "{:.1} -> {:.1} MHz rose: {:.3} -> {:.3}",
                w[0].mhz,
                w[1].mhz,
                w[0].decode_utilization,
                w[1].decode_utilization
            );
        }
    }

    #[test]
    fn plateau_between_162_and_177() {
        let f = fig();
        // Flat across the memory-cost jump...
        assert!(
            f.plateau_drop().abs() < 0.02,
            "162.2 -> 176.9 drop = {:.3}",
            f.plateau_drop()
        );
        // ...but clearly dropping on both sides.
        let before = f.decode_at(6) - f.decode_at(7); // 147.5 -> 162.2
        let after = f.decode_at(8) - f.decode_at(9); // 176.9 -> 191.7
        assert!(before > 0.02, "before = {before:.3}");
        assert!(after > 0.02, "after = {after:.3}");
    }

    #[test]
    fn endpoint_values_match_the_papers_scale() {
        let f = fig();
        // ~74% at 206.4 (Figure 3a / Figure 9 right edge).
        assert!(
            (0.68..=0.82).contains(&f.points[10].utilization),
            "util @206.4 = {:.3}",
            f.points[10].utilization
        );
        // ~93% decode utilization around 132.7 (Figure 9 left edge).
        assert!(
            (0.85..=0.99).contains(&f.decode_at(5)),
            "decode util @132.7 = {:.3}",
            f.decode_at(5)
        );
        // Saturated below feasibility.
        assert!(f.points[0].utilization > 0.99);
    }

    #[test]
    fn ideal_memory_removes_the_plateau() {
        // The ablation: with frequency-independent memory costs the
        // decode-time curve is a smooth 1/f — no plateau.
        let ideal = run_with_memory(1, MemoryTiming::ideal(&ClockTable::sa1100(), 14, 42));
        let drop_here = ideal.decode_at(7) - ideal.decode_at(8);
        let drop_prev = ideal.decode_at(6) - ideal.decode_at(7);
        // The 162->177 drop is now comparable to its neighbour instead
        // of vanishing.
        assert!(
            drop_here > 0.5 * drop_prev,
            "plateau survived the ablation: {drop_here:.3} vs {drop_prev:.3}"
        );
    }
}
