//! Weiser et al.'s trace-driven algorithms on this paper's workloads.
//!
//! §3: Weiser proposed OPT, FUTURE and PAST and evaluated them on
//! workstation traces; "of the algorithms they propose, only PAST is
//! feasible because it does not make decisions using future
//! information". Here their trio runs on work traces recorded from the
//! simulated Itsy workloads, reproducing Weiser's energy ordering
//! (OPT ≤ FUTURE ≤ PAST) and quantifying the backlog (delay) each
//! tolerates — on pocket-computer workloads instead of engineering
//! ones.

use core::fmt;

use policies::oracle::{future, opt, weiser_past, TraceSchedule};
use policies::WorkTrace;
use workloads::Benchmark;

use crate::report;
use crate::runner::{run_benchmark, RunSpec};

/// One workload's results under the three algorithms.
pub struct OracleRow {
    /// Workload.
    pub benchmark: Benchmark,
    /// OPT's schedule.
    pub opt: TraceSchedule,
    /// FUTURE's schedule.
    pub future: TraceSchedule,
    /// Weiser-PAST's schedule.
    pub past: TraceSchedule,
    /// Energy of running the trace at full speed (the normalisation
    /// baseline: `Σ work · 1²`).
    pub full_speed_energy: f64,
}

/// The comparison.
pub struct OracleExp {
    /// One row per workload.
    pub rows: Vec<OracleRow>,
}

/// Records each workload's full-speed work trace and runs the trio.
pub fn run(seed: u64) -> OracleExp {
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| {
            let r = run_benchmark(&RunSpec::new(b, 10).for_secs(30).with_seed(seed), None);
            let trace = WorkTrace::new(r.work_fraction.values());
            let full_speed_energy: f64 = trace.intervals().iter().sum();
            OracleRow {
                benchmark: b,
                opt: opt(&trace),
                future: future(&trace),
                past: weiser_past(&trace),
                full_speed_energy,
            }
        })
        .collect();
    OracleExp { rows }
}

impl OracleExp {
    /// Row for a benchmark.
    pub fn row(&self, b: Benchmark) -> &OracleRow {
        self.rows
            .iter()
            .find(|r| r.benchmark == b)
            .expect("benchmark present")
    }

    /// Writes the comparison as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let mut rows = Vec::new();
        for r in &self.rows {
            for s in [&r.opt, &r.future, &r.past] {
                rows.push(vec![
                    r.benchmark.name().to_string(),
                    s.name.to_string(),
                    format!("{:.4}", s.energy / r.full_speed_energy),
                    format!("{:.3}", s.peak_backlog()),
                    format!("{:.3}", s.final_backlog()),
                ]);
            }
        }
        let doc = report::csv_doc(
            &[
                "benchmark",
                "algorithm",
                "relative_energy",
                "peak_backlog",
                "final_backlog",
            ],
            &rows,
        );
        report::save_csv("oracle", "weiser_trio", &doc).map(|_| ())
    }
}

impl fmt::Display for OracleExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Weiser et al.'s trace-driven trio on recorded Itsy work traces (30s)"
        )?;
        let mut rows = Vec::new();
        for r in &self.rows {
            for s in [&r.opt, &r.future, &r.past] {
                rows.push(vec![
                    r.benchmark.name().to_string(),
                    s.name.to_string(),
                    format!("{:.1}%", s.energy / r.full_speed_energy * 100.0),
                    format!("{:.2} quanta", s.peak_backlog()),
                ]);
            }
        }
        f.write_str(&report::render_table(
            &[
                "workload",
                "algorithm",
                "energy vs full speed",
                "peak backlog",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> &'static OracleExp {
        use std::sync::OnceLock;
        static CELL: OnceLock<OracleExp> = OnceLock::new();
        CELL.get_or_init(|| run(1))
    }

    #[test]
    fn opt_is_cheapest_everywhere() {
        let e = exp();
        for r in &e.rows {
            assert!(
                r.opt.energy <= r.future.energy + 1e-9 && r.opt.energy <= r.past.energy + 1e-9,
                "{}: OPT {} vs FUTURE {} / PAST {}",
                r.benchmark.name(),
                r.opt.energy,
                r.future.energy,
                r.past.energy
            );
        }
    }

    #[test]
    fn past_only_beats_future_by_tolerating_delay() {
        // FUTURE finishes every interval (zero backlog); PAST may edge
        // it out on energy, but only by letting work slip.
        let e = exp();
        for r in &e.rows {
            if r.past.energy < r.future.energy {
                assert!(
                    r.past.peak_backlog() > 0.0,
                    "{}: PAST cheaper with no backlog?",
                    r.benchmark.name()
                );
            } else {
                assert!(
                    r.future.energy <= r.past.energy * 1.02,
                    "{}: FUTURE {} vs PAST {}",
                    r.benchmark.name(),
                    r.future.energy,
                    r.past.energy
                );
            }
        }
    }

    #[test]
    fn everyone_beats_running_flat_out() {
        let e = exp();
        for r in &e.rows {
            for s in [&r.opt, &r.future, &r.past] {
                assert!(
                    s.energy < r.full_speed_energy,
                    "{} {} saved nothing",
                    r.benchmark.name(),
                    s.name
                );
            }
        }
    }

    #[test]
    fn opt_defers_the_most_work() {
        // OPT's constant mean speed trades delay for energy: its peak
        // backlog dominates FUTURE's (which finishes every interval).
        let e = exp();
        for r in &e.rows {
            assert!(
                r.opt.peak_backlog() >= r.future.peak_backlog(),
                "{}",
                r.benchmark.name()
            );
            assert!(r.future.peak_backlog() < 1e-9);
        }
    }

    #[test]
    fn light_workloads_save_more() {
        // Web's mostly-idle trace lets every algorithm run near the
        // floor; MPEG's heavy trace cannot.
        let e = exp();
        let rel = |b: Benchmark| {
            let r = e.row(b);
            r.opt.energy / r.full_speed_energy
        };
        assert!(rel(Benchmark::Web) < rel(Benchmark::Mpeg));
    }
}
