//! Leveled, machine-readable stderr records.
//!
//! The engine used to talk to the terminal with a dozen ad-hoc
//! `eprintln!`s; this module gives those messages a level and a single
//! process-wide verbosity switch. Records keep a fixed shape —
//!
//! ```text
//! [warn] engine: cache_quarantine key=0123abcd… action=recompute
//! ```
//!
//! — a level tag, a component, an event name, then `key=value` pairs,
//! so they stay greppable and parseable without a logging framework.
//!
//! Verbosity is a process-global [`AtomicU8`] rather than a value
//! threaded through every config struct because log level is an
//! *operator* choice (`repro --quiet`, `repro -v`), not a property of
//! any one batch.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Mutex;

/// Severity of a log record, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// A cell or subsystem produced no result.
    Error = 0,
    /// Something degraded but the run continues (quarantine, failed
    /// cache write).
    Warn = 1,
    /// Progress and batch summaries — the default.
    Info = 2,
    /// Per-job lifecycle chatter (`repro -v`).
    Debug = 3,
}

impl Level {
    /// The tag printed in front of each record.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide verbosity: records *above* this level are
/// dropped.
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The verbosity currently in force.
pub fn verbosity() -> Level {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// True if a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= VERBOSITY.load(Ordering::Relaxed)
}

/// Test-only capture sink. When capturing, each record is formatted
/// into its own `String` and appended to the buffer in one step — the
/// same record-at-a-time atomicity the stderr path gets from its
/// single `write_fmt` under the stderr lock — so concurrency tests can
/// assert no record ever tears or interleaves.
static CAPTURING: AtomicBool = AtomicBool::new(false);
static CAPTURE: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Starts routing records into an in-memory buffer instead of stderr.
/// For tests; callers must pair with [`capture_end`].
pub fn capture_begin() {
    CAPTURE.lock().unwrap_or_else(|e| e.into_inner()).clear();
    CAPTURING.store(true, Ordering::SeqCst);
}

/// Stops capturing and returns every record captured, in arrival
/// order.
pub fn capture_end() -> Vec<String> {
    CAPTURING.store(false, Ordering::SeqCst);
    std::mem::take(&mut CAPTURE.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Writes one record to stderr if the level passes the verbosity
/// filter. Prefer the [`error!`](crate::error)/[`warn!`](crate::warn)/
/// [`info!`](crate::info)/[`debug!`](crate::debug) macros.
pub fn log(level: Level, args: fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    if CAPTURING.load(Ordering::Relaxed) {
        let record = format!("[{}] {}\n", level.tag(), args);
        CAPTURE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
        return;
    }
    // One write_fmt per record keeps lines intact when worker threads
    // log concurrently (stderr is line-buffered and locked per call).
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_fmt(format_args!("[{}] {}\n", level.tag(), args));
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn verbosity_gates_levels() {
        // Serialized with a lock-free global: restore the default
        // afterwards so other tests see Info.
        set_verbosity(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_verbosity(Level::Debug);
        assert!(enabled(Level::Debug));
        set_verbosity(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert_eq!(verbosity(), Level::Info);
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(Level::Error.tag(), "error");
        assert_eq!(Level::Debug.to_string(), "debug");
    }
}
