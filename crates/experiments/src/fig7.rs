//! Figure 7: AVG_3 filtering of a periodic 9-busy/1-idle workload.
//!
//! The analytical core of §5.3: even started at the ideal operating
//! point, the AVG_N output "oscillat\[es\] over a surprisingly wide range
//! of the processor utilization" — so any hysteresis band inside that
//! range keeps flapping the clock. We produce the filtered series both
//! analytically (the recurrence) and empirically (a square-wave task on
//! the simulated kernel) and check they agree.

use core::fmt;

use analysis::{avg_n_response, square_wave, steady_state_band, OscillationBand};
use itsy_hw::DeviceSet;
use kernel_sim::{Kernel, KernelConfig, Machine};
use sim_core::{SimDuration, SimTime, TimeSeries};
use workloads::SquareWave;

use crate::report;

/// The filtered series and oscillation summary.
pub struct Fig7 {
    /// Analytical AVG_3 output over the ideal square wave.
    pub analytic: TimeSeries,
    /// AVG_3 applied to per-quantum utilization measured on the
    /// simulated kernel under a real 9/1 square-wave task.
    pub empirical: TimeSeries,
    /// Steady-state band of the analytic series.
    pub analytic_band: OscillationBand,
    /// Steady-state band of the empirical series.
    pub empirical_band: OscillationBand,
}

/// The decay parameter the figure uses.
pub const N: u32 = 3;

/// Runs both the analytic and the kernel-level versions.
pub fn run() -> Fig7 {
    // Analytic: 800 quanta of the ideal wave.
    let wave = square_wave(9, 1, 800);
    let out = avg_n_response(N, &wave);
    let mut analytic = TimeSeries::new("avg3_analytic");
    for (i, &v) in out.iter().enumerate() {
        analytic.push(SimTime::from_millis(10 * (i as u64 + 1)), v);
    }
    let analytic_band = steady_state_band(&out, 100);

    // Empirical: a spin-based square wave on the kernel.
    let mut kernel = Kernel::new(
        Machine::itsy(10, DeviceSet::NONE),
        KernelConfig {
            duration: SimDuration::from_secs(8),
            ..KernelConfig::default()
        },
    );
    kernel.spawn(Box::new(SquareWave::quanta(9, 1)));
    let report = kernel.run();
    let measured = avg_n_response(N, &report.utilization.values());
    let mut empirical = TimeSeries::new("avg3_empirical");
    for (t, v) in report.utilization.times_us().into_iter().zip(&measured) {
        empirical.push(SimTime::from_micros(t), *v);
    }
    let empirical_band = steady_state_band(&measured, 100);

    Fig7 {
        analytic,
        empirical,
        analytic_band,
        empirical_band,
    }
}

impl Fig7 {
    /// Writes both series as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        report::save_series("fig7", &[&self.analytic, &self.empirical]).map(|_| ())
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7: AVG_{N} filtering a 9-busy/1-idle rectangle wave"
        )?;
        let row = |name: &str, b: &OscillationBand| {
            vec![
                name.to_string(),
                format!("{:.3}", b.min),
                format!("{:.3}", b.max),
                format!("{:.3}", b.swing()),
                format!("{:.3}", b.mean),
            ]
        };
        f.write_str(&report::render_table(
            &["series", "min", "max", "swing", "mean"],
            &[
                row("analytic", &self.analytic_band),
                row("kernel", &self.empirical_band),
            ],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_oscillation_over_a_wide_band() {
        let fig = run();
        assert!(
            fig.analytic_band.swing() > 0.15,
            "swing = {}",
            fig.analytic_band.swing()
        );
        assert!((fig.analytic_band.mean - 0.9).abs() < 0.02);
    }

    #[test]
    fn kernel_measurement_matches_analysis() {
        let fig = run();
        assert!(
            (fig.empirical_band.mean - fig.analytic_band.mean).abs() < 0.05,
            "means diverge: {} vs {}",
            fig.empirical_band.mean,
            fig.analytic_band.mean
        );
        assert!(
            (fig.empirical_band.swing() - fig.analytic_band.swing()).abs() < 0.1,
            "swings diverge: {} vs {}",
            fig.empirical_band.swing(),
            fig.analytic_band.swing()
        );
    }

    #[test]
    fn best_policy_thresholds_sit_inside_the_band() {
        // Which is why PAST-peg at 98/93 keeps flapping on MPEG-like
        // loads (Figure 8).
        let fig = run();
        assert!(fig.analytic_band.destabilizes(0.98, 0.93));
    }
}
