//! End-to-end tests for `repro fleet`: summary-byte determinism across
//! worker counts, cache state and injected chaos, plus the
//! flat-memory claim measured over a 10x population growth.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn results_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itsy-dvs-fleet-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `repro fleet --devices <devices>` with the given extra args;
/// returns the canonical summary bytes and the run's `metrics.json`.
fn run_fleet(tag: &str, devices: &str, extra: &[&str]) -> (String, String) {
    let dir = results_dir(tag);
    let out = repro()
        .env("REPRO_RESULTS_DIR", &dir)
        .args(["--quiet", "--seed", "7", "fleet", "--devices", devices])
        .args(extra)
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "repro fleet failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = std::fs::read_to_string(dir.join("fleet").join("population_summary.txt"))
        .expect("summary written");
    let metrics =
        std::fs::read_to_string(dir.join("fleet").join("metrics.json")).expect("metrics written");
    let _ = std::fs::remove_dir_all(&dir);
    (summary, metrics)
}

#[test]
fn summary_bytes_are_identical_across_worker_counts() {
    let (one, metrics) = run_fleet("jobs1", "40", &["--jobs", "1"]);
    assert!(one.starts_with("fleet-summary v1 devices=40 failed=0\n"));
    assert!(
        metrics.contains("\"peak_rss_bytes\""),
        "metrics.json missing RSS probe:\n{metrics}"
    );
    for jobs in ["4", "8"] {
        let (many, _) = run_fleet(&format!("jobs{jobs}"), "40", &["--jobs", jobs]);
        assert_eq!(one, many, "summary bytes differ at --jobs {jobs}");
    }
}

#[test]
fn summary_bytes_survive_cache_state_and_chaos() {
    // Streaming never touches the cache, so hit/miss state cannot leak
    // in — but prove it end-to-end: a run with the cache disabled and a
    // run right after a cache-populating sweep must both match.
    let (plain, _) = run_fleet("plain", "40", &[]);
    let (no_cache, _) = run_fleet("nocache", "40", &["--no-cache"]);
    assert_eq!(plain, no_cache, "cache flag must not change the bytes");

    // Injected worker panics with retries enabled: same bytes.
    // max_panics=2 matches the engine's default retry budget, so every
    // job is *guaranteed* to complete within its retries — the test
    // must hold for any job-key set, not just a lucky seed.
    let (chaotic, _) = run_fleet(
        "chaos",
        "40",
        &[
            "--jobs",
            "4",
            "--fault-plan",
            "seed=3,panic=0.5,max_panics=2",
        ],
    );
    assert_eq!(plain, chaotic, "chaos with retries must not change bytes");
}

#[test]
fn seed_and_size_change_the_population() {
    let (base, _) = run_fleet("base", "40", &[]);
    let dir = results_dir("seed9");
    let out = repro()
        .env("REPRO_RESULTS_DIR", &dir)
        .args(["--quiet", "--seed", "9", "fleet", "--devices", "40"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let reseeded =
        std::fs::read_to_string(dir.join("fleet").join("population_summary.txt")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_ne!(base, reseeded, "a different seed is a different fleet");

    let (smaller, _) = run_fleet("small", "12", &[]);
    assert!(smaller.starts_with("fleet-summary v1 devices=12 "));
}

/// The summary-fidelity memory claim: with per-device horizons long
/// enough that per-tick series would dominate the scratch arena, a
/// summary-fidelity fleet run must peak well below the same run at
/// full fidelity. Runs each fidelity in its own `repro` subprocess —
/// the VmHWM probe is a *process-wide* high-water mark, so two
/// fidelities measured in one process would alias to the larger run —
/// and reads both numbers back from the runs' `metrics.json`.
#[test]
fn summary_fidelity_cuts_fleet_peak_rss() {
    let rss_of = |tag: &str, fidelity: &str| -> u64 {
        let (_, metrics) = run_fleet(
            tag,
            "40",
            &[
                "--device-secs",
                "240",
                "--fidelity",
                fidelity,
                "--jobs",
                "1",
            ],
        );
        metrics
            .split("\"peak_rss_bytes\": ")
            .nth(1)
            .and_then(|rest| rest.split(&[',', '\n'][..]).next())
            .and_then(|v| v.trim().parse().ok())
            .expect("metrics.json records peak_rss_bytes")
    };
    let full = rss_of("rss-full", "full");
    let summary = rss_of("rss-summary", "summary");
    assert!(full > 0 && summary > 0, "RSS probes must read VmHWM");
    assert!(
        summary < full,
        "summary fidelity must not out-peak full: {summary} vs {full} bytes"
    );
}

/// The bounded-memory claim: peak RSS after streaming 10x the devices
/// must stay within a small constant factor. Uses the in-process
/// engine (child-process RSS would also work but is noisier); the
/// VmHWM probe is monotone within a process, so the sequence
/// small-then-large gives large >= small and the ratio bounds the
/// growth the large run added.
#[test]
fn peak_rss_is_flat_in_device_count() {
    let run = |devices: u64| {
        let engine = engine::Engine::new(engine::EngineConfig::hermetic());
        let population = fleet::PopulationConfig::new(devices, 5);
        let out = fleet::run(&engine, "rss-probe", &population);
        assert_eq!(out.stats.executed, devices);
        out.metrics.peak_rss_bytes
    };
    let small = run(10_000);
    let large = run(100_000);
    assert!(small > 0, "RSS probe must read VmHWM");
    let ratio = large as f64 / small as f64;
    assert!(
        ratio < 1.5,
        "peak RSS grew {ratio:.2}x over a 10x population \
         ({small} -> {large} bytes); streaming must stay flat"
    );
}
