//! Simulator micro-benchmarks: the building blocks' raw throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use analysis::{avg_n_response, dft_magnitudes, square_wave};
use daq::Daq;
use itsy_hw::{ClockTable, MemoryTiming, Work};
use kernel_sim::{Kernel, KernelConfig, Machine};
use policies::{AvgN, Predictor};
use sim_core::{EventQueue, Rng, SimDuration, SimTime, TimeSeries};
use workloads::Benchmark;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000 + 100_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.event);
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("rng_1m_u64", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_work_execution(c: &mut Criterion) {
    let table = ClockTable::sa1100();
    let mem = MemoryTiming::sa1100_edo();
    c.bench_function("work_execute_split_1k", |b| {
        let w = Work::new(5.0e6, 1.0e4, 8.0e4);
        b.iter(|| {
            let mut total = SimDuration::ZERO;
            for step in 0..11 {
                let f = table.freq(step);
                total += w.time_at(step, f, &mem);
            }
            black_box(total)
        })
    });
}

fn bench_kernel_throughput(c: &mut Criterion) {
    // How many simulated seconds per wall second the kernel achieves on
    // each workload.
    let mut g = c.benchmark_group("kernel_sim_seconds");
    g.sample_size(10);
    for b in Benchmark::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(b.name()), &b, |bench, &b| {
            bench.iter(|| {
                let mut kernel = Kernel::new(
                    Machine::itsy(10, b.devices()),
                    KernelConfig {
                        duration: SimDuration::from_secs(10),
                        record_power: false,
                        log_sched: false,
                        ..KernelConfig::default()
                    },
                );
                b.spawn_into(&mut kernel, 1);
                black_box(kernel.run())
            })
        });
    }
    g.finish();
}

fn bench_avg_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("avg9_100k_intervals", |b| {
        b.iter(|| {
            let mut p = AvgN::new(9);
            let mut acc = 0.0;
            for i in 0..100_000u64 {
                acc += p.observe(((i % 10) < 9) as u8 as f64);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_daq_capture(c: &mut Criterion) {
    // Resampling a 60 s power trace at 5 kHz (300k samples).
    let mut trace = TimeSeries::new("watts");
    for i in 0..6_000u64 {
        trace.push(SimTime::from_millis(i * 10), 1.0 + (i % 7) as f64 * 0.1);
    }
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(300_000));
    g.bench_function("daq_capture_60s_at_5khz", |b| {
        let daq = Daq::default();
        b.iter(|| {
            let mut rng = Rng::new(3);
            black_box(daq.capture(&trace, SimTime::ZERO, SimTime::from_secs(60), &mut rng))
        })
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let sig = square_wave(9, 1, 4096);
    c.bench_function("fft_4096", |b| b.iter(|| black_box(dft_magnitudes(&sig))));
    c.bench_function("avg3_filter_4096", |b| {
        b.iter(|| black_box(avg_n_response(3, &sig)))
    });
}

criterion_group!(
    simulator,
    bench_event_queue,
    bench_rng,
    bench_work_execution,
    bench_kernel_throughput,
    bench_avg_n,
    bench_daq_capture,
    bench_fft
);
criterion_main!(simulator);
