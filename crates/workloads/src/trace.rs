//! Timestamped input-event traces: generation, recording and replay.
//!
//! §4.2: "To capture repeatable behavior for the interactive
//! applications, we used a tracing mechanism that recorded timestamped
//! input events and then allowed us to replay those events with
//! millisecond accuracy." We generate traces deterministically from a
//! seed (there is no human to record), store them in the same
//! timestamp+event form, and replay them the same way every run — the
//! property the paper's methodology needs (their 95 % CIs were < 0.7 %
//! of the mean across replayed runs).

use serde::{Deserialize, Serialize};
use sim_core::{Rng, SimDuration, SimTime};

use itsy_hw::Work;

/// One user-input event and the computation it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputEvent {
    /// When the event arrives, µs from trace start.
    pub at_us: u64,
    /// The work the application performs in response.
    pub work: Work,
    /// Response deadline relative to the event (µs): the work should
    /// complete within this long for the interaction to feel
    /// instantaneous. Zero means no interactive deadline.
    pub response_us: u64,
}

impl InputEvent {
    /// The event's arrival time.
    pub fn at(&self) -> SimTime {
        SimTime::from_micros(self.at_us)
    }

    /// The absolute completion deadline, if any.
    pub fn due(&self) -> Option<SimTime> {
        (self.response_us > 0).then(|| self.at() + SimDuration::from_micros(self.response_us))
    }
}

/// An ordered input trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InputTrace {
    events: Vec<InputEvent>,
}

impl InputTrace {
    /// Creates an empty trace (for recording).
    pub fn new() -> Self {
        InputTrace::default()
    }

    /// Records an event; events must be appended in time order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded event.
    pub fn record(&mut self, at: SimTime, work: Work, response: SimDuration) {
        if let Some(last) = self.events.last() {
            assert!(
                at.as_micros() >= last.at_us,
                "trace events must be recorded in order"
            );
        }
        self.events.push(InputEvent {
            at_us: at.as_micros(),
            work,
            response_us: response.as_micros(),
        });
    }

    /// The recorded events.
    pub fn events(&self) -> &[InputEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total trace span (time of the last event).
    pub fn span(&self) -> SimDuration {
        SimDuration::from_micros(self.events.last().map_or(0, |e| e.at_us))
    }

    /// Serialises to the on-disk trace format: one
    /// `at_us cpu_cycles mem_refs cache_lines response_us` line per
    /// event.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "{} {} {} {} {}",
                e.at_us, e.work.cpu_cycles, e.work.mem_refs, e.work.cache_lines, e.response_us
            );
        }
        out
    }

    /// Parses the text trace format produced by [`InputTrace::to_text`].
    pub fn from_text(s: &str) -> Result<Self, String> {
        let mut trace = InputTrace::new();
        for (lineno, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 5 {
                return Err(format!("line {}: expected 5 fields", lineno + 1));
            }
            let parse_f = |s: &str| {
                s.parse::<f64>()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))
            };
            let parse_u = |s: &str| {
                s.parse::<u64>()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))
            };
            trace.record(
                SimTime::from_micros(parse_u(fields[0])?),
                Work::new(
                    parse_f(fields[1])?,
                    parse_f(fields[2])?,
                    parse_f(fields[3])?,
                ),
                SimDuration::from_micros(parse_u(fields[4])?),
            );
        }
        Ok(trace)
    }
}

/// Iterator-style replayer: hands out events once their time arrives.
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    trace: InputTrace,
    next: usize,
}

impl TraceReplayer {
    /// Starts replaying `trace` from the beginning.
    pub fn new(trace: InputTrace) -> Self {
        TraceReplayer { trace, next: 0 }
    }

    /// The next pending event, if any.
    pub fn peek(&self) -> Option<&InputEvent> {
        self.trace.events().get(self.next)
    }

    /// Consumes and returns the next event if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<InputEvent> {
        match self.peek() {
            Some(e) if e.at() <= now => {
                let e = *e;
                self.next += 1;
                Some(e)
            }
            _ => None,
        }
    }

    /// True once every event has been replayed.
    pub fn exhausted(&self) -> bool {
        self.next >= self.trace.len()
    }
}

/// Builds a randomized browse/edit-style trace: bursts of interaction
/// separated by think time.
///
/// `burst_work_ms` bounds the per-event work (milliseconds at the top
/// clock); `gap_ms` bounds inter-event think time.
pub fn generate_interactive_trace(
    rng: &mut Rng,
    span: SimDuration,
    gap_ms: (u64, u64),
    burst_work_ms: (f64, f64),
    line_share: f64,
    response: SimDuration,
) -> InputTrace {
    let mut t = SimTime::ZERO;
    let mut trace = InputTrace::new();
    loop {
        let gap = SimDuration::from_millis(gap_ms.0 + rng.below(gap_ms.1 - gap_ms.0 + 1));
        t += gap;
        if t.as_micros() > span.as_micros() {
            break;
        }
        let ms = rng.uniform_range(burst_work_ms.0, burst_work_ms.1);
        trace.record(t, crate::work_ms_at_top(ms, line_share), response);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InputTrace {
        let mut t = InputTrace::new();
        t.record(
            SimTime::from_millis(100),
            Work::cycles(1000.0),
            SimDuration::from_millis(300),
        );
        t.record(
            SimTime::from_millis(500),
            Work::cycles(2000.0),
            SimDuration::ZERO,
        );
        t
    }

    #[test]
    fn record_and_inspect() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert_eq!(t.span(), SimDuration::from_millis(500));
        assert_eq!(
            t.events()[0].due(),
            Some(SimTime::from_millis(400)),
            "due = at + response"
        );
        assert_eq!(t.events()[1].due(), None);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_recording_panics() {
        let mut t = sample();
        t.record(SimTime::from_millis(1), Work::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn replay_is_time_gated() {
        let mut r = TraceReplayer::new(sample());
        assert!(r.pop_due(SimTime::from_millis(50)).is_none());
        let e = r.pop_due(SimTime::from_millis(100)).unwrap();
        assert_eq!(e.at(), SimTime::from_millis(100));
        assert!(r.pop_due(SimTime::from_millis(100)).is_none());
        assert!(!r.exhausted());
        assert!(r.pop_due(SimTime::from_secs(10)).is_some());
        assert!(r.exhausted());
    }

    #[test]
    fn text_round_trip() {
        let t = sample();
        let back = InputTrace::from_text(&t.to_text()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn text_parser_rejects_malformed_lines() {
        assert!(InputTrace::from_text("1 2 3").is_err());
        assert!(InputTrace::from_text("a b c d e").is_err());
        // Comments and blank lines are fine.
        let t = InputTrace::from_text("# header\n\n100 10 0 0 0\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn generated_traces_are_deterministic() {
        let mk = || {
            let mut rng = Rng::new(7);
            generate_interactive_trace(
                &mut rng,
                SimDuration::from_secs(10),
                (200, 2_000),
                (5.0, 80.0),
                0.3,
                SimDuration::from_millis(300),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.span() <= SimDuration::from_secs(10));
    }

    #[test]
    fn generated_gaps_respect_bounds() {
        let mut rng = Rng::new(3);
        let t = generate_interactive_trace(
            &mut rng,
            SimDuration::from_secs(30),
            (500, 1_000),
            (1.0, 2.0),
            0.0,
            SimDuration::ZERO,
        );
        let times = t.events().iter().map(|e| e.at_us).collect::<Vec<_>>();
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            assert!((500_000..=1_000_000).contains(&gap), "gap = {gap}us");
        }
    }
}
