//! Property-based tests of the hardware model.

use proptest::prelude::*;

use itsy_hw::battery::BatteryParams;
use itsy_hw::clock::{V_HIGH, V_LOW};
use itsy_hw::{
    Battery, ClockTable, CpuCore, CpuMode, DeviceSet, MemoryTiming, PowerModel, PowerParams, Work,
};
use sim_core::{Power, SimDuration};

proptest! {
    /// Core power is monotone in frequency and voltage.
    #[test]
    fn power_monotone(step_a in 0usize..11, step_b in 0usize..11) {
        prop_assume!(step_a < step_b);
        let table = ClockTable::sa1100();
        let m = PowerModel::default();
        for mode in [CpuMode::Run, CpuMode::Nap] {
            let pa = m.core_power(mode, table.freq(step_a), V_HIGH).as_watts();
            let pb = m.core_power(mode, table.freq(step_b), V_HIGH).as_watts();
            prop_assert!(pa < pb);
        }
        let hi = m.core_power(CpuMode::Run, table.freq(step_b), V_HIGH).as_watts();
        let lo = m.core_power(CpuMode::Run, table.freq(step_b), V_LOW).as_watts();
        prop_assert!(lo < hi);
    }

    /// Total cycle demand is additive: time(2W) uses exactly twice the
    /// cycles of time(W) at any step.
    #[test]
    fn work_cycles_scale_linearly(
        cpu in 0.0f64..1e8,
        refs in 0.0f64..1e6,
        lines in 0.0f64..1e6,
        step in 0usize..11,
        k in 1u32..20,
    ) {
        let m = MemoryTiming::sa1100_edo();
        let w = Work::new(cpu, refs, lines);
        let scaled = w.scaled(k as f64);
        let a = w.total_cycles(step, &m);
        let b = scaled.total_cycles(step, &m);
        prop_assert!((b - a * k as f64).abs() < 1e-3 * b.max(1.0));
    }

    /// Battery charge is non-increasing under drain and drains faster
    /// at higher power.
    #[test]
    fn battery_monotone(p1 in 0.01f64..3.0, p2 in 0.01f64..3.0, secs in 1u64..10_000) {
        prop_assume!(p1 < p2);
        let mut a = Battery::new(BatteryParams::default());
        let mut b = Battery::new(BatteryParams::default());
        let d = SimDuration::from_secs(secs);
        a.drain(Power::from_watts(p1), d);
        b.drain(Power::from_watts(p2), d);
        prop_assert!(a.remaining_joules() >= b.remaining_joules());
        prop_assert!(a.remaining_fraction() <= 1.0);
    }

    /// Peukert derating is monotone in the draw and >= 1.
    #[test]
    fn derating_monotone(p1 in 0.0f64..5.0, p2 in 0.0f64..5.0) {
        prop_assume!(p1 < p2);
        let b = Battery::new(BatteryParams::default());
        prop_assert!(b.derating(p1) >= 1.0);
        prop_assert!(b.derating(p1) <= b.derating(p2));
    }

    /// Closed-form lifetime is strictly decreasing in the draw.
    #[test]
    fn lifetime_decreasing(p1 in 0.05f64..3.0, delta in 0.01f64..2.0) {
        let b = Battery::new(BatteryParams::default());
        let l1 = b.lifetime_hours_at_constant(Power::from_watts(p1));
        let l2 = b.lifetime_hours_at_constant(Power::from_watts(p1 + delta));
        prop_assert!(l2 < l1);
    }

    /// Clock transitions preserve invariants: the step/voltage always
    /// land where requested (when safe), and statistics only grow.
    #[test]
    fn cpu_transitions_consistent(steps in proptest::collection::vec(0usize..11, 1..50)) {
        let params = PowerParams::default();
        let mut cpu = CpuCore::new(ClockTable::sa1100(), 0);
        let mut switches = 0;
        for &s in &steps {
            let before = cpu.step();
            let t = cpu.set_step(s, &params);
            prop_assert_eq!(cpu.step(), s);
            if s != before {
                switches += 1;
                prop_assert_eq!(t.stall.as_micros(), 200);
            } else {
                prop_assert!(t.stall.is_zero());
            }
        }
        prop_assert_eq!(cpu.clock_switches(), switches);
        prop_assert_eq!(cpu.total_stall().as_micros(), switches * 200);
    }

    /// System power decomposes: total == core + peripherals, and
    /// peripherals don't depend on the clock.
    #[test]
    fn power_decomposition(step in 0usize..11, lcd in any::<bool>(), audio in any::<bool>()) {
        let table = ClockTable::sa1100();
        let m = PowerModel::default();
        let d = DeviceSet { lcd, audio };
        let total = m.system_power(CpuMode::Run, table.freq(step), V_HIGH, d).as_watts();
        let core = m.core_power(CpuMode::Run, table.freq(step), V_HIGH).as_watts();
        let periph = m.peripheral_power(d).as_watts();
        prop_assert!((total - core - periph).abs() < 1e-12);
    }
}

/// A battery drained in many small steps ends within a whisker of one
/// drained in few large steps (integration is step-size robust).
#[test]
fn battery_integration_step_size_robust() {
    let p = Power::from_watts(0.8);
    let mut fine = Battery::new(BatteryParams::default());
    let mut coarse = Battery::new(BatteryParams::default());
    for _ in 0..3600 {
        fine.drain(p, SimDuration::from_secs(1));
    }
    for _ in 0..60 {
        coarse.drain(p, SimDuration::from_secs(60));
    }
    let a = fine.remaining_joules();
    let b = coarse.remaining_joules();
    assert!(
        (a - b).abs() / a.abs().max(1.0) < 0.02,
        "fine {a} vs coarse {b}"
    );
}
