//! Table 3: memory access time in cycles per clock step.
//!
//! The model *is* the published table; this experiment prints it, adds
//! the implied wall-clock latencies, and verifies the step-to-step
//! structure the paper calls out (the non-linear jump between 162.2 and
//! 176.9 MHz).

use core::fmt;

use itsy_hw::{ClockTable, MemoryTiming};

use crate::report;

/// One row per clock step.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Frequency, MHz.
    pub mhz: f64,
    /// Core cycles per individual word read.
    pub word_cycles: u32,
    /// Core cycles per full cache-line read.
    pub line_cycles: u32,
    /// Implied word latency, ns.
    pub word_ns: f64,
}

/// The reproduced table.
pub struct Table3 {
    /// Eleven rows, slowest step first.
    pub rows: Vec<Table3Row>,
}

/// Builds the table from the memory model.
pub fn run() -> Table3 {
    let table = ClockTable::sa1100();
    let mem = MemoryTiming::sa1100_edo();
    let rows = table
        .iter()
        .map(|(i, f)| Table3Row {
            mhz: f.as_mhz_f64(),
            word_cycles: mem.word_cycles(i),
            line_cycles: mem.line_cycles(i),
            word_ns: mem.word_latency_ns(i, f),
        })
        .collect();
    Table3 { rows }
}

impl Table3 {
    /// Writes the table as CSV.
    pub fn save(&self) -> std::io::Result<()> {
        let doc = report::csv_doc(
            &["mhz", "word_cycles", "line_cycles", "word_ns"],
            &self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{}", r.mhz),
                        r.word_cycles.to_string(),
                        r.line_cycles.to_string(),
                        format!("{:.1}", r.word_ns),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        report::save_csv("table3", "memory_cycles", &doc).map(|_| ())
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3: memory access time in cycles")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.mhz),
                    r.word_cycles.to_string(),
                    r.line_cycles.to_string(),
                    format!("{:.0}", r.word_ns),
                ]
            })
            .collect();
        f.write_str(&report::render_table(
            &[
                "Processor Freq. (MHz)",
                "Cycles/Mem. Reference",
                "Cycles/Cache Reference",
                "implied ns/word",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_the_papers_rows() {
        let t = run();
        let expected: [(f64, u32, u32); 11] = [
            (59.0, 11, 39),
            (73.7, 11, 39),
            (88.5, 11, 39),
            (103.2, 11, 39),
            (118.0, 13, 41),
            (132.7, 14, 42),
            (147.5, 14, 49),
            (162.2, 15, 50),
            (176.9, 18, 60),
            (191.7, 19, 61),
            (206.4, 20, 69),
        ];
        assert_eq!(t.rows.len(), 11);
        for (row, (mhz, w, l)) in t.rows.iter().zip(expected.iter()) {
            assert!((row.mhz - mhz).abs() < 1e-9);
            assert_eq!(row.word_cycles, *w);
            assert_eq!(row.line_cycles, *l);
        }
    }

    #[test]
    fn the_obvious_nonlinear_increase() {
        // "there is an obvious non-linear increase between 162MHz and
        // 176.9MHz": both columns jump more there than anywhere else.
        let t = run();
        let word_jump = |i: usize| t.rows[i].word_cycles - t.rows[i - 1].word_cycles;
        let line_jump = |i: usize| t.rows[i].line_cycles - t.rows[i - 1].line_cycles;
        let max_word = (1..11).map(word_jump).max().unwrap();
        let max_line = (1..11).map(line_jump).max().unwrap();
        assert_eq!(word_jump(8), max_word);
        assert!(line_jump(8) >= max_line - 1);
    }

    #[test]
    fn implied_latency_is_dram_scale() {
        // EDO DRAM word reads land in the 90-190 ns range.
        let t = run();
        for r in &t.rows {
            assert!(
                (80.0..200.0).contains(&r.word_ns),
                "{} MHz: {} ns",
                r.mhz,
                r.word_ns
            );
        }
    }
}
