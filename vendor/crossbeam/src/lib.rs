//! Offline stub of `crossbeam`.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides the two crossbeam facilities the workspace uses, built on
//! the standard library:
//!
//! - [`thread::scope`] — API-compatible scoped threads, implemented
//!   over [`std::thread::scope`] (which landed in Rust 1.63, after
//!   crossbeam's version became idiomatic);
//! - [`deque::Injector`] — a FIFO job queue shared by the engine's
//!   worker pool. The real crossbeam injector is lock-free; this one
//!   guards a `VecDeque` with a mutex, which is indistinguishable for
//!   the coarse-grained (multi-second) simulation jobs pushed through
//!   it.

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    use std::any::Any;

    /// Handle passed to spawned closures (crossbeam passes the scope so
    /// workers can spawn nested threads; nothing in this workspace
    /// does, so the stub passes an inert token).
    pub struct ScopeHandle {
        _private: (),
    }

    /// A scope in which threads borrowing local data may be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a dummy scope
        /// handle to match crossbeam's `|scope| ...` signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&ScopeHandle) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&ScopeHandle { _private: () }))
        }
    }

    /// Creates a scope for spawning threads that borrow from the
    /// enclosing stack frame. Unlike crossbeam, panics in unjoined
    /// threads propagate when the scope exits (std semantics), so the
    /// `Err` arm is only reachable through joined handles — callers
    /// treating `Ok` as success behave identically.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! A shared FIFO work queue (crossbeam's `Injector` surface).

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Result of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A job was stolen.
        Success(T),
        /// Contention; try again (never produced by this stub, kept so
        /// caller loops match crossbeam's contract).
        Retry,
    }

    impl<T> Steal<T> {
        /// Extracts the job, if one was stolen.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A FIFO queue that producers push into and workers steal from.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a job onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals a job from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued jobs.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().expect("worker ok")
        })
        .expect("scope ok");
        assert_eq!(sum, 6);
    }

    #[test]
    fn injector_is_fifo() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.steal(), Steal::Success(1));
        assert_eq!(q.steal(), Steal::Success(2));
        assert_eq!(q.steal(), Steal::Empty);
        assert!(q.is_empty());
    }
}
