//! Write a custom clock-scaling policy and race it against the paper's,
//! across all four workloads.
//!
//! The custom policy here is a "ramp" governor: it climbs aggressively
//! (double) when the weighted utilization is high but descends one step
//! at a time, trading some energy for fewer deadline risks.
//!
//! ```text
//! cargo run --release --example compare_policies
//! ```

use itsy_dvs::apps::Benchmark;
use itsy_dvs::dvs::{AvgN, ClockPolicy, Hysteresis, IntervalScheduler, PolicyRequest, SpeedChange};
use itsy_dvs::hw::{ClockTable, StepIndex};
use itsy_dvs::kernel::{Kernel, KernelConfig, Machine};
use itsy_dvs::sim::{SimDuration, SimTime};

/// A hand-rolled policy implementing [`ClockPolicy`] directly: pegs to
/// the top on any saturated quantum, creeps down otherwise.
struct Skittish {
    table: ClockTable,
}

impl ClockPolicy for Skittish {
    fn on_interval(&mut self, _now: SimTime, util: f64, cur: StepIndex) -> PolicyRequest {
        let target = if util >= 0.99 {
            self.table.fastest()
        } else if util < 0.80 {
            self.table.clamp(cur as isize - 1)
        } else {
            cur
        };
        PolicyRequest {
            step: (target != cur).then_some(target),
            voltage: None,
        }
    }

    fn name(&self) -> String {
        "Skittish(>=99% peg up, <80% one down)".into()
    }
}

fn run(benchmark: Benchmark, policy: Option<Box<dyn ClockPolicy>>) -> (f64, usize, u64) {
    let mut kernel = Kernel::new(
        Machine::itsy(10, benchmark.devices()),
        KernelConfig {
            duration: SimDuration::from_secs(30),
            ..KernelConfig::default()
        },
    );
    benchmark.spawn_into(&mut kernel, 7);
    if let Some(p) = policy {
        kernel.install_policy(p);
    }
    let r = kernel.run();
    (
        r.energy.as_joules(),
        r.deadlines.misses(SimDuration::from_millis(100)),
        r.clock_switches,
    )
}

fn main() {
    let table = ClockTable::sa1100();
    println!(
        "{:<14} {:<38} {:>9} {:>7} {:>9}",
        "workload", "policy", "energy", "misses", "switches"
    );
    for b in Benchmark::ALL {
        let contenders: Vec<(String, Option<Box<dyn ClockPolicy>>)> = vec![
            ("constant 206.4 MHz".into(), None),
            (
                "PAST, peg-peg, >98%/<93% (paper)".into(),
                Some(Box::new(IntervalScheduler::best_from_paper(table.clone()))),
            ),
            (
                "AVG_3, double-one, Pering 70%/50%".into(),
                Some(Box::new(IntervalScheduler::new(
                    Box::new(AvgN::new(3)),
                    Hysteresis::PERING,
                    SpeedChange::Double,
                    SpeedChange::One,
                    table.clone(),
                ))),
            ),
            (
                "Skittish (custom)".into(),
                Some(Box::new(Skittish {
                    table: table.clone(),
                })),
            ),
        ];
        for (name, policy) in contenders {
            let (energy, misses, switches) = run(b, policy);
            println!(
                "{:<14} {:<38} {:>7.1} J {:>7} {:>9}",
                b.name(),
                name,
                energy,
                misses,
                switches
            );
        }
        println!();
    }
}
